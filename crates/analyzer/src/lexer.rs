//! A hand-rolled Rust lexer.
//!
//! The build environment pins every dependency to a local shim, so there is
//! no `syn`/`proc-macro2`; this lexer is the crate's single tokenizer. It
//! produces a flat token stream with source positions — enough structure for
//! the [site extractor](mod@crate::extract) and the [self-lint
//! rules](crate::lint), and nothing more (no parse tree, no spans into the
//! original buffer).
//!
//! The hard parts of lexing Rust without a grammar are all here:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth) and raw byte strings;
//! * raw identifiers (`r#fn`) vs raw strings (`r#"`);
//! * char literals vs lifetimes (`'a'` vs `'a`);
//! * nested block comments (`/* /* */ */`);
//! * numeric literals with underscores, radix prefixes, exponents and
//!   suffixes — tokenized conservatively, never interpreted beyond
//!   [`Token::int_value`].
//!
//! Comments (line, block, doc) are dropped entirely: a `.unwrap()` quoted in
//! a doc example must never trip the self-lint, and a constructor mentioned
//! in prose must never become an allocation site.

use std::fmt;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Vec`, `r#type` → `type`).
    Ident,
    /// A lifetime (`'a`, `'static`), *without* the leading quote.
    Lifetime,
    /// A numeric literal (`42`, `0xff_u64`, `1.5e-3`).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Token text. Identifiers carry their name (raw identifiers are
    /// stripped of `r#`), puncts their single character; string literals
    /// carry their *unquoted* body so tests can assert on captured names.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters, not bytes).
    pub col: u32,
}

impl Token {
    /// `true` when the token is the identifier `name`.
    #[inline]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` when the token is the punctuation character `c`.
    #[inline]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// The value of an unsuffixed decimal integer literal, if this token is
    /// one (`512` → `Some(512)`, `0x20`/`1_000u64` → parsed too; `1.5` →
    /// `None`). Used for `with_capacity(<literal>)` size hints.
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokenKind::Number {
            return None;
        }
        let cleaned: String = self.text.chars().filter(|&c| c != '_').collect();
        let digits = cleaned
            .trim_end_matches(|c: char| c.is_ascii_alphabetic())
            .trim_end_matches(|c: char| c.is_ascii_digit() && cleaned.contains('x'));
        if let Some(hex) = cleaned.strip_prefix("0x") {
            let hex: String = hex
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            return u64::from_str_radix(&hex, 16).ok();
        }
        if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
            return None;
        }
        let digits: String = digits.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {:?} `{}`", self.line, self.col, self.kind, self.text)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Never fails: unterminated literals run to end of input
/// and malformed characters become single puncts — the extractor and linters
/// degrade gracefully on files that do not compile.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => {
                        // Line comment (incl. /// and //!): drop to newline.
                        while let Some(c) = cur.peek() {
                            if c == '\n' {
                                break;
                            }
                            cur.bump();
                        }
                    }
                    Some('*') => {
                        // Block comment, nested per the Rust grammar.
                        cur.bump();
                        let mut depth = 1u32;
                        while depth > 0 {
                            match cur.bump() {
                                Some('*') if cur.peek() == Some('/') => {
                                    cur.bump();
                                    depth -= 1;
                                }
                                Some('/') if cur.peek() == Some('*') => {
                                    cur.bump();
                                    depth += 1;
                                }
                                Some(_) => {}
                                None => break,
                            }
                        }
                    }
                    _ => out.push(punct('/', line, col)),
                }
            }
            '"' => {
                cur.bump();
                out.push(string_body(&mut cur, 0, line, col));
            }
            '\'' => {
                cur.bump();
                out.push(quote_token(&mut cur, line, col));
            }
            c if is_ident_start(c) => {
                // Could be an identifier, a raw identifier, a raw string, or
                // a byte-literal prefix.
                let mut name = String::new();
                name.push(c);
                cur.bump();
                // b"…" / b'…' / br"…" / r"…" / r#…
                if (name == "r" || name == "b") && matches!(cur.peek(), Some('"' | '#' | '\'')) {
                    if let Some(tok) = prefixed_literal(&mut cur, &name, line, col) {
                        out.push(tok);
                        continue;
                    }
                }
                if name == "b" && cur.peek() == Some('r') {
                    // Possible br"…" — look one further without losing `br` as
                    // an identifier prefix if it is not a raw string.
                    let mut probe = cur.chars.clone();
                    probe.next();
                    if matches!(probe.peek(), Some('"' | '#')) {
                        cur.bump(); // consume the `r`
                        if let Some(tok) = prefixed_literal(&mut cur, "r", line, col) {
                            out.push(tok);
                            continue;
                        }
                        name.push('r');
                    }
                }
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: name,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                out.push(number(&mut cur, line, col));
            }
            c => {
                cur.bump();
                out.push(punct(c, line, col));
            }
        }
    }
    out
}

fn punct(c: char, line: u32, col: u32) -> Token {
    Token {
        kind: TokenKind::Punct,
        text: c.to_string(),
        line,
        col,
    }
}

/// After consuming a leading `r` or `b`: raw strings, raw identifiers, byte
/// strings and byte chars. Returns `None` when the prefix turns out to start
/// a plain identifier (e.g. `r#fn` handled here, but `radius` not).
fn prefixed_literal(cur: &mut Cursor<'_>, prefix: &str, line: u32, col: u32) -> Option<Token> {
    match (prefix, cur.peek()) {
        ("r" | "b", Some('"')) => {
            cur.bump();
            Some(string_body(cur, 0, line, col))
        }
        ("b", Some('\'')) => {
            cur.bump();
            // Byte char: always a char literal, never a lifetime.
            let mut body = String::new();
            while let Some(c) = cur.peek() {
                if c == '\\' {
                    body.push(c);
                    cur.bump();
                    if let Some(e) = cur.bump() {
                        body.push(e);
                    }
                } else if c == '\'' {
                    cur.bump();
                    break;
                } else {
                    body.push(c);
                    cur.bump();
                }
            }
            Some(Token {
                kind: TokenKind::Char,
                text: body,
                line,
                col,
            })
        }
        ("r" | "b", Some('#')) => {
            // Count hashes; `r#"` starts a raw string, `r#ident` a raw
            // identifier (only valid with exactly one hash).
            let mut hashes = 0u32;
            while cur.peek() == Some('#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek() == Some('"') {
                cur.bump();
                return Some(string_body(cur, hashes, line, col));
            }
            if prefix == "r" && hashes == 1 {
                let mut name = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                if !name.is_empty() {
                    return Some(Token {
                        kind: TokenKind::Ident,
                        text: name,
                        line,
                        col,
                    });
                }
            }
            // Degenerate (`r##x`): emit the hashes as puncts via caller —
            // simplest is to swallow them as an empty ident.
            Some(Token {
                kind: TokenKind::Ident,
                text: prefix.to_owned(),
                line,
                col,
            })
        }
        _ => None,
    }
}

/// Consumes a string body after its opening quote. `hashes` is the raw-string
/// hash depth (0 for cooked strings, which process `\"` escapes).
fn string_body(cur: &mut Cursor<'_>, hashes: u32, line: u32, col: u32) -> Token {
    let mut body = String::new();
    if hashes == 0 {
        while let Some(c) = cur.peek() {
            match c {
                '\\' => {
                    cur.bump();
                    if let Some(e) = cur.bump() {
                        // Keep the escape verbatim; the extractor only needs
                        // literal site names, which never contain escapes.
                        body.push('\\');
                        body.push(e);
                    }
                }
                '"' => {
                    cur.bump();
                    break;
                }
                _ => {
                    body.push(c);
                    cur.bump();
                }
            }
        }
    } else {
        // Raw string: ends at `"` followed by exactly `hashes` hashes.
        loop {
            match cur.bump() {
                Some('"') => {
                    let mut seen = 0u32;
                    while seen < hashes && cur.peek() == Some('#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                    body.push('"');
                    for _ in 0..seen {
                        body.push('#');
                    }
                }
                Some(c) => body.push(c),
                None => break,
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text: body,
        line,
        col,
    }
}

/// After consuming a `'`: a char literal or a lifetime.
fn quote_token(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: `'\n'`, `'\u{1F600}'`.
            cur.bump();
            let mut body = String::from("\\");
            if let Some(e) = cur.bump() {
                body.push(e);
                if e == 'u' && cur.peek() == Some('{') {
                    while let Some(c) = cur.bump() {
                        body.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Token {
                kind: TokenKind::Char,
                text: body,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char literal; `'a` / `'static` is a lifetime.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                Token {
                    kind: TokenKind::Char,
                    text: name,
                    line,
                    col,
                }
            } else {
                Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                }
            }
        }
        Some(c) => {
            // Non-alphabetic char literal: `'1'`, `' '`, `'{'`.
            cur.bump();
            let body = c.to_string();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Token {
                kind: TokenKind::Char,
                text: body,
                line,
                col,
            }
        }
        None => punct('\'', line, col),
    }
}

fn number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    // Integer part (covers radix prefixes: `0x…` consumes as alnum run).
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fraction: only if `.` is followed by a digit (so `1..5` and `x.0.1`
    // stay untouched and tuple indexing keeps its `.`).
    if cur.peek() == Some('.') {
        let mut probe = cur.chars.clone();
        probe.next();
        if probe.peek().is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Exponent sign: `1e-3` lexes the `-` into the number.
    if (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(), Some('+' | '-'))
        && !text.starts_with("0x")
    {
        text.push(cur.bump().expect("peeked"));
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    Token {
        kind: TokenKind::Number,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let mut xs = Vec::new();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokenKind::Punct, "=".into()));
        assert_eq!(toks[4], (TokenKind::Ident, "Vec".into()));
        assert_eq!(toks[5], (TokenKind::Punct, ":".into()));
        assert_eq!(toks[6], (TokenKind::Punct, ":".into()));
        assert_eq!(toks[7], (TokenKind::Ident, "new".into()));
    }

    #[test]
    fn comments_are_dropped() {
        let toks = kinds("a // Vec::new()\nb /* Vec::new() /* nested */ */ c");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::Ident, "c".into()),
            ]
        );
    }

    #[test]
    fn doc_comments_do_not_leak_code() {
        let toks = kinds("/// let x = HashMap::new();\n//! xs.unwrap()\nfn f() {}");
        assert!(toks.iter().all(|(_, t)| t != "HashMap" && t != "unwrap"));
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn cooked_strings_swallow_escapes() {
        let toks = kinds(r#"let s = "a\"b // not a comment";"#);
        assert_eq!(toks[3], (TokenKind::Str, r#"a\"b // not a comment"#.into()));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r###"x(r"plain", r#"one " hash"#, r##"two "# hashes"##)"###);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(
            strs,
            vec![
                "plain".to_owned(),
                "one \" hash".to_owned(),
                "two \"# hashes".to_owned()
            ]
        );
    }

    #[test]
    fn raw_string_containing_constructor_is_not_code() {
        let toks = kinds(r####"let s = r#"Vec::new()"#;"####);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Vec"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"f(b"bytes", b'\n', br"raw bytes")"#);
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Str | TokenKind::Char))
            .collect();
        assert_eq!(lits.len(), 3);
    }

    #[test]
    fn raw_identifiers_strip_the_sigil() {
        let toks = kinds("fn r#type(r#fn: u8) {}");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "type"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "fn" && t != "r#fn"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let s = ' '; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a".to_owned(), "a".to_owned()]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["a".to_owned(), "\\n".to_owned(), " ".to_owned()]);
    }

    #[test]
    fn static_lifetime_and_unicode_escape() {
        let toks = kinds("const S: &'static str = \"\"; let c = '\\u{1F600}';");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "static"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "\\u{1F600}"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("for i in 0..1_000u64 { f(1.5e-3, 0xff, x.0); }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0", "1_000u64", "1.5e-3", "0xff", "0"]);
    }

    #[test]
    fn int_values_parse() {
        let toks = lex("512 1_024 0x20 64u64 1.5");
        let vals: Vec<_> = toks.iter().map(Token::int_value).collect();
        assert_eq!(vals, vec![Some(512), Some(1024), Some(32), Some(64), None]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn turbofish_shift_ambiguity_stays_tokenized() {
        let toks = kinds("Vec::<HashMap<u8, Vec<u8>>>::new()");
        let gt = toks.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(gt, 3, ">> must lex as two `>` puncts");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("let s = r#\"unterminated");
        let _ = lex("let c = '");
        let _ = lex("/* unterminated");
    }
}
