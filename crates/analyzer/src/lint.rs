//! Workspace self-lint: rules the generic clippy pass cannot express
//! because they encode *this* codebase's invariants.
//!
//! Eight token-level rules over the [lexed](crate::lexer) stream with the
//! same item/`#[cfg(test)]` tracking the extractor uses, plus one
//! dataflow-fed rule ([`RULE_SHARED_WITHOUT_SYNC`]) driven by the
//! [escape facts](crate::dataflow::EscapeFacts) of the dataflow pass:
//!
//! * [`RULE_NO_UNWRAP`] — no `.unwrap()` / `.expect(` in `cs-core`'s
//!   engine/select/guard hot paths. A panic inside the selection engine
//!   takes down the host application the framework promised to speed up
//!   (the guardrail PR exists precisely because adaptation must never make
//!   things worse).
//! * [`RULE_NO_DISPATCH_UNDER_LOCK`] — no `.dispatch(` call while a named
//!   lock guard is live. Sink dispatch runs arbitrary subscriber code;
//!   doing so under an engine lock invites lock-order inversions (the
//!   engine's `record_and_dispatch` deliberately drops the log lock first).
//! * [`RULE_NO_UNBOUNDED_RING`] — no `VecDeque::new()` in a function with
//!   no capacity discipline in sight. Every ring buffer in this codebase is
//!   bounded by design (audit trails, event logs); an unbounded one is a
//!   slow leak.
//! * [`RULE_NO_ALLOC_SPAN_PATH`] — no heap allocation or lock acquisition
//!   inside the tracer's span fast path (`cs-trace`'s span/ring entry
//!   points and the flight recorder's `on_event`). The tracer's overhead
//!   claim rests on those paths costing a few atomics; an accidental
//!   `format!` or `.lock()` silently invalidates the published
//!   `cs_trace_overhead_ratio`. Cold-path functions in the same files
//!   (thread registration, incident recording, cost calibration) are
//!   deliberately outside the guarded item set.
//! * [`RULE_NO_ALLOC_HEAP_COUNT`] — no heap allocation or lock acquisition
//!   inside cs-heap's counting path (the `CountingAlloc` hooks, the
//!   per-thread `note`/`apply`/`add` chain, the ledger reads guards build
//!   deltas from, and `AllocGuard::begin`/`finish`). The hazard here is
//!   sharper than overhead: this code runs *inside* the global allocator,
//!   so an allocation is unbounded recursion and a lock is a re-entrant
//!   deadlock waiting for a signal-unsafe moment. The registration cold
//!   path (`register`, `note_slow`, `process_account`) allocates and locks
//!   deliberately, behind a re-entry flag, and is outside the item set.
//! * [`RULE_NO_RAW_PERSIST_WRITE`] — no raw `fs::write(` / `File::create(` /
//!   `OpenOptions::new(` on a persistence path (cs-state, cs-model, the
//!   engine/runtime stack, and the model-builder bench). Warm start's
//!   crash-safety claim rests on every state and model file reaching disk
//!   via cs-state's temp+fsync+rename writer; a single raw write
//!   reintroduces exactly the torn files the salvage loader exists to
//!   quarantine. The atomic writer module itself is the one exemption —
//!   it is where the raw I/O is supposed to live.
//! * [`RULE_NO_LOCK_IN_LOCKFREE`] — no `Mutex`/`RwLock`/`parking_lot`
//!   tokens inside cs-lockfree's hot-path modules. The strategy tier
//!   prices the lock-free map as the low-contention-slope variant, and the
//!   runtime switches sites onto it precisely when locks are the problem;
//!   a blocking primitive hidden in its operation paths would falsify the
//!   cost model and the progress guarantee at once. The crate root
//!   (docs and re-exports — the cold module) and `#[cfg(test)]` harnesses
//!   are exempt.
//! * [`RULE_NO_BLOCKING_IO_SAMPLER`] — no filesystem or socket tokens
//!   (`fs`/`File`/`OpenOptions`, `TcpStream`/`TcpListener`/`UdpSocket`)
//!   in cs-obs's sampler-path modules (`sampler.rs`, `window.rs`,
//!   `drift.rs`). The sampler thread ticks on a period and its published
//!   `cs_obs_sampler_overhead_ratio` assumes each tick is pure in-memory
//!   work; a procfs read or a socket call on that path turns a bounded
//!   tick into an unbounded one and quietly falsifies the overhead claim.
//!   All blocking I/O belongs in `http.rs` (the designated I/O module,
//!   exempt) or behind the scrape-time `export` path.
//! * [`RULE_SHARED_WITHOUT_SYNC`] — a collection binding captured by a
//!   `spawn(…)` closure with no `Arc`/`Mutex` wrapper in sight *and* still
//!   used on the spawning thread afterwards. That shape is race-adjacent:
//!   either the capture was a move (and the later use is of a stale
//!   shadow), or sharing was intended and the synchronization is missing.
//!   Scoped to library sources: engine/runtime context handles (which are
//!   internally synchronized), test modules, and `tests/`/`examples/`/
//!   `benches/` trees are exempt.
//!
//! Findings diff against a committed baseline keyed by
//! `(rule, path, item, message)` — line numbers drift with every edit and
//! would make the baseline a merge-conflict magnet.

use std::collections::HashMap;

use crate::lexer::{lex, Token, TokenKind};

/// Rule id: `.unwrap()`/`.expect(` in hot paths.
pub const RULE_NO_UNWRAP: &str = "no-unwrap-hot-path";
/// Rule id: sink dispatch while holding a lock guard.
pub const RULE_NO_DISPATCH_UNDER_LOCK: &str = "no-dispatch-under-lock";
/// Rule id: `VecDeque::new()` without capacity discipline.
pub const RULE_NO_UNBOUNDED_RING: &str = "no-unbounded-ring";
/// Rule id: allocation or locking on the tracer's span fast path.
pub const RULE_NO_ALLOC_SPAN_PATH: &str = "no-alloc-in-span-path";
/// Rule id: allocation or locking inside cs-heap's counting path.
pub const RULE_NO_ALLOC_HEAP_COUNT: &str = "no-alloc-in-heap-count-path";
/// Rule id: raw filesystem writes on a persistence path.
pub const RULE_NO_RAW_PERSIST_WRITE: &str = "no-raw-persist-write";
/// Rule id: blocking lock primitives inside the lock-free tier.
pub const RULE_NO_LOCK_IN_LOCKFREE: &str = "no-lock-in-lockfree-path";
/// Rule id: blocking I/O tokens on cs-obs's sampler path.
pub const RULE_NO_BLOCKING_IO_SAMPLER: &str = "no-blocking-io-in-sampler-path";
/// Rule id: a plain collection crossing a thread boundary bare.
pub const RULE_SHARED_WITHOUT_SYNC: &str = "shared-without-sync";

/// Paths (workspace-relative, forward slashes) subject to the unwrap rule.
/// The engine, selection, and guard modules are the in-process hot path of
/// every host application; everything else may justify a panic.
fn unwrap_rule_applies(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        && ["engine.rs", "select.rs", "guard.rs", "context.rs", "handles.rs"]
            .iter()
            .any(|f| path.ends_with(f))
}

/// The lock and ring rules apply to the whole engine/runtime/telemetry
/// stack — anywhere subscriber code or ring buffers live.
fn stack_rule_applies(path: &str) -> bool {
    path.starts_with("crates/core/")
        || path.starts_with("crates/runtime/")
        || path.starts_with("crates/telemetry/")
        || path.starts_with("crates/obs/")
}

/// Persistence-path files subject to the raw-write rule: everywhere the
/// stack writes selection state or cost models that a later boot reads
/// back. The single exemption is cs-state's own atomic writer — the module
/// the rule funnels every other call site into. Out of scope by design:
/// the analyzer's baseline file, bench result JSON, and telemetry's JSONL
/// audit log — none of those is state the engine trusts at startup, so a
/// torn copy is an inconvenience, not a poisoned warm start.
fn persist_rule_applies(path: &str) -> bool {
    let in_scope = path.starts_with("crates/state/src/")
        || path.starts_with("crates/model/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/runtime/src/")
        || path == "crates/bench/src/bin/model_builder.rs";
    in_scope && path != "crates/state/src/writer.rs"
}

/// Hot-path modules of the lock-free tier: everything under
/// `crates/lockfree/src/` except the crate root, which holds only docs and
/// re-exports (the designated cold module). New modules added to the crate
/// are guarded by default — opting one out is an explicit edit here.
fn lockfree_rule_applies(path: &str) -> bool {
    path.starts_with("crates/lockfree/src/") && path != "crates/lockfree/src/lib.rs"
}

/// The sampler-path modules of cs-obs: everything the periodic sampler
/// tick touches (sampling, the frame window, drift scoring). `http.rs` is
/// the designated I/O module and `lib.rs` only wires — both exempt. New
/// modules added to the crate are unguarded until listed here, the
/// inverse default of the lock-free rule, because a new obs module is more
/// likely an endpoint (I/O by design) than a new tick stage.
fn sampler_rule_applies(path: &str) -> bool {
    [
        "crates/obs/src/sampler.rs",
        "crates/obs/src/window.rs",
        "crates/obs/src/drift.rs",
    ]
    .contains(&path)
}

/// Files containing the tracer's span fast path.
fn span_path_rule_applies(path: &str) -> bool {
    [
        "crates/trace/src/ring.rs",
        "crates/trace/src/span.rs",
        "crates/telemetry/src/flight.rs",
    ]
    .contains(&path)
}

/// Item names that form the span fast path in the files above. Everything
/// runs per-span or per-op; anything not listed (thread registration,
/// `record_incident`, `measure_tracer_costs`, snapshot collection) is a
/// cold path allowed to allocate and lock.
const SPAN_PATH_ITEMS: &[&str] = &[
    // cs-trace span entry points and the whole `Span` impl (incl. Drop).
    "span",
    "op_span",
    "enter",
    "exit",
    "Span",
    "enabled",
    "now_ns",
    "with_local",
    "add_app_time",
    "credit_app_ops",
    // ThreadRing per-span/per-op writers.
    "push",
    "add_app",
    "prime_credit",
    "credit_wall",
    // The flight recorder's per-event dispatch hook.
    "on_event",
];

/// Files containing cs-heap's counting path.
fn heap_count_rule_applies(path: &str) -> bool {
    [
        "crates/heap/src/lib.rs",
        "crates/heap/src/counters.rs",
        "crates/heap/src/guard.rs",
    ]
    .contains(&path)
}

/// Item names that form the heap-count path in the files above. These run
/// inside the global allocator (the `GlobalAlloc` hooks and everything they
/// call when registered) or on the per-op attribution path (the ledger
/// read and the guard window arithmetic). Deliberately absent: `register`,
/// `note_slow`, and `process_account` — the cold paths that allocate and
/// lock on purpose, behind the re-entry flag.
const HEAP_COUNT_ITEMS: &[&str] = &[
    // CountingAlloc's GlobalAlloc hooks.
    "alloc",
    "alloc_zeroed",
    "dealloc",
    "realloc",
    // The per-event counting chain.
    "note",
    "apply",
    "add",
    // The ledger read the guards build deltas from.
    "thread_account",
    // The attribution window itself.
    "begin",
    "finish",
];

/// One alloc/lock fast-path rule: which rule id fires, how the message
/// names the path, and the lock finding's rationale tail. Parameterised so
/// the span and heap rules share one scanner while keeping their committed
/// baseline messages byte-stable.
struct FastPathRule {
    rule: &'static str,
    desc: &'static str,
    lock_tail: &'static str,
}

const SPAN_FAST_PATH: FastPathRule = FastPathRule {
    rule: RULE_NO_ALLOC_SPAN_PATH,
    desc: "span fast path",
    lock_tail: "the tracer must stay lock-free",
};

const HEAP_FAST_PATH: FastPathRule = FastPathRule {
    rule: RULE_NO_ALLOC_HEAP_COUNT,
    desc: "heap-count path",
    lock_tail: "inside the allocator a lock is a re-entrant deadlock",
};

/// One self-lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Rule id (one of the `RULE_*` constants).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (informational; not part of the baseline key).
    pub line: u32,
    /// Enclosing item path.
    pub item: String,
    /// Human-readable finding.
    pub message: String,
}

impl Diagnostic {
    /// The baseline key: everything except the line number, so formatting
    /// and unrelated edits do not invalidate the committed baseline.
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.rule, self.path, self.item, self.message)
    }

    /// Renders as `path:line [rule] (item) message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{} [{}] ({}) {}",
            self.path, self.line, self.rule, self.item, self.message
        )
    }
}

/// A live lock guard: binding name and the brace depth of its block.
struct Guard {
    name: String,
    depth: u32,
}

struct Linter<'a> {
    toks: &'a [Token],
    pos: usize,
    path: &'a str,
    depth: u32,
    items: Vec<(String, u32)>,
    pending_item: Option<String>,
    pending_test: bool,
    guards: Vec<Guard>,
    /// Per-item: does the item mention a `capacity`-flavoured identifier?
    capacity_evidence: HashMap<String, bool>,
    /// Deferred `VecDeque::new` findings resolved after the pass.
    ring_sites: Vec<(String, u32)>,
    out: Vec<Diagnostic>,
}

impl<'a> Linter<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn item_path(&self) -> String {
        if self.items.is_empty() {
            "top".to_owned()
        } else {
            self.items
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join("::")
        }
    }

    fn is_path_sep(&self, i: usize) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(':'))
            && self.tok(i + 1).is_some_and(|t| t.is_punct(':'))
    }

    /// Is the scanner inside a fast-path item of a guarded file — the
    /// tracer's span path or cs-heap's counting path? Any enclosing frame
    /// counts, so closures and nested helpers declared inside a fast-path
    /// function stay covered.
    fn fast_path(&self) -> Option<&'static FastPathRule> {
        let in_items = |items: &[&str]| {
            self.items
                .iter()
                .any(|(name, _)| items.contains(&name.as_str()))
        };
        if span_path_rule_applies(self.path) && in_items(SPAN_PATH_ITEMS) {
            return Some(&SPAN_FAST_PATH);
        }
        if heap_count_rule_applies(self.path) && in_items(HEAP_COUNT_ITEMS) {
            return Some(&HEAP_FAST_PATH);
        }
        None
    }

    fn emit(&mut self, rule: &str, line: u32, message: String) {
        self.out.push(Diagnostic {
            rule: rule.to_owned(),
            path: self.path.to_owned(),
            line,
            item: self.item_path(),
            message,
        });
    }

    /// `#[cfg(test)]`-guard detection, mirroring the extractor's.
    fn is_cfg_test_attr(&self) -> bool {
        if !self.tok(self.pos + 1).is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        if !self.tok(self.pos + 2).is_some_and(|t| t.is_ident("cfg")) {
            return false;
        }
        let mut i = self.pos + 3;
        while let Some(t) = self.tok(i) {
            if t.is_punct(']') {
                return false;
            }
            if t.is_ident("test") {
                return true;
            }
            if i > self.pos + 32 {
                return false;
            }
            i += 1;
        }
        false
    }

    fn skip_balanced_braces(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `let [mut] name = … .lock() …;` starting at a `let` keyword: returns
    /// the guard binding when the initializer acquires a lock.
    fn lock_guard_binding(&self) -> Option<String> {
        let mut i = self.pos + 1;
        if self.tok(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        let name = self.tok(i).filter(|t| t.kind == TokenKind::Ident)?;
        // Scan the initializer up to `;` for `.lock(` / `.read(` / `.write(`.
        let mut saw_lock = false;
        let mut j = i + 1;
        let mut brace_guard = 0u32;
        while let Some(t) = self.tok(j) {
            if t.is_punct(';') && brace_guard == 0 {
                break;
            }
            if t.is_punct('{') {
                brace_guard += 1;
            }
            if t.is_punct('}') {
                if brace_guard == 0 {
                    break;
                }
                brace_guard -= 1;
            }
            // Only a lock acquired at the statement's own nesting level
            // makes the binding a guard: in `let x = { ….lock()… }` the
            // guard lives and dies inside the block expression.
            if brace_guard == 0
                && t.is_punct('.')
                && self
                    .tok(j + 1)
                    .is_some_and(|m| m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
                && self.tok(j + 2).is_some_and(|p| p.is_punct('('))
            {
                saw_lock = true;
            }
            j += 1;
        }
        if saw_lock {
            Some(name.text.clone())
        } else {
            None
        }
    }

    fn scan(&mut self) {
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            match t.kind {
                TokenKind::Punct => self.scan_punct(),
                TokenKind::Ident => self.scan_ident(),
                _ => self.pos += 1,
            }
        }
        // Resolve deferred ring-buffer findings now that capacity evidence
        // for every item is complete.
        let rings = std::mem::take(&mut self.ring_sites);
        for (item, line) in rings {
            if !self.capacity_evidence.get(&item).copied().unwrap_or(false) {
                self.out.push(Diagnostic {
                    rule: RULE_NO_UNBOUNDED_RING.to_owned(),
                    path: self.path.to_owned(),
                    line,
                    item: item.clone(),
                    message: "VecDeque::new() with no capacity discipline in the enclosing item"
                        .to_owned(),
                });
            }
        }
    }

    fn scan_punct(&mut self) {
        let t = &self.toks[self.pos];
        match t.text.as_bytes()[0] {
            b'{' => {
                if let Some(name) = self.pending_item.take() {
                    self.items.push((name, self.depth));
                }
                self.depth += 1;
            }
            b'}' => {
                self.depth = self.depth.saturating_sub(1);
                while self
                    .guards
                    .last()
                    .is_some_and(|g| g.depth > self.depth)
                {
                    self.guards.pop();
                }
                if self.items.last().is_some_and(|(_, d)| *d == self.depth) {
                    self.items.pop();
                }
            }
            b';' => {
                self.pending_item = None;
                self.pending_test = false;
            }
            b'#'
                if self.is_cfg_test_attr() => {
                    self.pending_test = true;
                }
            b'.' => {
                self.scan_dot();
            }
            _ => {}
        }
        self.pos += 1;
    }

    /// `.method(` checks: unwrap/expect, dispatch-under-lock, and
    /// span-path alloc/lock calls.
    fn scan_dot(&mut self) {
        let Some(m) = self.tok(self.pos + 1).filter(|m| m.kind == TokenKind::Ident) else {
            return;
        };
        let line = m.line;
        // `.collect::<T>()` carries a turbofish, so accept `::` as well as
        // `(` for the span-path method checks.
        let called = self.tok(self.pos + 2).is_some_and(|p| p.is_punct('('))
            || self.is_path_sep(self.pos + 2);
        if called {
            if let Some(fp) = self.fast_path() {
                match m.text.as_str() {
                    "lock" | "read" | "write" => {
                        let msg = format!(
                            "`.{}()` on the {} — {}",
                            m.text, fp.desc, fp.lock_tail
                        );
                        self.emit(fp.rule, line, msg);
                    }
                    "to_string" | "to_owned" | "to_vec" | "collect" => {
                        let msg = format!("`.{}()` allocates on the {}", m.text, fp.desc);
                        self.emit(fp.rule, line, msg);
                    }
                    _ => {}
                }
            }
        }
        if !self.tok(self.pos + 2).is_some_and(|p| p.is_punct('(')) {
            return;
        }
        match m.text.as_str() {
            "unwrap" | "expect" if unwrap_rule_applies(self.path) => {
                let msg = format!("`.{}()` on an engine hot path — return an error or degrade instead of panicking", m.text);
                self.emit(RULE_NO_UNWRAP, line, msg);
            }
            "dispatch" if stack_rule_applies(self.path) && !self.guards.is_empty() => {
                let holding = self
                    .guards
                    .iter()
                    .map(|g| g.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let msg = format!(
                    "sink dispatch while holding lock guard(s) `{holding}` — drop the guard before dispatching"
                );
                self.emit(RULE_NO_DISPATCH_UNDER_LOCK, line, msg);
            }
            _ => {}
        }
    }

    /// Allocation spelled as a constructor path or macro, checked against
    /// the span and heap-count fast paths: `Vec::new(...)`, `Box::new(...)`,
    /// `vec![...]`, `format!(...)`, and friends.
    fn check_fast_path_ident(&mut self) {
        let Some(fp) = self.fast_path() else {
            return;
        };
        let t = &self.toks[self.pos];
        let line = t.line;
        match t.text.as_str() {
            "Vec" | "Box" | "String" | "VecDeque" | "Arc" | "HashMap" | "BTreeMap"
                if self.is_path_sep(self.pos + 1)
                    && self.tok(self.pos + 3).is_some_and(|n| {
                        n.is_ident("new") || n.is_ident("from") || n.is_ident("with_capacity")
                    })
                    && self.tok(self.pos + 4).is_some_and(|p| p.is_punct('(')) =>
            {
                let ctor = format!("{}::{}", t.text, self.toks[self.pos + 3].text);
                let msg = format!("`{ctor}` allocates on the {}", fp.desc);
                self.emit(fp.rule, line, msg);
            }
            "vec" | "format" if self.tok(self.pos + 1).is_some_and(|p| p.is_punct('!')) => {
                let msg = format!("`{}!` allocates on the {}", t.text, fp.desc);
                self.emit(fp.rule, line, msg);
            }
            _ => {}
        }
    }

    fn scan_ident(&mut self) {
        self.check_fast_path_ident();
        let t = &self.toks[self.pos];
        match t.text.as_str() {
            "fn" | "mod" | "trait" | "struct" | "enum" | "union" => {
                if self.pending_test {
                    // Skip the guarded item wholesale: find its `{` and jump
                    // past the matching `}`. Items ending in `;` fall out of
                    // the pending state naturally.
                    self.pending_test = false;
                    while let Some(t) = self.tok(self.pos) {
                        if t.is_punct('{') {
                            self.skip_balanced_braces();
                            return;
                        }
                        if t.is_punct(';') {
                            return;
                        }
                        self.pos += 1;
                    }
                    return;
                }
                if let Some(name) = self.tok(self.pos + 1).filter(|n| n.kind == TokenKind::Ident)
                {
                    self.pending_item = Some(name.text.clone());
                }
                self.pos += 1;
            }
            "impl" => {
                let mut i = self.pos + 1;
                let mut name = String::from("impl");
                while let Some(t) = self.tok(i) {
                    if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                        break;
                    }
                    if t.kind == TokenKind::Ident && t.text != "for" {
                        name = t.text.clone();
                    }
                    i += 1;
                }
                self.pending_item = Some(name);
                self.pos += 1;
            }
            "let" => {
                if let Some(guard) = self.lock_guard_binding() {
                    self.guards.push(Guard {
                        name: guard,
                        depth: self.depth,
                    });
                }
                self.pos += 1;
            }
            "drop" => {
                // `drop(guard)` releases it early.
                if self.tok(self.pos + 1).is_some_and(|t| t.is_punct('(')) {
                    if let Some(arg) = self.tok(self.pos + 2) {
                        self.guards.retain(|g| g.name != arg.text);
                    }
                }
                self.pos += 1;
            }
            "VecDeque" => {
                if self.is_path_sep(self.pos + 1)
                    && self.tok(self.pos + 3).is_some_and(|t| t.is_ident("new"))
                    && self.tok(self.pos + 4).is_some_and(|t| t.is_punct('('))
                    && stack_rule_applies(self.path)
                {
                    self.ring_sites.push((self.item_path(), t.line));
                }
                self.pos += 1;
            }
            // Any socket token on the sampler path — type position,
            // constructor, or `use` — is blocking I/O inside the periodic
            // tick; like the lock-free rule, the token is the finding.
            "TcpStream" | "TcpListener" | "UdpSocket" if sampler_rule_applies(self.path) => {
                let msg = format!(
                    "`{}` on the obs sampler path — socket I/O makes the tick unbounded \
                     and falsifies `cs_obs_sampler_overhead_ratio`; sockets live in http.rs",
                    t.text
                );
                self.emit(RULE_NO_BLOCKING_IO_SAMPLER, t.line, msg);
                self.pos += 1;
            }
            // Any appearance of a blocking primitive — type position,
            // constructor, or `use` — violates the lock-free tier's
            // progress guarantee; the token itself is the finding.
            "Mutex" | "RwLock" | "parking_lot" if lockfree_rule_applies(self.path) => {
                let msg = format!(
                    "`{}` in a lock-free hot-path module — blocking primitives forfeit \
                     the progress guarantee the strategy tier's cost model prices",
                    t.text
                );
                self.emit(RULE_NO_LOCK_IN_LOCKFREE, t.line, msg);
                self.pos += 1;
            }
            // Raw writes on persistence paths: `fs::write(` (also matches
            // the `fs` inside `std::fs::write(`), `File::create(` (also the
            // `File` inside `fs::File::create(`), and `OpenOptions::new(`.
            "fs" | "File" | "OpenOptions" => {
                // On the obs sampler path any filesystem token at all is a
                // finding (a procfs read blocks the tick as surely as a
                // write would); elsewhere only the raw-persist-write
                // constructor shapes below matter.
                if sampler_rule_applies(self.path) {
                    let msg = format!(
                        "`{}` on the obs sampler path — filesystem I/O makes the tick \
                         unbounded and falsifies `cs_obs_sampler_overhead_ratio`; \
                         procfs reads belong on the scrape-time export path",
                        t.text
                    );
                    self.emit(RULE_NO_BLOCKING_IO_SAMPLER, t.line, msg);
                }
                let ctor = match t.text.as_str() {
                    "fs" => "write",
                    "File" => "create",
                    _ => "new",
                };
                if persist_rule_applies(self.path)
                    && self.is_path_sep(self.pos + 1)
                    && self.tok(self.pos + 3).is_some_and(|n| n.is_ident(ctor))
                    && self.tok(self.pos + 4).is_some_and(|p| p.is_punct('('))
                {
                    let msg = format!(
                        "`{}::{ctor}` on a persistence path — a crash mid-write tears the file; route through cs-state's atomic writer",
                        t.text
                    );
                    self.emit(RULE_NO_RAW_PERSIST_WRITE, t.line, msg);
                }
                self.pos += 1;
            }
            other => {
                if other.to_ascii_lowercase().contains("capacity") {
                    let item = self.item_path();
                    self.capacity_evidence.insert(item, true);
                }
                self.pos += 1;
            }
        }
    }
}

/// Paths subject to the shared-without-sync rule: library sources only.
/// Integration tests, examples, and benches spawn-and-join with channels
/// or scoped threads as a matter of course; the race-shaped pattern only
/// warrants a finding where host applications inherit the code.
fn shared_sync_rule_applies(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.contains("/tests/")
        && !path.contains("/examples/")
        && !path.contains("/benches/")
}

/// The dataflow-fed rule: extract the file's sites, run the escape
/// analysis, and flag bindings that cross a thread boundary bare (spawned,
/// no `Arc`/`Mutex`, and still used on the spawning thread afterwards).
fn lint_shared_without_sync(path: &str, src: &str, out: &mut Vec<Diagnostic>) {
    if !shared_sync_rule_applies(path) {
        return;
    }
    let opts = crate::extract::ExtractOptions::default();
    let analysis = crate::extract::extract(path, src, opts);
    let flows = crate::dataflow::dataflow_file(src, &analysis, opts);
    for (site, facts) in analysis.sites.iter().zip(&flows) {
        // Engine/runtime context handles are internally synchronized —
        // crossing threads is what they are for.
        if matches!(site.category, crate::extract::SiteCategory::Context | crate::extract::SiteCategory::Runtime) {
            continue;
        }
        if site.in_test || !facts.escape.shared_without_sync() {
            continue;
        }
        let binding = site.binding.as_deref().unwrap_or("<anonymous>");
        out.push(Diagnostic {
            rule: RULE_SHARED_WITHOUT_SYNC.to_owned(),
            path: path.to_owned(),
            line: site.line,
            item: site.item.clone(),
            message: format!(
                "`{binding}` is captured by spawn(…) without Arc/Mutex and used afterwards — race-shaped sharing"
            ),
        });
    }
}

/// Lints one source file; `path` decides which rules apply.
pub fn lint_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let toks = lex(src);
    let mut linter = Linter {
        toks: &toks,
        pos: 0,
        path,
        depth: 0,
        items: Vec::new(),
        pending_item: None,
        pending_test: false,
        guards: Vec::new(),
        capacity_evidence: HashMap::new(),
        ring_sites: Vec::new(),
        out: Vec::new(),
    };
    linter.scan();
    let mut out = linter.out;
    lint_shared_without_sync(path, src, &mut out);
    out
}

/// Splits `current` findings into `(new, fixed)` relative to a baseline of
/// [`Diagnostic::key`]s: `new` are findings absent from the baseline (CI
/// failure), `fixed` are baseline keys no longer found (prune the baseline).
pub fn diff_against_baseline(
    current: &[Diagnostic],
    baseline: &[String],
) -> (Vec<Diagnostic>, Vec<String>) {
    let current_keys: Vec<String> = current.iter().map(|d| d.key()).collect();
    let fresh = current
        .iter()
        .filter(|d| !baseline.contains(&d.key()))
        .cloned()
        .collect();
    let fixed = baseline
        .iter()
        .filter(|k| !current_keys.contains(k))
        .cloned()
        .collect();
    (fresh, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_engine_hot_path_is_flagged() {
        let src = r#"
fn select(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
        let d = lint_file("crates/core/src/select.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_NO_UNWRAP);
        assert_eq!(d[0].item, "select");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unwrap_outside_hot_paths_is_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lint_file("crates/workloads/src/runner.rs", src).is_empty());
        assert!(lint_file("crates/core/src/event.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_is_fine_even_in_hot_path_files() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 { x.unwrap() }
}
"#;
        assert!(lint_file("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn dispatch_under_lock_is_flagged() {
        let src = r#"
fn notify(&self) {
    let log = self.log.lock();
    self.sinks.dispatch(&log.last());
}
"#;
        let d = lint_file("crates/core/src/event.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_NO_DISPATCH_UNDER_LOCK);
        assert!(d[0].message.contains("`log`"), "{}", d[0].message);
    }

    #[test]
    fn dispatch_after_scoped_lock_is_fine() {
        // The engine's actual `record_and_dispatch` shape: lock in an inner
        // block, dispatch after it closes.
        let src = r#"
fn notify(&self) {
    let event = {
        let log = self.log.lock();
        log.last()
    };
    self.sinks.dispatch(&event);
}
"#;
        assert!(lint_file("crates/core/src/event.rs", src).is_empty());
    }

    #[test]
    fn dispatch_after_explicit_drop_is_fine() {
        let src = r#"
fn notify(&self) {
    let log = self.log.lock();
    let event = log.last();
    drop(log);
    self.sinks.dispatch(&event);
}
"#;
        assert!(lint_file("crates/core/src/event.rs", src).is_empty());
    }

    #[test]
    fn unbounded_ring_is_flagged_and_capacity_evidence_clears_it() {
        let bad = "fn make() -> VecDeque<u32> { VecDeque::new() }";
        let d = lint_file("crates/core/src/event.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RULE_NO_UNBOUNDED_RING);

        let good = r#"
fn make(capacity: usize) -> VecDeque<u32> {
    let mut q = VecDeque::new();
    q.reserve(capacity);
    q
}
"#;
        assert!(lint_file("crates/core/src/event.rs", good).is_empty());
    }

    #[test]
    fn span_path_alloc_and_lock_are_flagged() {
        let src = r#"
pub fn op_span(site: u64) -> Span {
    let label = format!("site-{site}");
    let parts: Vec<u64> = label.bytes().map(u64::from).collect::<Vec<u64>>();
    let boxed = Box::new(parts);
    let guard = REGISTRY.lock();
    Span::disarmed()
}
"#;
        let d = lint_file("crates/trace/src/span.rs", src);
        let rules: Vec<&str> = d.iter().map(|x| x.rule.as_str()).collect();
        assert!(rules.iter().all(|r| *r == RULE_NO_ALLOC_SPAN_PATH), "{d:?}");
        assert_eq!(d.len(), 4, "format!, collect, Box::new, lock: {d:?}");
        assert!(d.iter().all(|x| x.item == "op_span"));
    }

    #[test]
    fn span_path_cold_functions_may_allocate() {
        // Registration and calibration are deliberately outside the
        // guarded item set — they run once per thread / process.
        let src = r#"
fn register_current_thread() -> LocalTrace {
    let ring = Arc::new(ThreadRing::new(7));
    registry().lock().push(Arc::clone(&ring));
    LocalTrace { ring }
}
fn measure_tracer_costs() -> TracerCosts {
    let samples: Vec<u64> = (0..8).map(|_| 1).collect();
    TracerCosts { span_ns: samples[0], check_ns: 1 }
}
"#;
        assert!(lint_file("crates/trace/src/span.rs", src).is_empty());
    }

    #[test]
    fn span_path_rule_is_scoped_to_its_files() {
        // The same hot item names elsewhere in the workspace are fine.
        let src = "fn push(&self) { let line = format!(\"x\"); self.buf.lock().push(line); }";
        assert!(lint_file("crates/core/src/event.rs", src).is_empty());
        assert!(lint_file("crates/trace/src/snapshot.rs", src).is_empty());
    }

    #[test]
    fn flight_recorder_on_event_must_not_allocate() {
        let src = r#"
impl EngineEventSink for FlightRecorder {
    fn on_event(&self, event: &EngineEvent) {
        let trigger = event.name().to_owned();
        self.record_incident(&trigger, Some(event));
    }
}
impl FlightRecorder {
    fn record_incident(&self, trigger: &str) {
        let doc = format!("{{\"trigger\":\"{trigger}\"}}");
        self.sink.write(doc);
    }
}
"#;
        let d = lint_file("crates/telemetry/src/flight.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_NO_ALLOC_SPAN_PATH);
        assert!(d[0].item.contains("on_event"), "{}", d[0].item);
        assert!(d[0].message.contains("to_owned"));
    }

    #[test]
    fn heap_count_path_alloc_and_lock_are_flagged() {
        // An allocation inside the allocator hook is unbounded recursion;
        // a lock is a re-entrant deadlock. Both must fire.
        let src = r#"
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let label = format!("alloc-{}", layout.size());
        let guard = REGISTRY.lock();
        System.alloc(layout)
    }
}
"#;
        let d = lint_file("crates/heap/src/lib.rs", src);
        assert_eq!(d.len(), 2, "format! and lock: {d:?}");
        assert!(d.iter().all(|x| x.rule == RULE_NO_ALLOC_HEAP_COUNT), "{d:?}");
        assert!(d.iter().all(|x| x.item.contains("alloc")), "{d:?}");
        assert!(d[1].message.contains("re-entrant deadlock"), "{}", d[1].message);
    }

    #[test]
    fn heap_guard_window_must_not_allocate() {
        let src = r#"
impl AllocGuard {
    pub fn finish(self) -> AllocDelta {
        let boxed = Box::new(self.start_count);
        let trace = self.samples.iter().copied().collect::<Vec<u64>>();
        AllocDelta::default()
    }
}
"#;
        let d = lint_file("crates/heap/src/guard.rs", src);
        assert_eq!(d.len(), 2, "Box::new and collect: {d:?}");
        assert!(d.iter().all(|x| x.rule == RULE_NO_ALLOC_HEAP_COUNT), "{d:?}");
        assert!(d.iter().all(|x| x.item.contains("finish")), "{d:?}");
    }

    #[test]
    fn heap_cold_paths_may_allocate_and_lock() {
        // Registration and the process rollup run behind the re-entry flag
        // and are deliberately outside the guarded item set.
        let src = r#"
fn register(slot: &RefCell<Option<Registered>>) -> bool {
    let block = Arc::new(ThreadCounters::default());
    registry().lock().expect("poisoned").push(Arc::clone(&block));
    true
}
fn process_account() -> HeapAccount {
    let snapshots: Vec<HeapAccount> = registry().lock().unwrap().iter().map(read).collect();
    HeapAccount::default()
}
"#;
        assert!(lint_file("crates/heap/src/counters.rs", src).is_empty());
    }

    #[test]
    fn heap_count_rule_is_scoped_to_cs_heap() {
        // The same item names elsewhere (every collection has an `alloc` or
        // `add`, every guard a `begin`/`finish`) are not on this path.
        let src = "fn begin() { let v = vec![1, 2]; let g = STATE.lock(); }";
        assert!(lint_file("crates/runtime/src/tlb.rs", src).is_empty());
        assert!(lint_file("crates/core/src/handles.rs", src).is_empty());
    }

    #[test]
    fn raw_writes_on_persistence_paths_are_flagged() {
        let src = r#"
fn save(path: &Path, text: &str) {
    std::fs::write(path, text).ok();
    let direct = File::create(path);
    let opts = OpenOptions::new().write(true).open(path);
}
"#;
        let d = lint_file("crates/model/src/persist.rs", src);
        assert_eq!(d.len(), 3, "fs::write, File::create, OpenOptions::new: {d:?}");
        assert!(d.iter().all(|x| x.rule == RULE_NO_RAW_PERSIST_WRITE), "{d:?}");
        assert!(d.iter().all(|x| x.item == "save"));
        assert!(d[0].message.contains("atomic writer"), "{}", d[0].message);
    }

    #[test]
    fn atomic_writer_module_may_use_raw_io() {
        // The one place raw file I/O is supposed to live: the writer that
        // implements temp+fsync+rename for everyone else.
        let src = r#"
fn write_atomic(path: &Path, bytes: &[u8]) {
    let mut file = fs::File::create(path).unwrap();
    file.write_all(bytes).unwrap();
}
"#;
        assert!(lint_file("crates/state/src/writer.rs", src).is_empty());
    }

    #[test]
    fn raw_writes_off_persistence_paths_are_fine() {
        // Baseline JSON, bench results, and the JSONL audit log are not
        // state the engine reads back at boot; a torn copy is recoverable.
        let src = "fn dump(path: &Path) { std::fs::write(path, b\"x\").ok(); }";
        assert!(lint_file("crates/analyzer/src/main.rs", src).is_empty());
        assert!(lint_file("crates/telemetry/src/sinks.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/bin/runtime_sweep.rs", src).is_empty());
    }

    #[test]
    fn model_builder_bench_is_a_persistence_path() {
        // The calibration bench writes the model files every later engine
        // boot loads, so it is held to the same atomic-write discipline.
        let src = "fn save_models() { std::fs::write(\"lists.model\", b\"{}\").ok(); }";
        let d = lint_file("crates/bench/src/bin/model_builder.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_NO_RAW_PERSIST_WRITE);
    }

    #[test]
    fn raw_writes_in_tests_are_fine_even_on_persistence_paths() {
        // Chaos tests corrupt snapshot files on purpose.
        let src = r#"
#[cfg(test)]
mod tests {
    fn corrupt(path: &Path) { std::fs::write(path, b"junk").unwrap(); }
}
"#;
        assert!(lint_file("crates/state/src/reader.rs", src).is_empty());
    }

    #[test]
    fn lock_primitives_in_lockfree_hot_modules_are_flagged() {
        let src = r#"
fn degrade(&self) {
    let fallback = parking_lot::Mutex::new(0u64);
    let table: RwLock<Vec<u64>> = RwLock::new(Vec::new());
}
"#;
        let d = lint_file("crates/lockfree/src/map.rs", src);
        assert_eq!(d.len(), 4, "parking_lot, Mutex, RwLock x2: {d:?}");
        assert!(d.iter().all(|x| x.rule == RULE_NO_LOCK_IN_LOCKFREE), "{d:?}");
        assert!(d.iter().all(|x| x.item == "degrade"));
        assert!(d[0].message.contains("progress guarantee"), "{}", d[0].message);

        let epoch = "fn pin() -> Guard { let g = Mutex::new(()); Guard }";
        assert_eq!(lint_file("crates/lockfree/src/epoch.rs", epoch).len(), 1);
    }

    #[test]
    fn lockfree_rule_exempts_tests_crate_root_and_other_crates() {
        // Test harnesses may coordinate with locks; the crate root is the
        // cold docs/re-export module; and the rest of the workspace (the
        // lock-striped substrate included) locks on purpose.
        let test_src = r#"
#[cfg(test)]
mod tests {
    fn gate() { let barrier = parking_lot::Mutex::new(()); }
}
"#;
        assert!(lint_file("crates/lockfree/src/map.rs", test_src).is_empty());
        let src = "fn f() { let m = parking_lot::Mutex::new(0u64); }";
        assert!(lint_file("crates/lockfree/src/lib.rs", src).is_empty());
        assert!(lint_file("crates/runtime/src/map.rs", src).is_empty());
    }

    #[test]
    fn blocking_io_on_the_sampler_path_is_flagged() {
        // A procfs read inside a tick stage: the fs token is the finding.
        let fs_src = r#"
fn tick(core: &ObsCore) {
    let stat = std::fs::read_to_string("/proc/self/stat");
}
"#;
        let d = lint_file("crates/obs/src/sampler.rs", fs_src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_NO_BLOCKING_IO_SAMPLER);
        assert_eq!(d[0].item, "tick");
        assert!(d[0].message.contains("overhead_ratio"), "{}", d[0].message);

        // A socket anywhere in drift scoring, even just a type mention.
        let sock_src = "fn observe(s: &TcpStream) {}";
        let d = lint_file("crates/obs/src/drift.rs", sock_src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_NO_BLOCKING_IO_SAMPLER);

        let file_src = "fn push(&mut self) { let f = File::open(\"x\"); }";
        assert_eq!(lint_file("crates/obs/src/window.rs", file_src).len(), 1);
    }

    #[test]
    fn sampler_rule_exempts_http_tests_and_other_crates() {
        // http.rs is the designated I/O module; sockets are its job.
        let src = "fn accept_loop(l: &TcpListener) { let s = TcpStream::connect(a); }";
        assert!(lint_file("crates/obs/src/http.rs", src).is_empty());
        // lib.rs wires but does not tick.
        assert!(lint_file("crates/obs/src/lib.rs", src).is_empty());
        // Test harnesses scrape themselves over real sockets on purpose.
        let test_src = r#"
#[cfg(test)]
mod tests {
    fn get() { let s = TcpStream::connect(addr); }
}
"#;
        assert!(lint_file("crates/obs/src/sampler.rs", test_src).is_empty());
        // The rest of the workspace reads procfs and opens sockets freely.
        let fs_src = "fn peak_rss() { let s = std::fs::read_to_string(\"/proc/self/status\"); }";
        assert!(lint_file("crates/heap/src/lib.rs", fs_src).is_empty());
    }

    #[test]
    fn bare_spawn_capture_with_later_use_is_flagged() {
        let src = r#"
fn fan_out(xs: &[u64]) -> usize {
    let mut shared = Vec::new();
    std::thread::spawn(move || shared.push(1));
    shared.len()
}
"#;
        let d = lint_file("crates/workloads/src/fan.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_SHARED_WITHOUT_SYNC);
        assert_eq!(d[0].item, "fan_out");
        assert!(d[0].message.contains("`shared`"), "{}", d[0].message);
    }

    #[test]
    fn synchronized_or_unshared_collections_are_fine() {
        // Arc+Mutex wrapping is the sanctioned sharing shape.
        let wrapped = r#"
fn fan_out(xs: &[u64]) {
    let shared = Arc::new(Mutex::new(Vec::new()));
    std::thread::spawn(move || shared.lock());
}
"#;
        assert!(lint_file("crates/workloads/src/fan.rs", wrapped).is_empty());
        // Spawned but never touched again on this thread: a plain move.
        let moved = r#"
fn hand_off() {
    let work = Vec::new();
    std::thread::spawn(move || work.len());
}
"#;
        assert!(lint_file("crates/workloads/src/fan.rs", moved).is_empty());
    }

    #[test]
    fn shared_sync_rule_is_scoped_to_library_sources() {
        let src = r#"
fn fan_out(xs: &[u64]) -> usize {
    let mut shared = Vec::new();
    std::thread::spawn(move || shared.push(1));
    shared.len()
}
"#;
        // Integration tests, examples, benches, and the workspace-level
        // examples tree spawn-and-join freely.
        assert!(lint_file("crates/runtime/tests/stress.rs", src).is_empty());
        assert!(lint_file("crates/workloads/examples/demo.rs", src).is_empty());
        assert!(lint_file("crates/bench/benches/sweep.rs", src).is_empty());
        assert!(lint_file("examples/advisor_demo.rs", src).is_empty());
        // Engine context handles are internally synchronized.
        let ctx = r#"
fn wire(engine: &Switch) -> usize {
    let log = engine.named_list_context::<u64>(ListKind::Array, "hot-log");
    std::thread::spawn(move || log.push(1));
    log.len()
}
"#;
        assert!(lint_file("crates/core/src/wire.rs", ctx).is_empty());
    }

    #[test]
    fn baseline_diff_separates_new_from_fixed() {
        let d = lint_file(
            "crates/core/src/select.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        let baseline = vec![d[0].key(), "stale|key|gone|msg".to_owned()];
        let (fresh, fixed) = diff_against_baseline(&d, &baseline);
        assert!(fresh.is_empty(), "baselined finding must not re-fire");
        assert_eq!(fixed, vec!["stale|key|gone|msg".to_owned()]);

        let (fresh2, _) = diff_against_baseline(&d, &[]);
        assert_eq!(fresh2.len(), 1);
    }
}
