//! Static ↔ runtime drift checking.
//!
//! The engine's [`site_manifest`](cs_core::Switch::site_manifest) says which
//! allocation sites *registered at runtime*; the extractor says which sites
//! *exist in source*. Drift between the two is how a CollectionSwitch
//! deployment rots silently: a context created from source the analyzer
//! cannot see (generated code, stale binaries), or instrumented sites that
//! never run (dead feature flags) and keep paying their declared footprint.
//!
//! Matching is by name, strongest evidence first: a runtime site whose name
//! equals a static site's declared `named_*` literal, its fingerprint
//! (`path::item#ordinal`), or its location (`path:line`) is **anchored**.
//! Auto-generated names (`list-site-3`, `cmap-0`, …) carry no source
//! identity and are reported as **anonymous** — a warning, not a failure,
//! because the engine mints them legitimately for anonymous contexts. A
//! *named* runtime site matching nothing static is **unanchored** and fails
//! the check: something registered under a name the source does not declare.
//!
//! The reverse direction — static context sites that never registered — is
//! the **unexercised** list, informational by default (a scan of a library
//! tree legitimately finds sites the example run never touches).

use cs_core::SiteManifestEntry;

use crate::advise::SiteAdvice;
use crate::extract::{SiteCategory, StaticSite};

/// Coarse allocation-rate classes: the granularity at which a synthetic
/// model prediction and a hardware measurement can honestly be compared.
/// Bytes-per-op magnitudes differ between model units and real allocators;
/// *classes* (order-of-magnitude bands) transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocClass {
    /// ≤ 0 bytes/op — steady state allocates nothing.
    Negligible,
    /// (0, 8) bytes/op — sub-word churn.
    Low,
    /// [8, 48) bytes/op — roughly one small allocation per few ops.
    Moderate,
    /// ≥ 48 bytes/op — allocation-dominated.
    High,
}

impl std::fmt::Display for AllocClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AllocClass::Negligible => "negligible",
            AllocClass::Low => "low",
            AllocClass::Moderate => "moderate",
            AllocClass::High => "high",
        })
    }
}

/// Buckets a bytes-per-op figure into its [`AllocClass`].
pub fn classify_alloc(bytes_per_op: f64) -> AllocClass {
    if bytes_per_op <= 0.0 {
        AllocClass::Negligible
    } else if bytes_per_op < 8.0 {
        AllocClass::Low
    } else if bytes_per_op < 48.0 {
        AllocClass::Moderate
    } else {
        AllocClass::High
    }
}

/// One anchored site's static-vs-measured allocation comparison.
#[derive(Debug, Clone)]
pub struct AllocDrift {
    /// The runtime site name.
    pub runtime_name: String,
    /// The anchored static fingerprint.
    pub fingerprint: String,
    /// The advisor's predicted `alloc_bytes_per_op` for the declared kind.
    pub predicted_bytes_per_op: f64,
    /// The manifest's measured `alloc_bytes_per_op`.
    pub measured_bytes_per_op: f64,
    /// Class of the prediction.
    pub predicted_class: AllocClass,
    /// Class of the measurement.
    pub measured_class: AllocClass,
    /// The classes agree.
    pub agree: bool,
}

/// The outcome of one drift comparison.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// `(runtime name, static fingerprint)` pairs that anchored.
    pub matched: Vec<(String, String)>,
    /// Runtime sites with engine-minted anonymous names (warning).
    pub anonymous: Vec<String>,
    /// Named runtime sites with no static counterpart (failure).
    pub unanchored: Vec<String>,
    /// Static context/runtime sites that never registered (informational).
    pub unexercised: Vec<String>,
    /// Static-vs-measured allocation-class comparisons for anchored sites
    /// where both sides exist (advice carried a prediction, the manifest
    /// measured nonzero traffic). Disagreement is a warning, not a
    /// failure: synthetic profiles are fictions and the class check is a
    /// smoke alarm, not a gate.
    pub alloc_drift: Vec<AllocDrift>,
}

impl DriftReport {
    /// The check's pass criterion: every *named* runtime site is anchored
    /// to a static site (static manifest ⊇ named runtime sites).
    pub fn passes(&self) -> bool {
        self.unanchored.is_empty()
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift: {} anchored, {} anonymous, {} unanchored, {} unexercised — {}\n",
            self.matched.len(),
            self.anonymous.len(),
            self.unanchored.len(),
            self.unexercised.len(),
            if self.passes() { "PASS" } else { "FAIL" }
        ));
        for (name, fp) in &self.matched {
            out.push_str(&format!("  anchored   {name} -> {fp}\n"));
        }
        for name in &self.anonymous {
            out.push_str(&format!("  anonymous  {name} (engine-minted name; no source identity)\n"));
        }
        for name in &self.unanchored {
            out.push_str(&format!("  UNANCHORED {name} (no static site declares this name)\n"));
        }
        for fp in &self.unexercised {
            out.push_str(&format!("  unexercised {fp} (static site never registered)\n"));
        }
        for d in &self.alloc_drift {
            let verdict = if d.agree { "alloc-ok   " } else { "ALLOC-DRIFT" };
            out.push_str(&format!(
                "  {verdict} {name} predicted {p:.1} B/op ({pc}) vs measured {m:.1} B/op ({mc})\n",
                name = d.runtime_name,
                p = d.predicted_bytes_per_op,
                pc = d.predicted_class,
                m = d.measured_bytes_per_op,
                mc = d.measured_class,
            ));
        }
        out
    }
}

/// Is `name` one of the engine/runtime auto-generated site names?
/// (`list-site-N` / `set-site-N` / `map-site-N` from the engine,
/// `clist-N` / `cset-N` / `cmap-N` from the concurrent runtime.)
pub fn is_auto_generated_name(name: &str) -> bool {
    let numeric_suffix = |prefix: &str| {
        name.strip_prefix(prefix)
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    };
    numeric_suffix("list-site-")
        || numeric_suffix("set-site-")
        || numeric_suffix("map-site-")
        || numeric_suffix("clist-")
        || numeric_suffix("cset-")
        || numeric_suffix("cmap-")
}

/// Compares the static site list against a runtime manifest.
pub fn check_drift(static_sites: &[StaticSite], runtime: &[SiteManifestEntry]) -> DriftReport {
    let mut report = DriftReport::default();
    let mut anchored_fingerprints: Vec<String> = Vec::new();

    for entry in runtime {
        let hit = static_sites.iter().find(|s| {
            s.declared_name.as_deref() == Some(entry.name.as_str())
                || s.fingerprint() == entry.name
                || s.location() == entry.name
        });
        match hit {
            Some(site) => {
                anchored_fingerprints.push(site.fingerprint());
                report.matched.push((entry.name.clone(), site.fingerprint()));
            }
            None if is_auto_generated_name(&entry.name) => {
                report.anonymous.push(entry.name.clone());
            }
            None => report.unanchored.push(entry.name.clone()),
        }
    }

    // Reverse direction: static sites that *would* register (context or
    // runtime category) but did not show up in the manifest.
    for site in static_sites {
        if matches!(site.category, SiteCategory::Context | SiteCategory::Runtime)
            && !anchored_fingerprints.contains(&site.fingerprint())
        {
            report.unexercised.push(site.fingerprint());
        }
    }
    report
}

/// Compares *advised* static sites against a runtime manifest: the same
/// anchoring as [`check_drift`], plus — for every anchored pair where the
/// advisor predicted an allocation rate and the manifest measured nonzero
/// traffic — a static-vs-measured [`AllocClass`] comparison. The pass
/// criterion is unchanged (unanchored named sites fail); class drift is a
/// warning surfaced in the report and render.
pub fn check_drift_with_advice(
    advice: &[SiteAdvice],
    runtime: &[SiteManifestEntry],
) -> DriftReport {
    let static_sites: Vec<StaticSite> = advice.iter().map(|a| a.site.clone()).collect();
    let mut report = check_drift(&static_sites, runtime);
    for (runtime_name, fingerprint) in report.matched.clone() {
        let Some(advised) = advice.iter().find(|a| a.site.fingerprint() == fingerprint) else {
            continue;
        };
        let Some(predicted) = advised.predicted_alloc_bytes_per_op else {
            continue;
        };
        let Some(entry) = runtime.iter().find(|e| e.name == runtime_name) else {
            continue;
        };
        if entry.alloc_bytes_per_op <= 0.0 {
            // Nothing measured: no allocator instrumentation, or the site
            // genuinely never allocated. Either way there is no evidence to
            // compare against.
            continue;
        }
        let predicted_class = classify_alloc(predicted);
        let measured_class = classify_alloc(entry.alloc_bytes_per_op);
        report.alloc_drift.push(AllocDrift {
            runtime_name,
            fingerprint,
            predicted_bytes_per_op: predicted,
            measured_bytes_per_op: entry.alloc_bytes_per_op,
            predicted_class,
            measured_class,
            agree: predicted_class == measured_class,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use cs_collections::Abstraction;

    fn entry(name: &str, abstraction: Abstraction) -> SiteManifestEntry {
        SiteManifestEntry {
            id: 1,
            name: name.to_owned(),
            abstraction,
            default_kind: "array".to_owned(),
            current_kind: "array".to_owned(),
            alloc_bytes_per_op: 0.0,
        }
    }

    fn entry_with_alloc(
        name: &str,
        abstraction: Abstraction,
        alloc_bytes_per_op: f64,
    ) -> SiteManifestEntry {
        SiteManifestEntry {
            alloc_bytes_per_op,
            ..entry(name, abstraction)
        }
    }

    fn static_sites() -> Vec<StaticSite> {
        let src = r#"
fn wire(engine: &Switch) {
    let a = engine.named_list_context::<i64>(ListKind::Array, "index-cursor");
    let b = engine.set_context::<u64>(SetKind::Chained);
}
"#;
        extract("src/wire.rs", src, ExtractOptions::default()).sites
    }

    #[test]
    fn declared_names_anchor() {
        let report = check_drift(
            &static_sites(),
            &[entry("index-cursor", Abstraction::List)],
        );
        assert!(report.passes());
        assert_eq!(report.matched.len(), 1);
        assert_eq!(report.matched[0].0, "index-cursor");
        // The anonymous static context never registered: unexercised.
        assert_eq!(report.unexercised, vec!["src/wire.rs::wire#1"]);
    }

    #[test]
    fn fingerprints_and_locations_anchor_too() {
        let sites = static_sites();
        let by_fp = check_drift(&sites, &[entry("src/wire.rs::wire#1", Abstraction::Set)]);
        assert!(by_fp.passes());
        assert_eq!(by_fp.matched.len(), 1);

        let by_loc = check_drift(&sites, &[entry("src/wire.rs:4", Abstraction::Set)]);
        assert!(by_loc.passes());
        assert_eq!(by_loc.matched.len(), 1);
    }

    #[test]
    fn auto_generated_names_warn_but_pass() {
        let report = check_drift(
            &static_sites(),
            &[
                entry("set-site-7", Abstraction::Set),
                entry("cmap-0", Abstraction::Map),
            ],
        );
        assert!(report.passes());
        assert_eq!(report.anonymous.len(), 2);
    }

    #[test]
    fn unanchored_named_sites_fail() {
        let report = check_drift(&static_sites(), &[entry("ghost-cache", Abstraction::Map)]);
        assert!(!report.passes());
        assert_eq!(report.unanchored, vec!["ghost-cache"]);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn alloc_classes_bucket_on_stable_boundaries() {
        assert_eq!(classify_alloc(0.0), AllocClass::Negligible);
        assert_eq!(classify_alloc(-1.0), AllocClass::Negligible);
        assert_eq!(classify_alloc(0.5), AllocClass::Low);
        assert_eq!(classify_alloc(8.0), AllocClass::Moderate);
        assert_eq!(classify_alloc(47.9), AllocClass::Moderate);
        assert_eq!(classify_alloc(48.0), AllocClass::High);
    }

    fn advised_sites() -> Vec<SiteAdvice> {
        use crate::advise::{advise_file_with_dataflow, AdviseOptions};
        use crate::dataflow::dataflow_file;
        use crate::extract::{extract, ExtractOptions};
        let src = r#"
fn ingest(engine: &Switch, xs: &[u64]) {
    let log = engine.named_list_context::<u64>(ListKind::Array, "hot-log");
    for x in xs {
        log.push(*x);
    }
}
"#;
        let analysis = extract("src/ingest.rs", src, ExtractOptions::default());
        let flows = dataflow_file(src, &analysis, ExtractOptions::default());
        advise_file_with_dataflow(&analysis, &flows, AdviseOptions::default())
    }

    #[test]
    fn alloc_classes_cross_check_when_both_sides_measured() {
        let advice = advised_sites();
        let predicted = advice[0]
            .predicted_alloc_bytes_per_op
            .expect("push-heavy array list predicts an alloc rate");
        // Measured in the same class as predicted: agreement.
        let same = check_drift_with_advice(
            &advice,
            &[entry_with_alloc("hot-log", Abstraction::List, predicted)],
        );
        assert!(same.passes());
        assert_eq!(same.alloc_drift.len(), 1);
        assert!(same.alloc_drift[0].agree);
        assert!(same.render().contains("alloc-ok"));

        // Measured far outside the predicted class: drift, but still a
        // warning — the anchoring pass criterion is unchanged.
        let off = check_drift_with_advice(
            &advice,
            &[entry_with_alloc("hot-log", Abstraction::List, 4096.0)],
        );
        assert!(off.passes());
        assert_eq!(off.alloc_drift.len(), 1);
        assert!(!off.alloc_drift[0].agree);
        assert_eq!(off.alloc_drift[0].measured_class, AllocClass::High);
        assert!(off.render().contains("ALLOC-DRIFT"));
    }

    #[test]
    fn unmeasured_sites_skip_the_alloc_comparison() {
        let advice = advised_sites();
        let report =
            check_drift_with_advice(&advice, &[entry("hot-log", Abstraction::List)]);
        assert!(report.passes());
        assert_eq!(report.matched.len(), 1);
        assert!(report.alloc_drift.is_empty());
    }

    #[test]
    fn auto_name_detection_is_strict() {
        assert!(is_auto_generated_name("list-site-12"));
        assert!(is_auto_generated_name("cmap-0"));
        assert!(!is_auto_generated_name("list-site-"));
        assert!(!is_auto_generated_name("list-site-x"));
        assert!(!is_auto_generated_name("session-cache"));
    }
}
