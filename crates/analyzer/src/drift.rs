//! Static ↔ runtime drift checking.
//!
//! The engine's [`site_manifest`](cs_core::Switch::site_manifest) says which
//! allocation sites *registered at runtime*; the extractor says which sites
//! *exist in source*. Drift between the two is how a CollectionSwitch
//! deployment rots silently: a context created from source the analyzer
//! cannot see (generated code, stale binaries), or instrumented sites that
//! never run (dead feature flags) and keep paying their declared footprint.
//!
//! Matching is by name, strongest evidence first: a runtime site whose name
//! equals a static site's declared `named_*` literal, its fingerprint
//! (`path::item#ordinal`), or its location (`path:line`) is **anchored**.
//! Auto-generated names (`list-site-3`, `cmap-0`, …) carry no source
//! identity and are reported as **anonymous** — a warning, not a failure,
//! because the engine mints them legitimately for anonymous contexts. A
//! *named* runtime site matching nothing static is **unanchored** and fails
//! the check: something registered under a name the source does not declare.
//!
//! The reverse direction — static context sites that never registered — is
//! the **unexercised** list, informational by default (a scan of a library
//! tree legitimately finds sites the example run never touches).

use cs_core::SiteManifestEntry;

use crate::extract::{SiteCategory, StaticSite};

/// The outcome of one drift comparison.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// `(runtime name, static fingerprint)` pairs that anchored.
    pub matched: Vec<(String, String)>,
    /// Runtime sites with engine-minted anonymous names (warning).
    pub anonymous: Vec<String>,
    /// Named runtime sites with no static counterpart (failure).
    pub unanchored: Vec<String>,
    /// Static context/runtime sites that never registered (informational).
    pub unexercised: Vec<String>,
}

impl DriftReport {
    /// The check's pass criterion: every *named* runtime site is anchored
    /// to a static site (static manifest ⊇ named runtime sites).
    pub fn passes(&self) -> bool {
        self.unanchored.is_empty()
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift: {} anchored, {} anonymous, {} unanchored, {} unexercised — {}\n",
            self.matched.len(),
            self.anonymous.len(),
            self.unanchored.len(),
            self.unexercised.len(),
            if self.passes() { "PASS" } else { "FAIL" }
        ));
        for (name, fp) in &self.matched {
            out.push_str(&format!("  anchored   {name} -> {fp}\n"));
        }
        for name in &self.anonymous {
            out.push_str(&format!("  anonymous  {name} (engine-minted name; no source identity)\n"));
        }
        for name in &self.unanchored {
            out.push_str(&format!("  UNANCHORED {name} (no static site declares this name)\n"));
        }
        for fp in &self.unexercised {
            out.push_str(&format!("  unexercised {fp} (static site never registered)\n"));
        }
        out
    }
}

/// Is `name` one of the engine/runtime auto-generated site names?
/// (`list-site-N` / `set-site-N` / `map-site-N` from the engine,
/// `clist-N` / `cset-N` / `cmap-N` from the concurrent runtime.)
pub fn is_auto_generated_name(name: &str) -> bool {
    let numeric_suffix = |prefix: &str| {
        name.strip_prefix(prefix)
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    };
    numeric_suffix("list-site-")
        || numeric_suffix("set-site-")
        || numeric_suffix("map-site-")
        || numeric_suffix("clist-")
        || numeric_suffix("cset-")
        || numeric_suffix("cmap-")
}

/// Compares the static site list against a runtime manifest.
pub fn check_drift(static_sites: &[StaticSite], runtime: &[SiteManifestEntry]) -> DriftReport {
    let mut report = DriftReport::default();
    let mut anchored_fingerprints: Vec<String> = Vec::new();

    for entry in runtime {
        let hit = static_sites.iter().find(|s| {
            s.declared_name.as_deref() == Some(entry.name.as_str())
                || s.fingerprint() == entry.name
                || s.location() == entry.name
        });
        match hit {
            Some(site) => {
                anchored_fingerprints.push(site.fingerprint());
                report.matched.push((entry.name.clone(), site.fingerprint()));
            }
            None if is_auto_generated_name(&entry.name) => {
                report.anonymous.push(entry.name.clone());
            }
            None => report.unanchored.push(entry.name.clone()),
        }
    }

    // Reverse direction: static sites that *would* register (context or
    // runtime category) but did not show up in the manifest.
    for site in static_sites {
        if matches!(site.category, SiteCategory::Context | SiteCategory::Runtime)
            && !anchored_fingerprints.contains(&site.fingerprint())
        {
            report.unexercised.push(site.fingerprint());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use cs_collections::Abstraction;

    fn entry(name: &str, abstraction: Abstraction) -> SiteManifestEntry {
        SiteManifestEntry {
            id: 1,
            name: name.to_owned(),
            abstraction,
            default_kind: "array".to_owned(),
            current_kind: "array".to_owned(),
        }
    }

    fn static_sites() -> Vec<StaticSite> {
        let src = r#"
fn wire(engine: &Switch) {
    let a = engine.named_list_context::<i64>(ListKind::Array, "index-cursor");
    let b = engine.set_context::<u64>(SetKind::Chained);
}
"#;
        extract("src/wire.rs", src, ExtractOptions::default()).sites
    }

    #[test]
    fn declared_names_anchor() {
        let report = check_drift(
            &static_sites(),
            &[entry("index-cursor", Abstraction::List)],
        );
        assert!(report.passes());
        assert_eq!(report.matched.len(), 1);
        assert_eq!(report.matched[0].0, "index-cursor");
        // The anonymous static context never registered: unexercised.
        assert_eq!(report.unexercised, vec!["src/wire.rs::wire#1"]);
    }

    #[test]
    fn fingerprints_and_locations_anchor_too() {
        let sites = static_sites();
        let by_fp = check_drift(&sites, &[entry("src/wire.rs::wire#1", Abstraction::Set)]);
        assert!(by_fp.passes());
        assert_eq!(by_fp.matched.len(), 1);

        let by_loc = check_drift(&sites, &[entry("src/wire.rs:4", Abstraction::Set)]);
        assert!(by_loc.passes());
        assert_eq!(by_loc.matched.len(), 1);
    }

    #[test]
    fn auto_generated_names_warn_but_pass() {
        let report = check_drift(
            &static_sites(),
            &[
                entry("set-site-7", Abstraction::Set),
                entry("cmap-0", Abstraction::Map),
            ],
        );
        assert!(report.passes());
        assert_eq!(report.anonymous.len(), 2);
    }

    #[test]
    fn unanchored_named_sites_fail() {
        let report = check_drift(&static_sites(), &[entry("ghost-cache", Abstraction::Map)]);
        assert!(!report.passes());
        assert_eq!(report.unanchored, vec!["ghost-cache"]);
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn auto_name_detection_is_strict() {
        assert!(is_auto_generated_name("list-site-12"));
        assert!(is_auto_generated_name("cmap-0"));
        assert!(!is_auto_generated_name("list-site-"));
        assert!(!is_auto_generated_name("list-site-x"));
        assert!(!is_auto_generated_name("session-cache"));
    }
}
