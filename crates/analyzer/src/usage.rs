//! Usage-fact → synthetic workload synthesis.
//!
//! The dynamic half of CollectionSwitch observes real operation counts; the
//! static half has only source evidence. This module reconstructs a
//! *synthetic* [`WorkloadProfile`] per allocation site from the
//! [`MethodFact`]s the extractor attributed to the site's binding: each
//! method call maps to one of the paper's four critical operations
//! (abstraction-sensitive — `insert` populates a map but is a middle
//! insertion on a list), and loop nesting amplifies its weight, since a call
//! inside a loop executes many times per instance.
//!
//! The absolute counts are fictions; only their *ratios* matter, exactly as
//! in the paper's total-cost comparison `tc_W(V1) / tc_W(V2)` — both sides
//! scale by the same synthetic weights.

use cs_collections::Abstraction;
use cs_profile::{OpCounters, OpKind, WorkloadProfile};

use crate::dataflow::SiteFacts;
use crate::extract::{MethodFact, StaticSite};

/// Amplification per loop-nest level: a call at depth *d* counts as
/// `LOOP_WEIGHT^d` executions. 64 approximates a "many iterations"
/// assumption without overflowing at realistic depths.
pub const LOOP_WEIGHT: u64 = 64;

/// Maximum loop depth honoured before the amplification saturates.
const MAX_AMPLIFIED_DEPTH: u32 = 4;

/// Default assumed maximum size when no capacity hint and no populate
/// evidence bounds it.
pub const DEFAULT_MAX_SIZE: usize = 256;

/// Maps a method name observed on a binding to a critical operation for the
/// given abstraction. `None` means the call is neutral (e.g. `len`,
/// `is_empty`, `clear`) and contributes nothing.
pub fn classify_method(abstraction: Abstraction, method: &str) -> Option<OpKind> {
    use Abstraction as A;
    use OpKind as O;
    let op = match (abstraction, method) {
        // -- population: appends on lists, inserts on keyed structures.
        (A::List, "push" | "push_back" | "append" | "extend" | "extend_from_slice") => O::Populate,
        (A::Set | A::Map, "insert" | "extend" | "append" | "add" | "put") => O::Populate,

        // -- membership / point lookup.
        (_, "contains") => O::Contains,
        (A::Map, "contains_key" | "get" | "get_mut" | "get_key_value" | "entry") => O::Contains,
        (A::Set, "get" | "take") => O::Contains,
        (A::List, "binary_search") => O::Contains,

        // -- traversal.
        (_, "iter" | "iter_mut" | "for_in" | "drain" | "retain" | "for_each") => O::Iterate,
        (A::Map, "keys" | "values" | "values_mut") => O::Iterate,
        (A::List, "sort" | "sort_unstable" | "sort_by" | "sort_unstable_by" | "dedup") => {
            O::Iterate
        }

        // -- positional / structural edits.
        (A::List, "insert" | "remove" | "swap_remove" | "push_front" | "pop_front") => O::Middle,
        (A::Set | A::Map, "remove" | "remove_entry") => O::Middle,
        (A::List, "get" | "pop" | "last" | "first") => None?,

        _ => None?,
    };
    Some(op)
}

/// The synthetic usage evidence reconstructed for one site.
#[derive(Debug, Clone, Default)]
pub struct UsageSummary {
    /// Facts attributed to the site's binding (same enclosing item).
    pub matched_facts: usize,
    /// Facts that mapped to a critical operation.
    pub classified_facts: usize,
    /// Amplified operation counts per critical operation, in
    /// [`OpKind::ALL`] order.
    pub op_weights: [u64; 4],
    /// The assumed maximum size (capacity hint > populate evidence > default).
    pub assumed_max_size: usize,
}

impl UsageSummary {
    /// The dominant critical operation by amplified weight, if any
    /// evidence exists.
    pub fn dominant_op(&self) -> Option<OpKind> {
        let (idx, &w) = self
            .op_weights
            .iter()
            .enumerate()
            .max_by_key(|&(_, &w)| w)?;
        if w == 0 {
            return None;
        }
        Some(OpKind::ALL[idx])
    }

    /// Renders the weights as a compact `populate=4096 contains=4096 …`
    /// evidence string for diagnostics.
    pub fn evidence(&self) -> String {
        let mut parts = Vec::new();
        for (i, op) in OpKind::ALL.iter().enumerate() {
            if self.op_weights[i] > 0 {
                parts.push(format!(
                    "{}={}",
                    op.to_string().to_lowercase(),
                    self.op_weights[i]
                ));
            }
        }
        if parts.is_empty() {
            "no-evidence".to_owned()
        } else {
            parts.join(" ")
        }
    }

    /// Converts the summary into the synthetic workload profile the cost
    /// models evaluate. Returns `None` when there is no classified evidence
    /// — advising from nothing would only reproduce the model's global
    /// minimum, not anything about this site.
    pub fn to_profile(&self) -> Option<WorkloadProfile> {
        if self.classified_facts == 0 {
            return None;
        }
        let mut counters = OpCounters::new();
        for (i, op) in OpKind::ALL.iter().enumerate() {
            if self.op_weights[i] > 0 {
                counters.add(*op, self.op_weights[i]);
            }
        }
        Some(WorkloadProfile::new(counters, self.assumed_max_size))
    }
}

/// Weight of one fact: `LOOP_WEIGHT^min(depth, MAX_AMPLIFIED_DEPTH)`.
fn amplified(depth: u32) -> u64 {
    LOOP_WEIGHT.saturating_pow(depth.min(MAX_AMPLIFIED_DEPTH))
}

/// Builds the usage summary for `site` from the facts of its file.
///
/// Facts attribute to the site when the receiver matches the site's binding
/// *and* the call sits in the same enclosing item — the extractor does not
/// track dataflow across functions, and pretending otherwise would
/// misattribute unrelated bindings that happen to share a name.
pub fn summarize(site: &StaticSite, facts: &[MethodFact]) -> UsageSummary {
    summarize_with_facts(site, facts, None)
}

/// [`summarize`], refined with the dataflow pass's [`SiteFacts`] when
/// available:
///
/// * facts attribute through the whole **alias set** (moves, borrows,
///   clones, `create_*` handle returns), not just the declared binding —
///   a `let list = ctx.create_list();` handle finally feeds its context
///   site's evidence;
/// * a dataflow-derived **exact capacity bound** beats populate-count
///   guesswork for the assumed size (an explicit `with_capacity` hint
///   still wins — the author asserted it).
pub fn summarize_with_facts(
    site: &StaticSite,
    facts: &[MethodFact],
    flow: Option<&SiteFacts>,
) -> UsageSummary {
    let mut summary = UsageSummary::default();
    let receivers: Vec<&str> = match flow {
        Some(f) if !f.aliases.is_empty() => f.aliases.iter().map(String::as_str).collect(),
        _ => site.binding.as_deref().into_iter().collect(),
    };
    if receivers.is_empty() {
        summary.assumed_max_size = site.capacity_hint.unwrap_or(0) as usize;
        return summary;
    }
    let abstraction = site.declared.abstraction();
    for fact in facts {
        if !receivers.iter().any(|r| *r == fact.receiver) || fact.item != site.item {
            continue;
        }
        summary.matched_facts += 1;
        if let Some(op) = classify_method(abstraction, &fact.method) {
            summary.classified_facts += 1;
            summary.op_weights[op.index()] =
                summary.op_weights[op.index()].saturating_add(amplified(fact.loop_depth));
        }
    }
    // Size: an explicit capacity is the strongest signal, then a dataflow
    // bound (known-length collect, literal loop trips); otherwise assume
    // the structure grows to its amplified populate count, capped at the
    // default so a depth-4 loop does not imply 16M elements.
    let populate = summary.op_weights[OpKind::Populate.index()];
    let flow_bound = flow.and_then(|f| f.capacity.exact()).filter(|&n| n > 0);
    summary.assumed_max_size = match (site.capacity_hint, flow_bound) {
        (Some(c), _) if c > 0 => c as usize,
        (_, Some(n)) => (n as usize).min(DEFAULT_MAX_SIZE * 16),
        _ if populate > 0 => (populate as usize).min(DEFAULT_MAX_SIZE * 16),
        _ => DEFAULT_MAX_SIZE,
    };
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};

    fn analyze(src: &str) -> (Vec<StaticSite>, Vec<MethodFact>) {
        let a = extract("t.rs", src, ExtractOptions::default());
        (a.sites, a.facts)
    }

    #[test]
    fn contains_in_loop_dominates() {
        let src = r#"
fn filter(xs: &[u64]) {
    let mut seen = Vec::with_capacity(512);
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
}
"#;
        let (sites, facts) = analyze(src);
        let s = summarize(&sites[0], &facts);
        assert_eq!(s.dominant_op(), Some(OpKind::Contains));
        assert_eq!(s.assumed_max_size, 512);
        let p = s.to_profile().expect("evidence exists");
        assert_eq!(p.count(OpKind::Contains), LOOP_WEIGHT);
        assert_eq!(p.count(OpKind::Populate), LOOP_WEIGHT);
    }

    #[test]
    fn insert_is_populate_on_maps_but_middle_on_lists() {
        assert_eq!(
            classify_method(Abstraction::Map, "insert"),
            Some(OpKind::Populate)
        );
        assert_eq!(
            classify_method(Abstraction::List, "insert"),
            Some(OpKind::Middle)
        );
    }

    #[test]
    fn neutral_methods_contribute_nothing() {
        assert_eq!(classify_method(Abstraction::List, "len"), None);
        assert_eq!(classify_method(Abstraction::Map, "is_empty"), None);
        assert_eq!(classify_method(Abstraction::List, "pop"), None);
    }

    #[test]
    fn facts_from_other_items_do_not_attribute() {
        let src = r#"
fn a() {
    let mut v = Vec::new();
    v.push(1);
}
fn b(v: &mut Vec<u64>) {
    v.contains(&1);
}
"#;
        let (sites, facts) = analyze(src);
        let s = summarize(&sites[0], &facts);
        assert_eq!(s.matched_facts, 1, "only the push in `a` attributes");
        assert_eq!(s.dominant_op(), Some(OpKind::Populate));
    }

    #[test]
    fn no_evidence_yields_no_profile() {
        let src = "fn f() { let v = Vec::new(); }";
        let (sites, facts) = analyze(src);
        let s = summarize(&sites[0], &facts);
        assert!(s.to_profile().is_none());
        assert_eq!(s.evidence(), "no-evidence");
    }

    #[test]
    fn nested_loops_amplify_multiplicatively() {
        let src = r#"
fn f(grid: &[Vec<u64>]) {
    let mut hits = Vec::new();
    for row in grid {
        for cell in row {
            if hits.contains(cell) { hits.push(*cell); }
        }
    }
}
"#;
        let (sites, facts) = analyze(src);
        let s = summarize(&sites[0], &facts);
        assert_eq!(
            s.op_weights[OpKind::Contains.index()],
            LOOP_WEIGHT * LOOP_WEIGHT
        );
    }

    #[test]
    fn aliases_route_facts_and_flow_bounds_refine_size() {
        let src = r#"
fn f(xs: &[u64]) {
    let journal = Vec::new();
    let mut log = journal;
    for _ in 0..96 {
        log.push(1u64);
    }
    log.contains(&1u64);
}
"#;
        let (sites, facts) = analyze(src);
        let a = extract("t.rs", src, ExtractOptions::default());
        let flow = crate::dataflow::dataflow_file(src, &a, ExtractOptions::default());
        let without = summarize(&sites[0], &facts);
        assert_eq!(
            without.matched_facts, 0,
            "binding-only matching misses the moved `log`"
        );
        let with = summarize_with_facts(&sites[0], &facts, Some(&flow[0]));
        assert_eq!(with.matched_facts, 2);
        assert_eq!(with.dominant_op(), Some(OpKind::Populate));
        assert_eq!(
            with.assumed_max_size, 96,
            "the literal loop trip beats the amplified populate guess"
        );
    }

    #[test]
    fn populate_evidence_bounds_assumed_size() {
        let src = r#"
fn f(xs: &[u64]) {
    let mut v = Vec::new();
    for x in xs { v.push(*x); }
    v.sort();
}
"#;
        let (sites, facts) = analyze(src);
        let s = summarize(&sites[0], &facts);
        assert_eq!(s.assumed_max_size, LOOP_WEIGHT as usize);
    }
}
