//! The Perflint-style variant advisor.
//!
//! For every modeled allocation site the advisor synthesizes a workload
//! profile from static usage evidence ([`crate::usage`]) and evaluates the
//! calibrated [`cs_model`] cost models over every concrete variant of the
//! site's abstraction — the same `tc_W(V) = instance(s) + Σ N_op·cost_op(s)`
//! the dynamic engine minimizes, evaluated on synthetic counts instead of
//! observed ones. When a different variant undercuts the declared one by at
//! least [`AdviseOptions::min_speedup`], the site gets a recommendation:
//!
//! ```text
//! site crates/app/src/filter.rs:42 — contains-dominated array list,
//! hasharray estimated 3.1x cheaper (time)
//! ```
//!
//! Adaptive variants are excluded from recommendations: a *static* advisor
//! recommending "switch at runtime" would be abdicating, not advising.

use cs_collections::{Abstraction, ListKind, MapKind, SetKind};
use cs_model::{default_models, CostDimension, EnergyWeights, PerformanceModel};
use std::fmt;
use std::hash::Hash;

use crate::dataflow::{CapacityBound, SiteFacts};
use crate::extract::{DeclaredVariant, FileAnalysis, StaticSite};
use crate::usage::{summarize_with_facts, UsageSummary};

/// Tuning knobs for the advisor.
#[derive(Debug, Clone, Copy)]
pub struct AdviseOptions {
    /// Cost dimension to minimize.
    pub dimension: CostDimension,
    /// Minimum `declared_cost / best_cost` ratio before a recommendation is
    /// emitted; below it the declared variant is considered good enough.
    pub min_speedup: f64,
    /// Energy-proxy weights used for the `declared_energy_proxy` /
    /// `recommended_energy_proxy` columns. Defaults to the synthetic
    /// weights so reports (and goldens) are machine-independent; pass
    /// [`cs_model::calibrated_weights`] for hardware-honest pricing.
    pub weights: EnergyWeights,
}

impl Default for AdviseOptions {
    fn default() -> Self {
        AdviseOptions {
            dimension: CostDimension::Time,
            min_speedup: 1.2,
            weights: cs_model::SYNTHETIC_WEIGHTS,
        }
    }
}

/// Declared-vs-recommended pricing on one cost dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimensionCost {
    /// The dimension.
    pub dimension: CostDimension,
    /// `tc_W` of the declared variant on this dimension.
    pub declared: f64,
    /// `tc_W` of the recommended variant on this dimension.
    pub recommended: f64,
    /// `declared / recommended`; `0.0` when the recommended cost is not
    /// positive (the dimension is uncalibrated for one side).
    pub ratio: f64,
}

/// A model-backed recommendation to change a site's declared variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended variant's kind name (e.g. `hasharray`).
    pub kind: String,
    /// `tc_W` of the declared variant on the synthetic profile.
    pub declared_cost: f64,
    /// `tc_W` of the recommended variant on the same profile.
    pub recommended_cost: f64,
    /// `declared_cost / recommended_cost`.
    pub speedup: f64,
    /// The dimension the costs were evaluated on.
    pub dimension: CostDimension,
    /// The same comparison re-priced on every dimension of
    /// [`CostDimension::ALL`], in that order — the per-dimension columns of
    /// the advice report.
    pub dimension_costs: Vec<DimensionCost>,
    /// Energy proxy of the declared variant:
    /// `weights.energy(time, alloc_rate)` over the synthetic profile.
    pub declared_energy_proxy: f64,
    /// Energy proxy of the recommended variant.
    pub recommended_energy_proxy: f64,
    /// The engine's `alloc_driven` semantics ported to static advice: the
    /// switch is driven by allocation pressure, not wall time — either the
    /// minimized dimension is `Alloc`/`AllocRate`, or it is `Energy` and
    /// the time comparison alone would not justify the switch.
    pub alloc_driven: bool,
}

/// The advisor's verdict for one site.
#[derive(Debug, Clone)]
pub struct SiteAdvice {
    /// The site.
    pub site: StaticSite,
    /// The synthetic usage evidence behind the verdict.
    pub summary: UsageSummary,
    /// Dataflow facts for the site, when the dataflow pass ran.
    pub facts: Option<SiteFacts>,
    /// A recommendation, when the models found a clearly cheaper variant.
    /// `None` means: keep the declared variant, or no usable evidence, or
    /// the declared variant is unmodeled.
    pub recommendation: Option<Recommendation>,
    /// Why no recommendation was made, when applicable.
    pub skip_reason: Option<&'static str>,
    /// Concurrent-tier advice when the value escapes to another thread or
    /// `'static` context — emitted even for sites whose kind-replacement
    /// recommendation is suppressed (adaptive, library-profile declared).
    pub escape_advice: Option<String>,
    /// `with_capacity` advice when a static bound is known and the author
    /// did not already declare a capacity.
    pub capacity_advice: Option<String>,
    /// Persistent/COW-tier advice for clone-heavy sites.
    pub persistence_advice: Option<String>,
    /// The statically predicted allocation class input: the declared
    /// variant's `AllocRate` cost per synthetic operation. Compared by
    /// [`crate::drift`] against the runtime-measured
    /// `alloc_bytes_per_op` of the matching manifest site.
    pub predicted_alloc_bytes_per_op: Option<f64>,
    /// The site's advice is shaped by escape facts (concurrent tier).
    pub escape_driven: bool,
}

impl SiteAdvice {
    /// One-line human diagnostic in the Perflint style; dataflow-derived
    /// advice segments (escape, capacity, persistence) are appended after
    /// the cost verdict.
    pub fn render(&self) -> String {
        let dominant = self
            .summary
            .dominant_op()
            .map(|op| format!("{op}-dominated"))
            .unwrap_or_else(|| "unprofiled".to_owned());
        let declared = self
            .site
            .declared
            .kind_name()
            .unwrap_or_else(|| "unmodeled".to_owned());
        let abstraction = self.site.declared.abstraction();
        let mut line = match &self.recommendation {
            Some(r) => {
                let rationale = if r.alloc_driven { " [alloc-driven]" } else { "" };
                format!(
                    "site {} — {} {} {}, {} estimated {:.1}x cheaper ({}){}",
                    self.site.location(),
                    dominant,
                    declared,
                    abstraction,
                    r.kind,
                    r.speedup,
                    r.dimension,
                    rationale,
                )
            }
            None => format!(
                "site {} — {} {} {}: {}",
                self.site.location(),
                dominant,
                declared,
                abstraction,
                self.skip_reason.unwrap_or("declared variant is best"),
            ),
        };
        if let Some(e) = &self.escape_advice {
            line.push_str("; ");
            line.push_str(e);
        }
        if let Some(c) = &self.capacity_advice {
            line.push_str("; ");
            line.push_str(c);
        }
        if let Some(p) = &self.persistence_advice {
            line.push_str("; ");
            line.push_str(p);
        }
        line
    }
}

/// The declared variant's `AllocRate` cost per synthetic operation — the
/// static prediction [`crate::drift`] checks against runtime measurement.
fn predicted_alloc<K>(
    model: &PerformanceModel<K>,
    declared: K,
    summary: &UsageSummary,
) -> Option<f64>
where
    K: Copy + Eq + Hash + fmt::Display,
{
    let profile = summary.to_profile()?;
    let total_ops: u64 = summary.op_weights.iter().sum();
    if total_ops == 0 {
        return None;
    }
    let cost = model.summed_cost(declared, CostDimension::AllocRate, &[profile]);
    (cost > 0.0).then(|| cost / total_ops as f64)
}

/// Evaluates every concrete (non-adaptive) variant of `model` against the
/// synthetic profile, returning a recommendation when one beats `declared`
/// by at least `min_speedup`. The third element is the declared variant's
/// predicted `alloc_bytes_per_op`, present whenever a profile exists —
/// even when no recommendation is emitted.
fn recommend<K>(
    model: &PerformanceModel<K>,
    declared: K,
    adaptive: K,
    summary: &UsageSummary,
    opts: AdviseOptions,
) -> (Option<Recommendation>, Option<&'static str>, Option<f64>)
where
    K: Copy + Eq + Hash + fmt::Display,
{
    let Some(profile) = summary.to_profile() else {
        return (None, Some("no usage evidence"), None);
    };
    let predicted = predicted_alloc(model, declared, summary);
    let profiles = [profile];
    let declared_cost = model.summed_cost(declared, opts.dimension, &profiles);
    let best = model
        .kinds()
        .filter(|&k| k != adaptive)
        .min_by(|&a, &b| {
            model
                .summed_cost(a, opts.dimension, &profiles)
                .total_cmp(&model.summed_cost(b, opts.dimension, &profiles))
        });
    let Some(best) = best else {
        return (None, Some("model has no variants"), predicted);
    };
    if best == declared {
        return (None, None, predicted);
    }
    let best_cost = model.summed_cost(best, opts.dimension, &profiles);
    if best_cost <= 0.0 || declared_cost <= 0.0 {
        return (None, Some("degenerate model costs"), predicted);
    }
    let speedup = declared_cost / best_cost;
    if speedup < opts.min_speedup {
        return (None, None, predicted);
    }

    // Re-price the declared-vs-best comparison on every dimension: the
    // per-dimension columns of the report, and the inputs to the energy
    // proxy and the alloc-driven rationale.
    let dimension_costs: Vec<DimensionCost> = CostDimension::ALL
        .iter()
        .map(|&dimension| {
            let d = model.summed_cost(declared, dimension, &profiles);
            let r = model.summed_cost(best, dimension, &profiles);
            DimensionCost {
                dimension,
                declared: d,
                recommended: r,
                ratio: if r > 0.0 { d / r } else { 0.0 },
            }
        })
        .collect();
    let at = |dim: CostDimension| &dimension_costs[dim.index()];
    let time = at(CostDimension::Time);
    let alloc_rate = at(CostDimension::AllocRate);
    let declared_energy_proxy = opts.weights.energy(time.declared, alloc_rate.declared);
    let recommended_energy_proxy = opts.weights.energy(time.recommended, alloc_rate.recommended);
    // Port of the engine's `ExplainedSelection::alloc_driven`: energy is
    // affine in time and alloc, so an Energy-driven switch whose time
    // comparison alone would not justify it is carried by allocation.
    let alloc_driven = match opts.dimension {
        CostDimension::Alloc | CostDimension::AllocRate => true,
        CostDimension::Energy => time.recommended >= time.declared,
        _ => false,
    };
    (
        Some(Recommendation {
            kind: best.to_string(),
            declared_cost,
            recommended_cost: best_cost,
            speedup,
            dimension: opts.dimension,
            dimension_costs,
            declared_energy_proxy,
            recommended_energy_proxy,
            alloc_driven,
        }),
        None,
        predicted,
    )
}

/// The escape/capacity/persistence advice strings derived from one site's
/// dataflow facts. Independent of the cost models on purpose: these fire
/// even for sites whose kind-replacement recommendation is suppressed.
fn facts_advice(
    site: &StaticSite,
    facts: &SiteFacts,
) -> (Option<String>, Option<String>, Option<String>) {
    let escape = if facts.escape.escapes_concurrently() {
        let mut sinks = Vec::new();
        if facts.escape.spawn {
            sinks.push("spawn");
        }
        if facts.escape.arc {
            sinks.push("Arc");
        }
        if facts.escape.mutex {
            sinks.push("Mutex");
        }
        if facts.escape.static_sink {
            sinks.push("static");
        }
        let tier = match site.declared.abstraction() {
            Abstraction::Map => "the concurrent tier (concurrent_map)",
            Abstraction::Set => "the concurrent tier (concurrent_set)",
            Abstraction::List => "a concurrent-tier structure (sharded runtime)",
        };
        let mut msg = format!("escapes concurrently ({}) — prefer {}", sinks.join("+"), tier);
        if facts.escape.shared_without_sync() {
            msg.push_str("; shared across threads without Arc/Mutex (race-shaped)");
        }
        Some(msg)
    } else {
        None
    };
    // Only advise a capacity the author has not already declared.
    let capacity = match (&site.capacity_hint, &facts.capacity.bound) {
        (None, Some(CapacityBound::Exact(n))) => Some(format!(
            "grows to exactly {n} — construct with_capacity({n})"
        )),
        (None, Some(CapacityBound::LenOf(src))) => Some(format!(
            "grows to {src}.len() — construct with_capacity({src}.len())"
        )),
        _ => None,
    };
    let persistence = facts.persistent_candidate().then(|| {
        let c = facts.clones;
        let where_ = if c.in_loop { " (in a loop)" } else { "" };
        format!(
            "clone-heavy: {} clone call{}{}, {} live versions — persistent/COW tier candidate",
            c.count,
            if c.count == 1 { "" } else { "s" },
            where_,
            c.max_live_versions.max(1),
        )
    });
    (escape, capacity, persistence)
}

/// Runs the advisor over one extracted file, without dataflow facts —
/// binding-only attribution, no escape/capacity/persistence advice. Prefer
/// [`advise_file_with_dataflow`] (or [`crate::advise_tree`], which runs the
/// dataflow pass for you) when the source text is at hand.
pub fn advise_file(analysis: &FileAnalysis, opts: AdviseOptions) -> Vec<SiteAdvice> {
    advise_file_with_dataflow(analysis, &[], opts)
}

/// Runs the advisor over one extracted file with the dataflow pass's
/// per-site facts (parallel to `analysis.sites`; pass `&[]` when the
/// dataflow pass did not run).
///
/// Fact-derived advice (escape → concurrent tier, capacity →
/// `with_capacity`, clone pressure → persistent tier) is attached even to
/// sites whose kind-replacement recommendation is suppressed: declared
/// adaptive kinds (the runtime engine owns their selection) and declared
/// library profiles (`SetKind::Open(…)` — a deliberate tuning choice the
/// static advisor respects).
pub fn advise_file_with_dataflow(
    analysis: &FileAnalysis,
    flows: &[SiteFacts],
    opts: AdviseOptions,
) -> Vec<SiteAdvice> {
    analysis
        .sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let flow = flows.get(i);
            let summary = summarize_with_facts(site, &analysis.facts, flow);
            let (recommendation, skip_reason, predicted) = match site.declared {
                DeclaredVariant::List(ListKind::Adaptive)
                | DeclaredVariant::Set(SetKind::Adaptive)
                | DeclaredVariant::Map(MapKind::Adaptive) => (
                    None,
                    Some("adaptive declared; the runtime engine owns selection"),
                    None,
                ),
                DeclaredVariant::Set(k @ SetKind::Open(_)) => (
                    None,
                    Some("library profile declared; kind replacement suppressed"),
                    predicted_alloc(default_models::set_model(), k, &summary),
                ),
                DeclaredVariant::Map(k @ MapKind::Open(_)) => (
                    None,
                    Some("library profile declared; kind replacement suppressed"),
                    predicted_alloc(default_models::map_model(), k, &summary),
                ),
                DeclaredVariant::List(k) => recommend(
                    default_models::list_model(),
                    k,
                    ListKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Set(k) => recommend(
                    default_models::set_model(),
                    k,
                    SetKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Map(k) => recommend(
                    default_models::map_model(),
                    k,
                    MapKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Unmodeled(_) => (None, Some("no cost model for this type"), None),
            };
            let (escape_advice, capacity_advice, persistence_advice) = match flow {
                Some(f) => facts_advice(site, f),
                None => (None, None, None),
            };
            let escape_driven = escape_advice.is_some();
            SiteAdvice {
                site: site.clone(),
                summary,
                facts: flow.cloned(),
                recommendation,
                skip_reason,
                escape_advice,
                capacity_advice,
                persistence_advice,
                predicted_alloc_bytes_per_op: predicted,
                escape_driven,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use cs_profile::OpKind;

    fn advise_src(src: &str) -> Vec<SiteAdvice> {
        let a = extract("t.rs", src, ExtractOptions::default());
        advise_file(&a, AdviseOptions::default())
    }

    #[test]
    fn contains_dominated_vec_gets_a_hash_backed_recommendation() {
        let src = r#"
fn filter(xs: &[u64]) -> usize {
    let mut seen = Vec::with_capacity(512);
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
    seen.len()
}
"#;
        let advice = advise_src(src);
        assert_eq!(advice.len(), 1);
        let rec = advice[0]
            .recommendation
            .as_ref()
            .expect("contains-dominated Vec must draw a recommendation");
        assert_eq!(rec.kind, ListKind::HashArray.to_string());
        assert!(rec.speedup > 1.2, "speedup {}", rec.speedup);
        assert_eq!(advice[0].summary.dominant_op(), Some(OpKind::Contains));
        let line = advice[0].render();
        assert!(line.contains("t.rs:3"), "{line}");
        assert!(line.contains("hasharray"), "{line}");
    }

    #[test]
    fn push_then_iterate_vec_is_left_alone() {
        let src = r#"
fn collect(xs: &[u64]) -> u64 {
    let mut v = Vec::with_capacity(64);
    for x in xs { v.push(*x); }
    let mut sum = 0;
    for x in &v { sum += *x; }
    sum
}
"#;
        let advice = advise_src(src);
        assert_eq!(advice.len(), 1);
        assert!(
            advice[0].recommendation.is_none(),
            "sequential Vec is already optimal: {:?}",
            advice[0].recommendation
        );
    }

    #[test]
    fn no_evidence_sites_are_skipped_not_recommended() {
        let advice = advise_src("fn f() { let v = Vec::new(); }");
        assert!(advice[0].recommendation.is_none());
        assert_eq!(advice[0].skip_reason, Some("no usage evidence"));
    }

    #[test]
    fn unmodeled_types_are_listed_but_not_advised() {
        let advice = advise_src("fn f() { let m = BTreeMap::new(); m.insert(1, 2); }");
        assert_eq!(advice.len(), 1);
        assert_eq!(advice[0].skip_reason, Some("no cost model for this type"));
    }

    fn advise_src_with_flow(src: &str, opts: AdviseOptions) -> Vec<SiteAdvice> {
        let a = extract("t.rs", src, ExtractOptions::default());
        let flows = crate::dataflow::dataflow_file(src, &a, ExtractOptions::default());
        advise_file_with_dataflow(&a, &flows, opts)
    }

    #[test]
    fn alloc_rate_dimension_yields_alloc_driven_with_columns() {
        let src = r#"
fn dedup(xs: &[u64]) {
    let mut seen = HashSet::new();
    for x in xs {
        seen.insert(*x);
    }
    for v in &seen { drop(v); }
}
"#;
        let opts = AdviseOptions {
            dimension: CostDimension::AllocRate,
            ..AdviseOptions::default()
        };
        let advice = advise_src_with_flow(src, opts);
        let rec = advice[0]
            .recommendation
            .as_ref()
            .expect("populate-heavy chained set loses on alloc rate");
        assert!(rec.alloc_driven, "AllocRate-dimension advice is alloc-driven");
        assert_eq!(rec.dimension_costs.len(), CostDimension::ALL.len());
        for (i, dc) in rec.dimension_costs.iter().enumerate() {
            assert_eq!(dc.dimension, CostDimension::ALL[i]);
        }
        // The proxy is exactly the synthetic weighting of the time and
        // alloc-rate columns (the recommended kind may well spend *time* to
        // save allocation — ordering between the proxies is not implied).
        let time = &rec.dimension_costs[CostDimension::Time.index()];
        let ar = &rec.dimension_costs[CostDimension::AllocRate.index()];
        let w = cs_model::SYNTHETIC_WEIGHTS;
        assert!((rec.declared_energy_proxy - w.energy(time.declared, ar.declared)).abs() < 1e-9);
        assert!(
            (rec.recommended_energy_proxy - w.energy(time.recommended, ar.recommended)).abs()
                < 1e-9
        );
        assert!(ar.ratio >= opts.min_speedup, "alloc-rate won by the margin");
        assert!(advice[0].render().contains("[alloc-driven]"));
    }

    #[test]
    fn time_dimension_recommendations_are_not_alloc_driven() {
        let src = r#"
fn filter(xs: &[u64]) {
    let mut seen = Vec::new();
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
}
"#;
        let advice = advise_src_with_flow(src, AdviseOptions::default());
        let rec = advice[0].recommendation.as_ref().expect("hasharray wins");
        assert!(!rec.alloc_driven);
        assert!(!advice[0].render().contains("[alloc-driven]"));
    }

    #[test]
    fn open_profile_sites_keep_facts_but_not_kind_advice() {
        let src = r#"
fn f(xs: &[u64]) {
    let mut s = AnySet::new(SetKind::Open(LibraryProfile::Koloboke));
    for _ in 0..128 {
        s.insert(1u64);
    }
    s.contains(&1u64);
}
"#;
        let advice = advise_src_with_flow(src, AdviseOptions::default());
        assert_eq!(advice.len(), 1);
        assert!(advice[0].recommendation.is_none());
        assert_eq!(
            advice[0].skip_reason,
            Some("library profile declared; kind replacement suppressed")
        );
        // The blind spot is fixed: facts still flow.
        assert!(
            advice[0].capacity_advice.as_deref().is_some_and(|c| c.contains("128")),
            "{:?}",
            advice[0].capacity_advice
        );
        assert!(
            advice[0].predicted_alloc_bytes_per_op.is_some(),
            "drift still gets a static alloc prediction"
        );
    }

    #[test]
    fn adaptive_sites_keep_facts_but_not_kind_advice() {
        let src = r#"
fn f() {
    let mut s = AdaptiveSet::new();
    std::thread::spawn(move || {
        s.insert(1u64);
    });
}
"#;
        let advice = advise_src_with_flow(src, AdviseOptions::default());
        assert!(advice[0].recommendation.is_none());
        assert_eq!(
            advice[0].skip_reason,
            Some("adaptive declared; the runtime engine owns selection")
        );
        assert!(advice[0].escape_driven);
        assert!(
            advice[0].escape_advice.as_deref().is_some_and(|e| e.contains("spawn")),
            "{:?}",
            advice[0].escape_advice
        );
    }

    #[test]
    fn escape_and_persistence_advice_render_into_the_line() {
        let src = r#"
fn f(n: usize) {
    let mut snapshots = HashMap::new();
    snapshots.insert(0u64, 0u64);
    for _ in 0..n {
        let version = snapshots.clone();
        drop(version);
    }
    let shared = Arc::new(Mutex::new(snapshots));
    std::thread::spawn(move || drop(shared));
}
"#;
        let advice = advise_src_with_flow(src, AdviseOptions::default());
        let a = &advice[0];
        assert!(a.escape_driven);
        let line = a.render();
        assert!(line.contains("escapes concurrently"), "{line}");
        assert!(line.contains("persistent/COW"), "{line}");
        assert!(!line.contains("race-shaped"), "Arc+Mutex is synchronized: {line}");
    }

    #[test]
    fn adaptive_is_never_recommended() {
        let src = r#"
fn f(xs: &[u64]) {
    let mut s = HashSet::new();
    for x in xs {
        s.insert(*x);
        s.contains(x);
    }
    for v in &s { drop(v); }
}
"#;
        for a in advise_src(src) {
            if let Some(r) = &a.recommendation {
                assert_ne!(r.kind, "adaptive");
            }
        }
    }
}
