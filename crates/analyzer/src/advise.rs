//! The Perflint-style variant advisor.
//!
//! For every modeled allocation site the advisor synthesizes a workload
//! profile from static usage evidence ([`crate::usage`]) and evaluates the
//! calibrated [`cs_model`] cost models over every concrete variant of the
//! site's abstraction — the same `tc_W(V) = instance(s) + Σ N_op·cost_op(s)`
//! the dynamic engine minimizes, evaluated on synthetic counts instead of
//! observed ones. When a different variant undercuts the declared one by at
//! least [`AdviseOptions::min_speedup`], the site gets a recommendation:
//!
//! ```text
//! site crates/app/src/filter.rs:42 — contains-dominated array list,
//! hasharray estimated 3.1x cheaper (time)
//! ```
//!
//! Adaptive variants are excluded from recommendations: a *static* advisor
//! recommending "switch at runtime" would be abdicating, not advising.

use cs_collections::{ListKind, MapKind, SetKind};
use cs_model::{default_models, CostDimension, PerformanceModel};
use std::fmt;
use std::hash::Hash;

use crate::extract::{DeclaredVariant, FileAnalysis, StaticSite};
use crate::usage::{summarize, UsageSummary};

/// Tuning knobs for the advisor.
#[derive(Debug, Clone, Copy)]
pub struct AdviseOptions {
    /// Cost dimension to minimize.
    pub dimension: CostDimension,
    /// Minimum `declared_cost / best_cost` ratio before a recommendation is
    /// emitted; below it the declared variant is considered good enough.
    pub min_speedup: f64,
}

impl Default for AdviseOptions {
    fn default() -> Self {
        AdviseOptions {
            dimension: CostDimension::Time,
            min_speedup: 1.2,
        }
    }
}

/// A model-backed recommendation to change a site's declared variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended variant's kind name (e.g. `hasharray`).
    pub kind: String,
    /// `tc_W` of the declared variant on the synthetic profile.
    pub declared_cost: f64,
    /// `tc_W` of the recommended variant on the same profile.
    pub recommended_cost: f64,
    /// `declared_cost / recommended_cost`.
    pub speedup: f64,
    /// The dimension the costs were evaluated on.
    pub dimension: CostDimension,
}

/// The advisor's verdict for one site.
#[derive(Debug, Clone)]
pub struct SiteAdvice {
    /// The site.
    pub site: StaticSite,
    /// The synthetic usage evidence behind the verdict.
    pub summary: UsageSummary,
    /// A recommendation, when the models found a clearly cheaper variant.
    /// `None` means: keep the declared variant, or no usable evidence, or
    /// the declared variant is unmodeled.
    pub recommendation: Option<Recommendation>,
    /// Why no recommendation was made, when applicable.
    pub skip_reason: Option<&'static str>,
}

impl SiteAdvice {
    /// One-line human diagnostic in the Perflint style.
    pub fn render(&self) -> String {
        let dominant = self
            .summary
            .dominant_op()
            .map(|op| format!("{op}-dominated"))
            .unwrap_or_else(|| "unprofiled".to_owned());
        let declared = self
            .site
            .declared
            .kind_name()
            .unwrap_or_else(|| "unmodeled".to_owned());
        let abstraction = self.site.declared.abstraction();
        match &self.recommendation {
            Some(r) => format!(
                "site {} — {} {} {}, {} estimated {:.1}x cheaper ({})",
                self.site.location(),
                dominant,
                declared,
                abstraction,
                r.kind,
                r.speedup,
                r.dimension,
            ),
            None => format!(
                "site {} — {} {} {}: {}",
                self.site.location(),
                dominant,
                declared,
                abstraction,
                self.skip_reason.unwrap_or("declared variant is best"),
            ),
        }
    }
}

/// Evaluates every concrete (non-adaptive) variant of `model` against the
/// synthetic profile, returning a recommendation when one beats `declared`
/// by at least `min_speedup`.
fn recommend<K>(
    model: &PerformanceModel<K>,
    declared: K,
    adaptive: K,
    summary: &UsageSummary,
    opts: AdviseOptions,
) -> (Option<Recommendation>, Option<&'static str>)
where
    K: Copy + Eq + Hash + fmt::Display,
{
    let Some(profile) = summary.to_profile() else {
        return (None, Some("no usage evidence"));
    };
    let profiles = [profile];
    let declared_cost = model.summed_cost(declared, opts.dimension, &profiles);
    let best = model
        .kinds()
        .filter(|&k| k != adaptive)
        .min_by(|&a, &b| {
            model
                .summed_cost(a, opts.dimension, &profiles)
                .total_cmp(&model.summed_cost(b, opts.dimension, &profiles))
        });
    let Some(best) = best else {
        return (None, Some("model has no variants"));
    };
    if best == declared {
        return (None, None);
    }
    let best_cost = model.summed_cost(best, opts.dimension, &profiles);
    if best_cost <= 0.0 || declared_cost <= 0.0 {
        return (None, Some("degenerate model costs"));
    }
    let speedup = declared_cost / best_cost;
    if speedup < opts.min_speedup {
        return (None, None);
    }
    (
        Some(Recommendation {
            kind: best.to_string(),
            declared_cost,
            recommended_cost: best_cost,
            speedup,
            dimension: opts.dimension,
        }),
        None,
    )
}

/// Runs the advisor over one extracted file.
pub fn advise_file(analysis: &FileAnalysis, opts: AdviseOptions) -> Vec<SiteAdvice> {
    analysis
        .sites
        .iter()
        .map(|site| {
            let summary = summarize(site, &analysis.facts);
            let (recommendation, skip_reason) = match site.declared {
                DeclaredVariant::List(k) => recommend(
                    default_models::list_model(),
                    k,
                    ListKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Set(k) => recommend(
                    default_models::set_model(),
                    k,
                    SetKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Map(k) => recommend(
                    default_models::map_model(),
                    k,
                    MapKind::Adaptive,
                    &summary,
                    opts,
                ),
                DeclaredVariant::Unmodeled(_) => (None, Some("no cost model for this type")),
            };
            SiteAdvice {
                site: site.clone(),
                summary,
                recommendation,
                skip_reason,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, ExtractOptions};
    use cs_profile::OpKind;

    fn advise_src(src: &str) -> Vec<SiteAdvice> {
        let a = extract("t.rs", src, ExtractOptions::default());
        advise_file(&a, AdviseOptions::default())
    }

    #[test]
    fn contains_dominated_vec_gets_a_hash_backed_recommendation() {
        let src = r#"
fn filter(xs: &[u64]) -> usize {
    let mut seen = Vec::with_capacity(512);
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
    seen.len()
}
"#;
        let advice = advise_src(src);
        assert_eq!(advice.len(), 1);
        let rec = advice[0]
            .recommendation
            .as_ref()
            .expect("contains-dominated Vec must draw a recommendation");
        assert_eq!(rec.kind, ListKind::HashArray.to_string());
        assert!(rec.speedup > 1.2, "speedup {}", rec.speedup);
        assert_eq!(advice[0].summary.dominant_op(), Some(OpKind::Contains));
        let line = advice[0].render();
        assert!(line.contains("t.rs:3"), "{line}");
        assert!(line.contains("hasharray"), "{line}");
    }

    #[test]
    fn push_then_iterate_vec_is_left_alone() {
        let src = r#"
fn collect(xs: &[u64]) -> u64 {
    let mut v = Vec::with_capacity(64);
    for x in xs { v.push(*x); }
    let mut sum = 0;
    for x in &v { sum += *x; }
    sum
}
"#;
        let advice = advise_src(src);
        assert_eq!(advice.len(), 1);
        assert!(
            advice[0].recommendation.is_none(),
            "sequential Vec is already optimal: {:?}",
            advice[0].recommendation
        );
    }

    #[test]
    fn no_evidence_sites_are_skipped_not_recommended() {
        let advice = advise_src("fn f() { let v = Vec::new(); }");
        assert!(advice[0].recommendation.is_none());
        assert_eq!(advice[0].skip_reason, Some("no usage evidence"));
    }

    #[test]
    fn unmodeled_types_are_listed_but_not_advised() {
        let advice = advise_src("fn f() { let m = BTreeMap::new(); m.insert(1, 2); }");
        assert_eq!(advice.len(), 1);
        assert_eq!(advice[0].skip_reason, Some("no cost model for this type"));
    }

    #[test]
    fn adaptive_is_never_recommended() {
        let src = r#"
fn f(xs: &[u64]) {
    let mut s = HashSet::new();
    for x in xs {
        s.insert(*x);
        s.contains(x);
    }
    for v in &s { drop(v); }
}
"#;
        for a in advise_src(src) {
            if let Some(r) = &a.recommendation {
                assert_ne!(r.kind, "adaptive");
            }
        }
    }
}
