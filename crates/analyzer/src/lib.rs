//! # cs-analyzer
//!
//! The *static* half of CollectionSwitch: a dependency-free analysis pass
//! over Rust source that mirrors, offline, what the engine does online.
//! Where the dynamic engine observes real operation counts at instrumented
//! allocation sites and switches variants under guardrails, this crate
//! recovers the same decision inputs from source text alone — the approach
//! of the paper's static competitors (Darwinian Data Structure Selection,
//! Repr Types), built on the same calibrated cost models so the two halves
//! are comparable:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (raw strings, turbofish,
//!   lifetimes vs char literals, nested block comments). No `syn`: the
//!   workspace's no-external-deps constraint is load-bearing.
//! * [`mod@extract`] — allocation-site extraction with stable fingerprints
//!   (`path::item#ordinal`) plus per-binding usage facts.
//! * [`usage`] / [`advise`] — synthetic workload reconstruction and the
//!   Perflint-style variant advisor over [`cs_model`]'s cost models.
//! * [`drift`] — cross-checks the static site list against
//!   [`cs_core::Switch::site_manifest`], catching sites that exist in only
//!   one of the two worlds.
//! * [`lint`] — workspace self-lint rules (no panics on engine hot paths,
//!   no sink dispatch under a lock, no unbounded rings) diffed against a
//!   committed baseline in CI.
//!
//! ## Quickstart
//!
//! ```
//! use cs_analyzer::{advise_file, extract, AdviseOptions, ExtractOptions};
//!
//! let src = r#"
//! fn dedup(xs: &[u64]) -> usize {
//!     let mut seen = Vec::with_capacity(512);
//!     for x in xs {
//!         if seen.contains(x) { continue; }
//!         seen.push(*x);
//!     }
//!     seen.len()
//! }
//! "#;
//! let analysis = extract("src/dedup.rs", src, ExtractOptions::default());
//! let advice = advise_file(&analysis, AdviseOptions::default());
//! let rec = advice[0].recommendation.as_ref().expect("hash-backed list wins");
//! assert_eq!(rec.kind, "hasharray");
//! println!("{}", advice[0].render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advise;
pub mod dataflow;
pub mod drift;
pub mod extract;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod usage;

pub use advise::{
    advise_file, advise_file_with_dataflow, AdviseOptions, DimensionCost, Recommendation,
    SiteAdvice,
};
pub use dataflow::{
    dataflow_file, CapacityBound, CapacityFacts, CloneFacts, EscapeFacts, SiteFacts,
};
pub use drift::{
    check_drift, check_drift_with_advice, classify_alloc, is_auto_generated_name, AllocClass,
    AllocDrift, DriftReport,
};
pub use extract::{
    extract, DeclaredVariant, ExtractOptions, FileAnalysis, MethodFact, SiteCategory, StaticSite,
};
pub use lexer::{lex, Token, TokenKind};
pub use lint::{
    diff_against_baseline, lint_file, Diagnostic, RULE_NO_ALLOC_SPAN_PATH,
    RULE_NO_DISPATCH_UNDER_LOCK, RULE_NO_RAW_PERSIST_WRITE, RULE_NO_UNBOUNDED_RING,
    RULE_NO_UNWRAP, RULE_SHARED_WITHOUT_SYNC,
};
pub use report::{
    advice_report_to_json, advice_to_json, baseline_keys, baseline_to_json, diagnostic_to_json,
    drift_to_json, facts_to_json, manifest_to_json, runtime_manifest_to_json, site_to_json,
    SCHEMA_VERSION,
};
pub use usage::{
    classify_method, summarize, summarize_with_facts, UsageSummary, DEFAULT_MAX_SIZE, LOOP_WEIGHT,
};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during a tree scan.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Recursively collects the `.rs` files under `root`, sorted by path so
/// every report is deterministic. `root` may also be a single file.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
        return Ok(files);
    }
    fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    walk(&path, files)?;
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
        Ok(())
    }
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

/// The forward-slash label stamped on every site of `path`: the fingerprint
/// prefix. The path is kept as given (run the scan from the workspace root
/// with a relative target, e.g. `crates/workloads`, for workspace-relative
/// fingerprints) — only the separators are normalized.
pub fn site_label(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans every Rust file under `root`: extraction only, no advice.
/// Returns `(label, analysis)` pairs in deterministic path order.
pub fn scan_tree(root: &Path, opts: ExtractOptions) -> io::Result<Vec<(String, FileAnalysis)>> {
    let mut out = Vec::new();
    for file in collect_rust_files(root)? {
        let src = fs::read_to_string(&file)?;
        let label = site_label(&file);
        out.push((label.clone(), extract(&label, &src, opts)));
    }
    Ok(out)
}

/// Scans, dataflow-analyzes, and advises every Rust file under `root`.
pub fn advise_tree(
    root: &Path,
    extract_opts: ExtractOptions,
    advise_opts: AdviseOptions,
) -> io::Result<Vec<SiteAdvice>> {
    let mut out = Vec::new();
    for file in collect_rust_files(root)? {
        let src = fs::read_to_string(&file)?;
        let label = site_label(&file);
        let analysis = extract(&label, &src, extract_opts);
        let flows = dataflow_file(&src, &analysis, extract_opts);
        out.extend(advise_file_with_dataflow(&analysis, &flows, advise_opts));
    }
    Ok(out)
}

/// Lints every Rust file under `root` with the workspace self-lint rules.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in collect_rust_files(root)? {
        let src = fs::read_to_string(&file)?;
        out.extend(lint_file(&site_label(&file), &src));
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_label_normalizes_separators() {
        let file = Path::new("crates/workloads").join("src").join("runner.rs");
        assert_eq!(site_label(&file), "crates/workloads/src/runner.rs");
    }
}
