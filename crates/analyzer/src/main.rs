//! The `cs-analyzer` CLI.
//!
//! ```text
//! cs-analyzer scan   <path> [--json] [--include-tests]   site manifest
//! cs-analyzer advise <path> [--json] [--min-speedup X]
//!                    [--dimension D] [--calibrated]      variant advisor
//! cs-analyzer lint   <path> [--json]                     self-lint findings
//! cs-analyzer check  <path> --baseline FILE [--update]   lint vs baseline (CI)
//! cs-analyzer drift  <path> --manifest FILE [--json]     static vs runtime
//! ```
//!
//! `--dimension` selects the cost dimension recommendations optimize
//! (`time` | `alloc` | `footprint` | `energy` | `alloc_rate`; default
//! `time`). `--calibrated` prices the energy proxy with this machine's
//! measured time/alloc weights instead of the portable synthetic ones —
//! never use it when the output is diffed against committed goldens.
//!
//! Exit codes: 0 clean, 1 findings (new lint diagnostics, failed drift),
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cs_analyzer::{
    advise_tree, baseline_keys, check_drift_with_advice, diff_against_baseline, lint_tree,
    scan_tree, AdviseOptions, ExtractOptions,
};
use cs_core::SiteManifestEntry;
use cs_model::{calibrated_weights, CostDimension};
use cs_telemetry::Json;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-analyzer <scan|advise|lint|check|drift> <path> \
         [--json] [--include-tests] [--min-speedup X] \
         [--dimension time|alloc|footprint|energy|alloc_rate] [--calibrated] \
         [--baseline FILE [--update]] [--manifest FILE]"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    target: PathBuf,
    json: bool,
    include_tests: bool,
    min_speedup: Option<f64>,
    dimension: Option<CostDimension>,
    calibrated: bool,
    baseline: Option<PathBuf>,
    manifest: Option<PathBuf>,
    update: bool,
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut it = argv.iter();
    let command = it.next()?.clone();
    let mut args = Args {
        command,
        target: PathBuf::new(),
        json: false,
        include_tests: false,
        min_speedup: None,
        dimension: None,
        calibrated: false,
        baseline: None,
        manifest: None,
        update: false,
    };
    let mut target = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--include-tests" => args.include_tests = true,
            "--update" => args.update = true,
            "--calibrated" => args.calibrated = true,
            "--min-speedup" => args.min_speedup = it.next()?.parse().ok(),
            "--dimension" => args.dimension = it.next()?.parse().ok().or_else(|| {
                eprintln!("cs-analyzer: unknown cost dimension");
                None
            }),
            "--baseline" => args.baseline = Some(PathBuf::from(it.next()?)),
            "--manifest" => args.manifest = Some(PathBuf::from(it.next()?)),
            other if !other.starts_with('-') && target.is_none() => {
                target = Some(PathBuf::from(other));
            }
            _ => return None,
        }
    }
    args.target = target?;
    Some(args)
}

fn extract_opts(args: &Args) -> ExtractOptions {
    ExtractOptions {
        skip_cfg_test: !args.include_tests,
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    match args.command.as_str() {
        "scan" => cmd_scan(args),
        "advise" => cmd_advise(args),
        "lint" => cmd_lint(args),
        "check" => cmd_check(args),
        "drift" => cmd_drift(args),
        _ => Ok(usage()),
    }
}

fn cmd_scan(args: &Args) -> Result<ExitCode, String> {
    let scanned = scan_tree(&args.target, extract_opts(args)).map_err(|e| e.to_string())?;
    let sites: Vec<_> = scanned
        .into_iter()
        .flat_map(|(_, analysis)| analysis.sites)
        .collect();
    if args.json {
        let root = args.target.display().to_string();
        print!("{}", cs_analyzer::manifest_to_json(&root, &sites).render_pretty());
    } else {
        for site in &sites {
            println!(
                "{}  {}  [{} {}]  {}",
                site.fingerprint(),
                site.location(),
                site.category,
                site.declared.abstraction(),
                site.constructor,
            );
        }
        println!("{} sites", sites.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn advise_opts(args: &Args) -> AdviseOptions {
    let mut opts = AdviseOptions::default();
    if let Some(s) = args.min_speedup {
        opts.min_speedup = s;
    }
    if let Some(d) = args.dimension {
        opts.dimension = d;
    }
    if args.calibrated {
        opts.weights = calibrated_weights();
    }
    opts
}

fn cmd_advise(args: &Args) -> Result<ExitCode, String> {
    let opts = advise_opts(args);
    let advice =
        advise_tree(&args.target, extract_opts(args), opts).map_err(|e| e.to_string())?;
    if args.json {
        let root = args.target.display().to_string();
        print!(
            "{}",
            cs_analyzer::advice_report_to_json(&root, &advice).render_pretty()
        );
    } else {
        for a in &advice {
            println!("{}", a.render());
        }
        let advised = advice.iter().filter(|a| a.recommendation.is_some()).count();
        println!("{} sites, {} recommendations", advice.len(), advised);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_lint(args: &Args) -> Result<ExitCode, String> {
    let diagnostics = lint_tree(&args.target).map_err(|e| e.to_string())?;
    if args.json {
        let doc = Json::Array(
            diagnostics
                .iter()
                .map(cs_analyzer::diagnostic_to_json)
                .collect(),
        );
        print!("{}", doc.render_pretty());
    } else {
        for d in &diagnostics {
            println!("{}", d.render());
        }
        println!("{} findings", diagnostics.len());
    }
    Ok(if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    let baseline_path = args
        .baseline
        .as_ref()
        .ok_or("check requires --baseline FILE")?;
    let diagnostics = lint_tree(&args.target).map_err(|e| e.to_string())?;
    if args.update {
        let doc = cs_analyzer::baseline_to_json(&diagnostics);
        std::fs::write(baseline_path, doc.render_pretty()).map_err(|e| e.to_string())?;
        println!(
            "baseline updated: {} keys -> {}",
            diagnostics.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    let baseline = baseline_keys(&doc);
    let (fresh, fixed) = diff_against_baseline(&diagnostics, &baseline);
    for d in &fresh {
        println!("NEW {}", d.render());
    }
    for key in &fixed {
        println!("fixed (prune from baseline): {key}");
    }
    println!(
        "{} findings, {} baselined, {} new, {} fixed",
        diagnostics.len(),
        baseline.len(),
        fresh.len(),
        fixed.len()
    );
    Ok(if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parses a runtime manifest document: either the engine-side JSON
/// (`{"sites":[{"id":..,"name":..,"abstraction":..,"default_kind":..,
/// "current_kind":..},..]}`) or a bare array of such rows.
fn parse_runtime_manifest(doc: &Json) -> Result<Vec<SiteManifestEntry>, String> {
    let rows = doc
        .get("sites")
        .and_then(Json::as_array)
        .or_else(|| doc.as_array())
        .ok_or("manifest document has no `sites` array")?;
    rows.iter()
        .map(|row| {
            let field = |k: &str| {
                row.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("manifest row missing string field `{k}`"))
            };
            let abstraction = match field("abstraction")?.as_str() {
                "list" => cs_collections::Abstraction::List,
                "set" => cs_collections::Abstraction::Set,
                "map" => cs_collections::Abstraction::Map,
                other => return Err(format!("unknown abstraction `{other}`")),
            };
            Ok(SiteManifestEntry {
                id: row.get("id").and_then(Json::as_u64).unwrap_or(0),
                name: field("name")?,
                abstraction,
                default_kind: field("default_kind")?,
                current_kind: field("current_kind")?,
                // Absent in pre-v2 manifests: treat as unmeasured.
                alloc_bytes_per_op: row
                    .get("alloc_bytes_per_op")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            })
        })
        .collect()
}

fn cmd_drift(args: &Args) -> Result<ExitCode, String> {
    let manifest_path = args
        .manifest
        .as_ref()
        .ok_or("drift requires --manifest FILE")?;
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let runtime = parse_runtime_manifest(&doc)?;

    // Advise (rather than just scan) so anchored sites carry a predicted
    // alloc class and the report can cross-check it against measurement.
    let advice = advise_tree(&args.target, extract_opts(args), advise_opts(args))
        .map_err(|e| e.to_string())?;
    let report = check_drift_with_advice(&advice, &runtime);
    if args.json {
        print!("{}", cs_analyzer::drift_to_json(&report).render_pretty());
    } else {
        print!("{}", report.render());
    }
    Ok(if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(args) = parse_args(&argv) else {
        return usage();
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cs-analyzer: {message}");
            ExitCode::from(2)
        }
    }
}
