//! Machine-readable reports: every analyzer output rendered through the
//! workspace's single JSON module ([`cs_telemetry::Json`]) so the advisor
//! schema sits next to the telemetry snapshot schema (see EXPERIMENTS.md)
//! and CI can diff documents instead of scraping text.

use cs_telemetry::Json;

use crate::advise::SiteAdvice;
use crate::dataflow::{CapacityBound, SiteFacts};
use crate::drift::DriftReport;
use crate::extract::StaticSite;
use crate::lint::Diagnostic;

/// Schema version stamped on every document this module emits.
///
/// v2: dataflow facts (`facts`), per-dimension recommendation columns
/// (`dimensions`), energy proxies, `alloc_driven`/`escape_driven`
/// rationale, advice strings, `predicted_alloc_bytes_per_op`, runtime
/// manifests carry `alloc_bytes_per_op`, drift reports carry
/// `alloc_drift`.
pub const SCHEMA_VERSION: u64 = 2;

/// One site as JSON (shared by the manifest and advice documents).
pub fn site_to_json(site: &StaticSite) -> Json {
    Json::object()
        .field("fingerprint", site.fingerprint())
        .field("path", site.path.as_str())
        .field("line", site.line)
        .field("col", site.col)
        .field("item", site.item.as_str())
        .field("ordinal", site.ordinal)
        .field("constructor", site.constructor.as_str())
        .field("abstraction", site.declared.abstraction().to_string())
        .field("declared_kind", site.declared.kind_name())
        .field("category", site.category.to_string())
        .field("binding", site.binding.clone())
        .field("capacity_hint", site.capacity_hint)
        .field("declared_name", site.declared_name.clone())
        .field("in_test", site.in_test)
}

/// The static site manifest: `{schema, root, sites: [...]}`.
pub fn manifest_to_json(root: &str, sites: &[StaticSite]) -> Json {
    Json::object()
        .field("schema", SCHEMA_VERSION)
        .field("kind", "site-manifest")
        .field("root", root)
        .field("sites", Json::Array(sites.iter().map(site_to_json).collect()))
}

/// Dataflow facts for one site as JSON (shared by the advice document and
/// the dataflow goldens).
pub fn facts_to_json(facts: &SiteFacts) -> Json {
    let capacity_bound = match &facts.capacity.bound {
        Some(CapacityBound::Exact(n)) => Json::object().field("exact", *n),
        Some(CapacityBound::LenOf(src)) => Json::object().field("len_of", src.as_str()),
        None => Json::Null,
    };
    Json::object()
        .field(
            "escape",
            Json::object()
                .field("spawn", facts.escape.spawn)
                .field("arc", facts.escape.arc)
                .field("mutex", facts.escape.mutex)
                .field("static_sink", facts.escape.static_sink)
                .field("returned", facts.escape.returned)
                .field("used_after_spawn", facts.escape.used_after_spawn)
                .field("concurrent", facts.escape.escapes_concurrently())
                .field("shared_without_sync", facts.escape.shared_without_sync()),
        )
        .field(
            "capacity",
            Json::object()
                .field("bound", capacity_bound)
                .field("bounded_pushes", facts.capacity.bounded_pushes),
        )
        .field(
            "clones",
            Json::object()
                .field("count", u64::from(facts.clones.count))
                .field("in_loop", facts.clones.in_loop)
                .field("max_live_versions", u64::from(facts.clones.max_live_versions))
                .field("persistent_candidate", facts.persistent_candidate()),
        )
        .field("aliases", facts.aliases.clone())
}

/// One advisor verdict as JSON.
pub fn advice_to_json(advice: &SiteAdvice) -> Json {
    let mut doc = site_to_json(&advice.site)
        .field("evidence", advice.summary.evidence())
        .field(
            "dominant_op",
            advice.summary.dominant_op().map(|o| o.to_string()),
        )
        .field("assumed_max_size", advice.summary.assumed_max_size)
        .field("diagnostic", advice.render());
    match &advice.recommendation {
        Some(r) => {
            doc = doc.field(
                "recommendation",
                Json::object()
                    .field("kind", r.kind.as_str())
                    .field("dimension", r.dimension.to_string())
                    .field("declared_cost", r.declared_cost)
                    .field("recommended_cost", r.recommended_cost)
                    .field("speedup", r.speedup)
                    .field("alloc_driven", r.alloc_driven)
                    .field("declared_energy_proxy", r.declared_energy_proxy)
                    .field("recommended_energy_proxy", r.recommended_energy_proxy)
                    .field(
                        "dimensions",
                        Json::Array(
                            r.dimension_costs
                                .iter()
                                .map(|dc| {
                                    Json::object()
                                        .field("dimension", dc.dimension.to_string())
                                        .field("declared", dc.declared)
                                        .field("recommended", dc.recommended)
                                        .field("ratio", dc.ratio)
                                })
                                .collect(),
                        ),
                    ),
            );
        }
        None => {
            doc = doc
                .field("recommendation", Json::Null)
                .field("skip_reason", advice.skip_reason);
        }
    }
    doc.field(
        "facts",
        advice.facts.as_ref().map(facts_to_json).unwrap_or(Json::Null),
    )
    .field("escape_driven", advice.escape_driven)
    .field("escape_advice", advice.escape_advice.clone())
    .field("capacity_advice", advice.capacity_advice.clone())
    .field("persistence_advice", advice.persistence_advice.clone())
    .field(
        "predicted_alloc_bytes_per_op",
        advice.predicted_alloc_bytes_per_op,
    )
}

/// The advisor report: `{schema, root, advised, sites: [...]}`.
pub fn advice_report_to_json(root: &str, advice: &[SiteAdvice]) -> Json {
    let advised = advice.iter().filter(|a| a.recommendation.is_some()).count();
    Json::object()
        .field("schema", SCHEMA_VERSION)
        .field("kind", "advice-report")
        .field("root", root)
        .field("total_sites", advice.len())
        .field("advised", advised)
        .field(
            "sites",
            Json::Array(advice.iter().map(advice_to_json).collect()),
        )
}

/// One lint finding as JSON.
pub fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::object()
        .field("rule", d.rule.as_str())
        .field("path", d.path.as_str())
        .field("line", d.line)
        .field("item", d.item.as_str())
        .field("message", d.message.as_str())
        .field("key", d.key())
}

/// A lint baseline document: `{schema, keys: [...]}`, the committed file CI
/// diffs against. Keys are sorted so regeneration is deterministic.
pub fn baseline_to_json(diagnostics: &[Diagnostic]) -> Json {
    let mut keys: Vec<String> = diagnostics.iter().map(Diagnostic::key).collect();
    keys.sort();
    keys.dedup();
    Json::object()
        .field("schema", SCHEMA_VERSION)
        .field("kind", "lint-baseline")
        .field("keys", keys)
}

/// Reads the `keys` list back out of a parsed baseline document.
pub fn baseline_keys(doc: &Json) -> Vec<String> {
    doc.get("keys")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|k| k.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default()
}

/// A *runtime* manifest document (`{schema, kind, sites: [...]}`) from
/// [`cs_core::Switch::site_manifest`] /
/// `cs_runtime::Runtime::site_manifest` rows — the file format
/// `cs-analyzer drift --manifest` reads back.
pub fn runtime_manifest_to_json(entries: &[cs_core::SiteManifestEntry]) -> Json {
    Json::object()
        .field("schema", SCHEMA_VERSION)
        .field("kind", "runtime-manifest")
        .field(
            "sites",
            Json::Array(
                entries
                    .iter()
                    .map(|e| {
                        Json::object()
                            .field("id", e.id)
                            .field("name", e.name.as_str())
                            .field("abstraction", e.abstraction.to_string())
                            .field("default_kind", e.default_kind.as_str())
                            .field("current_kind", e.current_kind.as_str())
                            .field("alloc_bytes_per_op", e.alloc_bytes_per_op)
                    })
                    .collect(),
            ),
        )
}

/// A drift report as JSON.
pub fn drift_to_json(report: &DriftReport) -> Json {
    Json::object()
        .field("schema", SCHEMA_VERSION)
        .field("kind", "drift-report")
        .field("pass", report.passes())
        .field(
            "matched",
            Json::Array(
                report
                    .matched
                    .iter()
                    .map(|(name, fp)| {
                        Json::object()
                            .field("runtime_name", name.as_str())
                            .field("fingerprint", fp.as_str())
                    })
                    .collect(),
            ),
        )
        .field("anonymous", report.anonymous.clone())
        .field("unanchored", report.unanchored.clone())
        .field("unexercised", report.unexercised.clone())
        .field(
            "alloc_drift",
            Json::Array(
                report
                    .alloc_drift
                    .iter()
                    .map(|d| {
                        Json::object()
                            .field("runtime_name", d.runtime_name.as_str())
                            .field("fingerprint", d.fingerprint.as_str())
                            .field("predicted_bytes_per_op", d.predicted_bytes_per_op)
                            .field("measured_bytes_per_op", d.measured_bytes_per_op)
                            .field("predicted_class", d.predicted_class.to_string())
                            .field("measured_class", d.measured_class.to_string())
                            .field("agree", d.agree)
                    })
                    .collect(),
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advise::{advise_file, AdviseOptions};
    use crate::extract::{extract, ExtractOptions};

    const SRC: &str = r#"
fn filter(xs: &[u64]) -> usize {
    let mut seen = Vec::with_capacity(512);
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
    seen.len()
}
"#;

    #[test]
    fn advice_report_is_valid_json_with_recommendation() {
        let analysis = extract("src/f.rs", SRC, ExtractOptions::default());
        let advice = advise_file(&analysis, AdviseOptions::default());
        let doc = advice_report_to_json("src", &advice);
        let parsed = Json::parse(&doc.render_pretty()).expect("parseable");
        assert_eq!(parsed.get("advised").and_then(Json::as_u64), Some(1));
        let sites = parsed.get("sites").and_then(Json::as_array).unwrap();
        assert_eq!(
            sites[0].get("fingerprint").and_then(Json::as_str),
            Some("src/f.rs::filter#0")
        );
        assert!(sites[0].get("recommendation").unwrap().get("kind").is_some());
    }

    #[test]
    fn baseline_round_trips_keys() {
        let d = crate::lint::lint_file(
            "crates/core/src/select.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        let doc = baseline_to_json(&d);
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        let keys = baseline_keys(&parsed);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0], d[0].key());
    }

    #[test]
    fn manifest_document_shape() {
        let analysis = extract("src/f.rs", SRC, ExtractOptions::default());
        let doc = manifest_to_json("src", &analysis.sites);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("site-manifest"));
    }
}
