//! Allocation-site extraction and usage-fact collection.
//!
//! One pass over the [lexed](crate::lexer) token stream yields:
//!
//! * [`StaticSite`] — every collection allocation site: `std` constructors
//!   (`Vec::new`, `HashMap::with_capacity`, …), `cs_collections` constructors
//!   (`AnyList::new(ListKind::Array)`, adaptive wrappers), and CollectionSwitch
//!   context/runtime registrations (`engine.named_set_context(…)`,
//!   `runtime.concurrent_map(…)`). Each carries a *stable fingerprint* —
//!   `path::enclosing_item#ordinal` — that survives line-number churn, plus
//!   the exact `line:col` for diagnostics.
//! * [`MethodFact`] — every `binding.method(…)` call and `for … in binding`
//!   loop, with its loop-nest depth, so the [advisor](crate::advise) can
//!   reconstruct a synthetic workload per site.
//!
//! The pass tracks enclosing items (`fn`/`mod`/`impl`/`trait` nesting) with a
//! brace-depth stack and skips `#[cfg(test)]` items when asked — the
//! self-lint must never flag a `.unwrap()` inside a test module.

use std::fmt;

use cs_collections::{Abstraction, ListKind, MapKind, SetKind};

use crate::lexer::{lex, Token, TokenKind};

/// What a site constructs, mapped into the model's kind space when possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeclaredVariant {
    /// A list variant with a cost model.
    List(ListKind),
    /// A set variant with a cost model.
    Set(SetKind),
    /// A map variant with a cost model.
    Map(MapKind),
    /// A collection the models do not cover (`BTreeMap`, `VecDeque`, …):
    /// listed in the manifest, skipped by the advisor.
    Unmodeled(Abstraction),
}

impl DeclaredVariant {
    /// The abstraction this site belongs to.
    pub fn abstraction(self) -> Abstraction {
        match self {
            DeclaredVariant::List(_) => Abstraction::List,
            DeclaredVariant::Set(_) => Abstraction::Set,
            DeclaredVariant::Map(_) => Abstraction::Map,
            DeclaredVariant::Unmodeled(a) => a,
        }
    }

    /// The declared variant's model name, or `None` when unmodeled.
    pub fn kind_name(self) -> Option<String> {
        match self {
            DeclaredVariant::List(k) => Some(k.to_string()),
            DeclaredVariant::Set(k) => Some(k.to_string()),
            DeclaredVariant::Map(k) => Some(k.to_string()),
            DeclaredVariant::Unmodeled(_) => None,
        }
    }
}

/// How the site allocates: which API family the constructor belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteCategory {
    /// A plain `std::collections` (or `Vec`) constructor.
    Std,
    /// A `cs_collections` variant constructor (`AnyList::new`, wrappers).
    CsCollections,
    /// An engine allocation context (`list_context`, `named_map_context`).
    Context,
    /// A concurrent runtime site (`concurrent_map`, `named_concurrent_set`).
    Runtime,
}

impl fmt::Display for SiteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteCategory::Std => "std",
            SiteCategory::CsCollections => "cs-collections",
            SiteCategory::Context => "context",
            SiteCategory::Runtime => "runtime",
        };
        f.write_str(s)
    }
}

/// One collection allocation site found in source.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSite {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line of the constructor token.
    pub line: u32,
    /// 1-based column of the constructor token.
    pub col: u32,
    /// Enclosing item path (`mod::fn`), or `top` at file scope.
    pub item: String,
    /// 0-based index among the sites of the same enclosing item.
    pub ordinal: u32,
    /// Constructor spelling, e.g. `Vec::with_capacity` or `named_set_context`.
    pub constructor: String,
    /// What the site constructs.
    pub declared: DeclaredVariant,
    /// API family of the constructor.
    pub category: SiteCategory,
    /// The `let` binding the site initializes, when directly bound.
    pub binding: Option<String>,
    /// Capacity from a literal `with_capacity(n)` argument.
    pub capacity_hint: Option<u64>,
    /// Explicit site name from a literal `named_*` argument.
    pub declared_name: Option<String>,
    /// `true` when the site sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

impl StaticSite {
    /// The stable fingerprint: `path::item#ordinal`. Resilient to line
    /// drift (formatting, unrelated edits) while still unique per item.
    pub fn fingerprint(&self) -> String {
        format!("{}::{}#{}", self.path, self.item, self.ordinal)
    }

    /// `file:line` form for human-facing diagnostics.
    pub fn location(&self) -> String {
        format!("{}:{}", self.path, self.line)
    }
}

/// One observed `receiver.method(…)` call or `for … in receiver` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodFact {
    /// The receiver binding name.
    pub receiver: String,
    /// Method name; the pseudo-method `for_in` records loop iteration.
    pub method: String,
    /// Enclosing item path at the call, matching [`StaticSite::item`].
    pub item: String,
    /// `for`/`while`/`loop` nesting depth at the call.
    pub loop_depth: u32,
    /// 1-based source line.
    pub line: u32,
}

/// Extraction output for one source file.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Allocation sites, in source order.
    pub sites: Vec<StaticSite>,
    /// Usage facts, in source order.
    pub facts: Vec<MethodFact>,
}

/// Options for [`extract`].
#[derive(Debug, Clone, Copy)]
pub struct ExtractOptions {
    /// Skip items (and whole modules) guarded by `#[cfg(test)]`.
    pub skip_cfg_test: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            skip_cfg_test: true,
        }
    }
}

/// `std` / `cs_collections` type names the extractor recognizes, mapped to
/// what their default construction yields.
fn type_table(name: &str) -> Option<(DeclaredVariant, SiteCategory)> {
    use DeclaredVariant as V;
    use SiteCategory as C;
    Some(match name {
        "Vec" => (V::List(ListKind::Array), C::Std),
        "LinkedList" => (V::List(ListKind::Linked), C::Std),
        "VecDeque" => (V::Unmodeled(Abstraction::List), C::Std),
        "HashMap" => (V::Map(MapKind::Chained), C::Std),
        "BTreeMap" => (V::Unmodeled(Abstraction::Map), C::Std),
        "HashSet" => (V::Set(SetKind::Chained), C::Std),
        "BTreeSet" => (V::Unmodeled(Abstraction::Set), C::Std),
        "AnyList" => (V::List(ListKind::Array), C::CsCollections),
        "AnySet" => (V::Set(SetKind::Chained), C::CsCollections),
        "AnyMap" => (V::Map(MapKind::Chained), C::CsCollections),
        "ArrayList" => (V::List(ListKind::Array), C::CsCollections),
        "HashArrayList" => (V::List(ListKind::HashArray), C::CsCollections),
        "AdaptiveList" => (V::List(ListKind::Adaptive), C::CsCollections),
        "AdaptiveSet" => (V::Set(SetKind::Adaptive), C::CsCollections),
        "AdaptiveMap" => (V::Map(MapKind::Adaptive), C::CsCollections),
        _ => return None,
    })
}

/// Constructor method names accepted on a recognized type.
fn is_constructor_method(name: &str) -> bool {
    matches!(name, "new" | "with_capacity" | "default")
}

/// Engine/runtime site-creation methods, with abstraction and whether the
/// first argument is the default kind.
fn context_method(name: &str) -> Option<(Abstraction, SiteCategory, bool)> {
    use Abstraction as A;
    use SiteCategory as C;
    Some(match name {
        "list_context" => (A::List, C::Context, false),
        "named_list_context" => (A::List, C::Context, true),
        "set_context" => (A::Set, C::Context, false),
        "named_set_context" => (A::Set, C::Context, true),
        "map_context" => (A::Map, C::Context, false),
        "named_map_context" => (A::Map, C::Context, true),
        "concurrent_set" => (A::Set, C::Runtime, false),
        "named_concurrent_set" => (A::Set, C::Runtime, true),
        "concurrent_map" => (A::Map, C::Runtime, false),
        "named_concurrent_map" => (A::Map, C::Runtime, true),
        _ => return None,
    })
}

/// Paper defaults declared at context creation when the kind argument cannot
/// be parsed (`ListKind::Array`-style first arguments usually can).
fn context_default(abstraction: Abstraction) -> DeclaredVariant {
    match abstraction {
        Abstraction::List => DeclaredVariant::List(ListKind::Array),
        Abstraction::Set => DeclaredVariant::Set(SetKind::Chained),
        Abstraction::Map => DeclaredVariant::Map(MapKind::Chained),
    }
}

struct ItemFrame {
    name: String,
    depth: u32,
    in_test: bool,
    /// Running site ordinal within this item.
    ordinal: u32,
}

struct Scanner<'a> {
    toks: &'a [Token],
    pos: usize,
    path: String,
    opts: ExtractOptions,
    depth: u32,
    items: Vec<ItemFrame>,
    loops: Vec<u32>,
    /// `let` binding awaiting its initializer (cleared at `;` / `=` use).
    pending_let: Option<String>,
    /// Recognized collection type from the binding's `: Type` ascription,
    /// so `let xs: Vec<u64> = … .collect();` anchors a site at the
    /// `collect` even without a turbofish. Cleared at `;` and whenever a
    /// site is pushed (the ascription describes that site's value — a
    /// second `collect` in the same statement must not double-count).
    pending_let_ty: Option<(DeclaredVariant, SiteCategory)>,
    /// `#[cfg(test)]` seen; applies to the next item at this depth.
    pending_test_attr: bool,
    /// Item keyword seen; its name, waiting for the opening `{`.
    pending_item: Option<(String, bool)>,
    /// A `for`/`while`/`loop` keyword seen; next `{` opens a loop body.
    pending_loop: bool,
    out: FileAnalysis,
    file_ordinal: u32,
}

impl<'a> Scanner<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn in_test(&self) -> bool {
        self.items.last().is_some_and(|f| f.in_test)
    }

    fn item_path(&self) -> String {
        if self.items.is_empty() {
            "top".to_owned()
        } else {
            self.items
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
                .join("::")
        }
    }

    fn next_ordinal(&mut self) -> u32 {
        match self.items.last_mut() {
            Some(f) => {
                let n = f.ordinal;
                f.ordinal += 1;
                n
            }
            None => {
                let n = self.file_ordinal;
                self.file_ordinal += 1;
                n
            }
        }
    }

    /// `::` at `i`? (two consecutive `:` puncts)
    fn is_path_sep(&self, i: usize) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(':'))
            && self.tok(i + 1).is_some_and(|t| t.is_punct(':'))
    }

    /// Skips a balanced `<…>` generic-argument list starting at `i` (which
    /// must point at `<`); returns the index just past the closing `>`.
    /// Char literals and lifetimes are single tokens, so `<` / `>` counting
    /// is exact here.
    fn skip_generics(&self, mut i: usize) -> usize {
        let mut depth = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            } else if t.is_punct('(') || t.is_punct('{') || t.is_punct(';') {
                break; // malformed; bail out
            }
            i += 1;
        }
        i
    }

    /// Matches `Type [::<…>] :: method (` with `Type` at `self.pos`.
    /// Returns `(method index, paren index)`.
    fn match_qualified_call(&self) -> Option<(usize, usize)> {
        let mut i = self.pos + 1;
        if !self.is_path_sep(i) {
            return None;
        }
        i += 2;
        if self.tok(i).is_some_and(|t| t.is_punct('<')) {
            i = self.skip_generics(i);
            if !self.is_path_sep(i) {
                return None;
            }
            i += 2;
        }
        let method = self.tok(i)?;
        if method.kind != TokenKind::Ident {
            return None;
        }
        let paren = i + 1;
        if !self.tok(paren).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        Some((i, paren))
    }

    /// Parses `SomeKind::Variant` (optionally `open-`-style composites are
    /// not spelled in source) starting at `i`, returning the declared
    /// variant when the argument is a recognized kind path.
    fn parse_kind_arg(&self, i: usize) -> Option<DeclaredVariant> {
        let first = self.tok(i)?;
        if first.kind != TokenKind::Ident || !self.is_path_sep(i + 1) {
            return None;
        }
        let variant = self.tok(i + 3)?;
        if variant.kind != TokenKind::Ident {
            return None;
        }
        let name = variant.text.to_lowercase();
        match first.text.as_str() {
            "ListKind" => name.parse::<ListKind>().ok().map(DeclaredVariant::List),
            "SetKind" => {
                // `SetKind::Open(LibraryProfile::Koloboke)` spells two path
                // segments; map the composite by probing the inner profile.
                if name == "open" {
                    let profile = self
                        .tok(i + 5)
                        .filter(|t| t.is_ident("LibraryProfile"))
                        .and_then(|_| self.tok(i + 8))
                        .map(|t| t.text.to_lowercase());
                    let spelled = profile
                        .map(|p| format!("open-{p}"))
                        .unwrap_or_else(|| "open-koloboke".to_owned());
                    return spelled.parse::<SetKind>().ok().map(DeclaredVariant::Set);
                }
                name.parse::<SetKind>().ok().map(DeclaredVariant::Set)
            }
            "MapKind" => {
                if name == "open" {
                    let profile = self
                        .tok(i + 5)
                        .filter(|t| t.is_ident("LibraryProfile"))
                        .and_then(|_| self.tok(i + 8))
                        .map(|t| t.text.to_lowercase());
                    let spelled = profile
                        .map(|p| format!("open-{p}"))
                        .unwrap_or_else(|| "open-koloboke".to_owned());
                    return spelled.parse::<MapKind>().ok().map(DeclaredVariant::Map);
                }
                name.parse::<MapKind>().ok().map(DeclaredVariant::Map)
            }
            _ => None,
        }
    }

    /// Finds the first string literal among the call arguments starting at
    /// the token after `(` at `paren`, scanning to the matching `)`. Used
    /// for `named_*(…, "site-name")` capture.
    fn literal_str_arg(&self, paren: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut i = paren;
        while let Some(t) = self.tok(i) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            } else if t.kind == TokenKind::Str && depth == 1 {
                return Some(t.text.clone());
            }
            i += 1;
        }
        None
    }

    /// A literal integer first argument (capacity hint), if present.
    fn literal_int_arg(&self, paren: usize) -> Option<u64> {
        let arg = self.tok(paren + 1)?;
        if self.tok(paren + 2).is_some_and(|t| t.is_punct(')') || t.is_punct(',')) {
            arg.int_value()
        } else {
            None
        }
    }

    fn push_site(
        &mut self,
        tok: &Token,
        constructor: String,
        declared: DeclaredVariant,
        category: SiteCategory,
        capacity_hint: Option<u64>,
        declared_name: Option<String>,
    ) {
        let ordinal = self.next_ordinal();
        let site = StaticSite {
            path: self.path.clone(),
            line: tok.line,
            col: tok.col,
            item: self.item_path(),
            ordinal,
            constructor,
            declared,
            category,
            binding: self.pending_let.clone(),
            capacity_hint,
            declared_name,
            in_test: self.in_test(),
        };
        self.out.sites.push(site);
        self.pending_let_ty = None;
    }

    fn scan(&mut self) {
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            match t.kind {
                TokenKind::Punct => self.scan_punct(),
                TokenKind::Ident => self.scan_ident(),
                _ => self.pos += 1,
            }
        }
    }

    fn scan_punct(&mut self) {
        let t = &self.toks[self.pos];
        match t.text.as_bytes()[0] {
            b'{' => {
                if let Some((name, test)) = self.pending_item.take() {
                    if test && self.opts.skip_cfg_test {
                        // Skip the whole item body.
                        self.skip_balanced_braces();
                        return;
                    }
                    self.items.push(ItemFrame {
                        name,
                        depth: self.depth,
                        in_test: test || self.in_test(),
                        ordinal: 0,
                    });
                } else if self.pending_loop {
                    self.loops.push(self.depth);
                }
                self.pending_loop = false;
                self.depth += 1;
            }
            b'}' => {
                self.depth = self.depth.saturating_sub(1);
                if self.items.last().is_some_and(|f| f.depth == self.depth) {
                    self.items.pop();
                }
                if self.loops.last().copied() == Some(self.depth) {
                    self.loops.pop();
                }
            }
            b';' => {
                self.pending_let = None;
                self.pending_let_ty = None;
                self.pending_item = None;
                self.pending_test_attr = false;
            }
            b'#'
                if self.is_cfg_test_attr() => {
                    self.pending_test_attr = true;
                }
            _ => {}
        }
        self.pos += 1;
    }

    /// `#[cfg(test)]` (or `#[cfg(any(test, …))]`) at `self.pos`?
    fn is_cfg_test_attr(&self) -> bool {
        if !self.tok(self.pos + 1).is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        if !self.tok(self.pos + 2).is_some_and(|t| t.is_ident("cfg")) {
            return false;
        }
        // Scan the attribute body for a bare `test` ident.
        let mut i = self.pos + 3;
        let mut depth = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            } else if t.is_ident("test") {
                return true;
            } else if i > self.pos + 32 {
                return false;
            }
            i += 1;
        }
        false
    }

    /// With `self.pos` at a `{`: advances past its matching `}`.
    fn skip_balanced_braces(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    fn scan_ident(&mut self) {
        let t = &self.toks[self.pos];
        match t.text.as_str() {
            "fn" => {
                // An item only when followed by a name (excludes `fn(i32)`
                // pointer types).
                if let Some(name) = self.tok(self.pos + 1).filter(|n| n.kind == TokenKind::Ident)
                {
                    self.pending_item = Some((name.text.clone(), self.pending_test_attr));
                    self.pending_test_attr = false;
                }
                self.pos += 1;
            }
            "mod" | "trait" | "struct" | "enum" | "union" => {
                if let Some(name) = self.tok(self.pos + 1).filter(|n| n.kind == TokenKind::Ident)
                {
                    self.pending_item = Some((name.text.clone(), self.pending_test_attr));
                    self.pending_test_attr = false;
                }
                self.pos += 1;
            }
            "impl" => {
                // Name the frame after the last type ident before `{`/`for`;
                // `impl<T> Foo<T> for Bar<T>` → `Bar`.
                let mut i = self.pos + 1;
                let mut name = String::from("impl");
                while let Some(t) = self.tok(i) {
                    if t.is_punct('{') || t.is_punct(';') {
                        break;
                    }
                    if t.kind == TokenKind::Ident && t.text != "for" && t.text != "where" {
                        name = t.text.clone();
                    }
                    if t.is_ident("where") {
                        break;
                    }
                    i += 1;
                }
                self.pending_item = Some((name, self.pending_test_attr));
                self.pending_test_attr = false;
                self.pos += 1;
            }
            "for" => {
                // Loop header — unless part of `impl … for` (handled above,
                // because `impl` consumed it in its lookahead) or an HRTB
                // (`for<'a>`).
                if self.pending_item.is_none()
                    && !self.tok(self.pos + 1).is_some_and(|t| t.is_punct('<'))
                {
                    self.pending_loop = true;
                    self.scan_for_in();
                }
                self.pos += 1;
            }
            "while" | "loop" => {
                if self.pending_item.is_none() {
                    self.pending_loop = true;
                }
                self.pos += 1;
            }
            "let" => {
                if let Some(name) = self.let_binding_name() {
                    self.pending_let = Some(name);
                    self.pending_let_ty = self.let_ascription_type();
                }
                self.pos += 1;
            }
            "where" => {
                self.pos += 1;
            }
            _ => self.scan_expr_ident(),
        }
    }

    /// `let [mut] name` → the binding name; tuple/struct patterns yield
    /// `None` (the advisor cannot attribute usage to them anyway).
    fn let_binding_name(&self) -> Option<String> {
        let mut i = self.pos + 1;
        if self.tok(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        let name = self.tok(i)?;
        if name.kind != TokenKind::Ident {
            return None;
        }
        // Reject `let Some(x)`, `let (a, b)`: the next token after a plain
        // binding is `:`, `=` or `;`.
        match self.tok(i + 1) {
            Some(t) if t.is_punct(':') || t.is_punct('=') || t.is_punct(';') => {
                Some(name.text.clone())
            }
            _ => None,
        }
    }

    /// With `self.pos` at a `collect` ident: the declared variant this
    /// collect materializes plus the index of its call paren, when the
    /// target type is recognizable. Turbofish wins over the pending `let`
    /// ascription (it is syntactically closer to the call).
    fn collect_site_type(
        &self,
    ) -> Option<((DeclaredVariant, SiteCategory), usize)> {
        // `collect ::< Type … > (`
        if self.is_path_sep(self.pos + 1)
            && self.tok(self.pos + 3).is_some_and(|t| t.is_punct('<'))
        {
            let paren = self.skip_generics(self.pos + 3);
            if !self.tok(paren).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            // Head type: last path ident before the nested `<` (or the
            // closing `>` for non-generic spellings).
            let mut i = self.pos + 4;
            let mut head: Option<&str> = None;
            while let Some(t) = self.tok(i) {
                if t.is_punct('<') || t.is_punct('>') {
                    break;
                }
                if t.kind == TokenKind::Ident {
                    head = Some(t.text.as_str());
                }
                i += 1;
            }
            return head.and_then(type_table).map(|d| (d, paren));
        }
        // Plain `collect()` with a recognized `let … : Type =` ascription.
        if self.tok(self.pos + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(decl) = self.pending_let_ty {
                return Some((decl, self.pos + 1));
            }
        }
        None
    }

    /// With `self.pos` at `let`: the recognized collection type of the
    /// binding's `: Type` ascription, if any. Takes the head type ident
    /// before the first `<` (`Vec<Vec<u64>>` → `Vec`,
    /// `std::collections::HashMap<K, V>` → `HashMap`); wrappers like
    /// `Option<Vec<_>>` head at the wrapper and stay unrecognized, which is
    /// the conservative answer.
    fn let_ascription_type(&self) -> Option<(DeclaredVariant, SiteCategory)> {
        let mut i = self.pos + 1;
        if self.tok(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        i += 1; // past the binding name
        if !self.tok(i).is_some_and(|t| t.is_punct(':')) || self.is_path_sep(i) {
            return None;
        }
        i += 1;
        let mut head = None;
        let mut guard = 0;
        while let Some(t) = self.tok(i) {
            if t.is_punct('<') || t.is_punct('=') || t.is_punct(';') {
                break;
            }
            if t.kind == TokenKind::Ident {
                head = Some(t.text.as_str());
            } else if !t.is_punct(':') {
                return None; // `&[u64]`, `(A, B)`, … — not a plain path
            }
            i += 1;
            guard += 1;
            if guard > 16 {
                return None;
            }
        }
        head.and_then(type_table)
    }

    /// Records `for x in <receiver>` iteration facts (receiver is the last
    /// plain ident of the iterated expression head: `&xs`, `xs.iter()`,
    /// `xs` all attribute to `xs`).
    fn scan_for_in(&mut self) {
        let mut i = self.pos + 1;
        // Find `in` within a short window (pattern part).
        let mut guard = 0;
        while let Some(t) = self.tok(i) {
            if t.is_ident("in") {
                break;
            }
            if t.is_punct('{') || guard > 24 {
                return;
            }
            i += 1;
            guard += 1;
        }
        // Receiver: first ident after `in`, skipping `&`/`mut`.
        let mut j = i + 1;
        while self
            .tok(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        if let Some(recv) = self.tok(j).filter(|t| t.kind == TokenKind::Ident) {
            // Not a literal range or constructor call.
            if recv.kind == TokenKind::Ident && !recv.text.is_empty() {
                self.out.facts.push(MethodFact {
                    receiver: recv.text.clone(),
                    method: "for_in".to_owned(),
                    item: self.item_path(),
                    loop_depth: self.loops.len() as u32,
                    line: recv.line,
                });
            }
        }
    }

    /// Non-keyword ident: constructor patterns and method-call facts.
    fn scan_expr_ident(&mut self) {
        let t = &self.toks[self.pos];

        // Pattern 1: `Type[::<…>]::method(` on a recognized collection type.
        if let Some((decl, cat)) = type_table(&t.text) {
            if let Some((mi, paren)) = self.match_qualified_call() {
                let method = &self.toks[mi].text;
                if is_constructor_method(method) {
                    let cap = if method == "with_capacity" {
                        self.literal_int_arg(paren)
                    } else {
                        None
                    };
                    // `AnyList::new(ListKind::Linked)` refines the declared
                    // variant from the kind argument.
                    let declared = if cat == SiteCategory::CsCollections {
                        self.parse_kind_arg(paren + 1).unwrap_or(decl)
                    } else {
                        decl
                    };
                    self.push_site(
                        t,
                        format!("{}::{}", t.text, method),
                        declared,
                        cat,
                        cap,
                        None,
                    );
                    self.pos = paren + 1;
                    return;
                }
            }
        }

        // Pattern 1.5: a typed `collect` materializes a collection just
        // like a constructor. Two spellings carry the type: a turbofish
        // (`….collect::<Vec<u64>>()`) and a `let` ascription
        // (`let xs: Vec<u64> = ….collect();`). A bare, untyped `collect()`
        // in expression position stays invisible — there is nothing to
        // advise without knowing what it builds.
        if t.text == "collect" {
            if let Some((declared, paren)) = self.collect_site_type() {
                // The site category mirrors the constructor table, but the
                // spelling is always `collect` so reports distinguish
                // materialized iterators from explicit constructors.
                self.push_site(t, "collect".to_owned(), declared.0, declared.1, None, None);
                self.pos = paren + 1;
                return;
            }
        }

        // Pattern 2: `recv.method(` — context creation or a usage fact.
        if self.tok(self.pos + 1).is_some_and(|t| t.is_punct('.')) {
            let mi = self.pos + 2;
            let method = self.tok(mi).filter(|m| m.kind == TokenKind::Ident);
            // Only direct `recv.method(` calls become facts, by design —
            // chained calls (`map.entry(k).or_insert(0)`) attribute their
            // head (`entry`).
            if let Some(m) = method {
                let mut paren = mi + 1;
                // `recv.method::<T>(…)` turbofish.
                if self.tok(paren).is_some_and(|t| t.is_punct(':'))
                    && self.is_path_sep(paren)
                    && self.tok(paren + 2).is_some_and(|t| t.is_punct('<'))
                {
                    paren = self.skip_generics(paren + 2);
                }
                if self.tok(paren).is_some_and(|t| t.is_punct('(')) {
                    if let Some((abstraction, cat, named)) = context_method(&m.text) {
                        let declared = self
                            .parse_kind_arg(paren + 1)
                            .unwrap_or(context_default(abstraction));
                        let name = if named {
                            self.literal_str_arg(paren)
                        } else {
                            None
                        };
                        self.push_site(m, m.text.clone(), declared, cat, None, name);
                        self.pos = paren + 1;
                        return;
                    }
                    self.out.facts.push(MethodFact {
                        receiver: t.text.clone(),
                        method: m.text.clone(),
                        item: self.item_path(),
                        loop_depth: self.loops.len() as u32,
                        line: t.line,
                    });
                    self.pos = paren + 1;
                    return;
                }
            }
        }
        self.pos += 1;
    }
}

/// Extracts allocation sites and usage facts from one source file.
///
/// `path` is the label stamped on every site (use a workspace-relative,
/// forward-slash path for stable fingerprints).
///
/// # Examples
///
/// ```
/// use cs_analyzer::{extract, ExtractOptions};
///
/// let src = r#"
/// fn hot(queries: &[u64]) -> usize {
///     let mut blocked = Vec::with_capacity(512);
///     for q in queries {
///         if blocked.contains(q) { continue; }
///         blocked.push(*q);
///     }
///     blocked.len()
/// }
/// "#;
/// let analysis = extract("src/hot.rs", src, ExtractOptions::default());
/// assert_eq!(analysis.sites.len(), 1);
/// let site = &analysis.sites[0];
/// assert_eq!(site.fingerprint(), "src/hot.rs::hot#0");
/// assert_eq!(site.binding.as_deref(), Some("blocked"));
/// assert_eq!(site.capacity_hint, Some(512));
/// ```
pub fn extract(path: &str, src: &str, opts: ExtractOptions) -> FileAnalysis {
    let toks = lex(src);
    let mut scanner = Scanner {
        toks: &toks,
        pos: 0,
        path: path.to_owned(),
        opts,
        depth: 0,
        items: Vec::new(),
        loops: Vec::new(),
        pending_let: None,
        pending_let_ty: None,
        pending_test_attr: false,
        pending_item: None,
        pending_loop: false,
        out: FileAnalysis::default(),
        file_ordinal: 0,
    };
    scanner.scan();
    scanner.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<StaticSite> {
        extract("t.rs", src, ExtractOptions::default()).sites
    }

    #[test]
    fn std_constructors_with_fingerprints() {
        let src = r#"
fn build() {
    let mut v = Vec::new();
    let m = std::collections::HashMap::with_capacity(32);
    v.push(m);
}
fn other() {
    let s = HashSet::new();
    drop(s);
}
"#;
        let found = sites(src);
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].fingerprint(), "t.rs::build#0");
        assert_eq!(found[0].constructor, "Vec::new");
        assert_eq!(found[0].binding.as_deref(), Some("v"));
        assert_eq!(found[1].fingerprint(), "t.rs::build#1");
        assert_eq!(found[1].capacity_hint, Some(32));
        assert_eq!(found[2].fingerprint(), "t.rs::other#0");
        assert_eq!(found[2].declared, DeclaredVariant::Set(SetKind::Chained));
    }

    #[test]
    fn turbofish_and_nested_generics() {
        let src = "fn f() { let v = Vec::<HashMap<u8, Vec<u8>>>::new(); v.clear(); }";
        let found = sites(src);
        // Only the outer turbofish constructor is a site; the type arguments
        // inside `<…>` must not be mistaken for constructors.
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].constructor, "Vec::new");
        assert_eq!(found[0].binding.as_deref(), Some("v"));
    }

    #[test]
    fn typed_collect_is_a_site_in_both_spellings() {
        let src = r#"
fn f(xs: &[u64]) {
    let squares: Vec<u64> = xs.iter().map(|x| x * x).collect();
    let keys = xs.iter().map(|x| (*x, ())).collect::<HashMap<u64, ()>>();
    squares.len();
    keys.len();
}
"#;
        let found = sites(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].constructor, "collect");
        assert_eq!(found[0].declared, DeclaredVariant::List(ListKind::Array));
        assert_eq!(found[0].binding.as_deref(), Some("squares"));
        assert_eq!(found[1].declared, DeclaredVariant::Map(MapKind::Chained));
        assert_eq!(found[1].binding.as_deref(), Some("keys"));
    }

    #[test]
    fn untyped_or_unrecognized_collect_stays_invisible() {
        let src = r#"
fn f(xs: &[u64]) -> usize {
    let pairs: BTreeSet<u64> = xs.iter().copied().collect();
    xs.iter().map(|x| x + 1).collect::<Vec<u64>>().len()
}
fn g(xs: &[u64]) -> String {
    xs.iter().map(|x| x.to_string()).collect()
}
"#;
        let found = sites(src);
        // The BTreeSet ascription is recognized-but-unmodeled; the bare
        // turbofish in `f` is a real site even without a binding; the
        // String collect in `g` is not a collection at all.
        assert_eq!(found.len(), 2);
        assert_eq!(
            found[0].declared,
            DeclaredVariant::Unmodeled(Abstraction::Set)
        );
        assert_eq!(found[1].constructor, "collect");
        assert_eq!(found[1].binding, None);
        assert!(found.iter().all(|s| s.item != "g"));
    }

    #[test]
    fn first_site_consumes_the_let_ascription() {
        // The ascription describes one materialization; once a site is
        // pushed for the statement, a second plain `collect()` further
        // down the chain must not double-count against the same `let`.
        let src = "fn f(xs: &[u64]) { let v: Vec<u64> = xs.iter().copied()\
                   .collect::<Vec<u64>>().into_iter().map(|x| x + 1).collect(); }";
        let found = sites(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].constructor, "collect");
        assert_eq!(found[0].binding.as_deref(), Some("v"));
    }

    #[test]
    fn cs_collections_kind_argument_refines_declared() {
        let src = "fn f() { let l = AnyList::new(ListKind::Linked); }";
        let found = sites(src);
        assert_eq!(found[0].declared, DeclaredVariant::List(ListKind::Linked));
        assert_eq!(found[0].category, SiteCategory::CsCollections);
    }

    #[test]
    fn context_sites_capture_kind_and_name() {
        let src = r#"
fn wire(engine: &Switch) {
    let ctx = engine.named_list_context::<i64>(ListKind::Array, "IndexCursor:70");
    let anon = engine.set_context::<u64>(SetKind::Array);
}
"#;
        let found = sites(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].category, SiteCategory::Context);
        assert_eq!(found[0].declared, DeclaredVariant::List(ListKind::Array));
        assert_eq!(found[0].declared_name.as_deref(), Some("IndexCursor:70"));
        assert_eq!(found[1].declared, DeclaredVariant::Set(SetKind::Array));
        assert_eq!(found[1].declared_name, None);
    }

    #[test]
    fn runtime_sites_and_open_kinds() {
        let src = r#"
fn wire(rt: &Runtime) {
    let m = rt.named_concurrent_map::<u64, u64>(
        MapKind::Open(LibraryProfile::Koloboke),
        "session-cache",
    );
}
"#;
        let found = sites(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].category, SiteCategory::Runtime);
        assert_eq!(
            found[0].declared.kind_name().as_deref(),
            Some("open-koloboke")
        );
        assert_eq!(found[0].declared_name.as_deref(), Some("session-cache"));
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = r#"
fn prod() { let v = Vec::new(); }
#[cfg(test)]
mod tests {
    fn helper() { let m = HashMap::new(); }
}
"#;
        let found = sites(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "prod");
    }

    #[test]
    fn cfg_test_fn_without_module_is_skipped_too() {
        let src = r#"
#[cfg(test)]
fn fixture() -> Vec<u8> { let v = Vec::new(); v }
fn prod() { let s = HashSet::new(); }
"#;
        let found = sites(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "prod");
    }

    #[test]
    fn include_tests_option_keeps_them_with_flag() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper() { let m = HashMap::new(); }
}
"#;
        let found = extract(
            "t.rs",
            src,
            ExtractOptions {
                skip_cfg_test: false,
            },
        )
        .sites;
        assert_eq!(found.len(), 1);
        assert!(found[0].in_test);
        assert_eq!(found[0].item, "tests::helper");
    }

    #[test]
    fn constructors_in_strings_and_comments_are_ignored() {
        let src = r##"
fn f() {
    let a = "Vec::new()";
    let b = r#"HashMap::new()"#;
    // let c = HashSet::new();
    /* let d = BTreeMap::new(); */
}
"##;
        assert!(sites(src).is_empty());
    }

    #[test]
    fn method_facts_carry_loop_depth() {
        let src = r#"
fn scan(xs: &[u64]) {
    let mut seen = Vec::new();
    for x in xs {
        if seen.contains(x) { continue; }
        seen.push(*x);
    }
    for v in &seen { use_it(v); }
    seen.sort();
}
"#;
        let a = extract("t.rs", src, ExtractOptions::default());
        let contains = a
            .facts
            .iter()
            .find(|f| f.method == "contains")
            .expect("contains fact");
        assert_eq!(contains.receiver, "seen");
        assert_eq!(contains.loop_depth, 1);
        let sort = a.facts.iter().find(|f| f.method == "sort").unwrap();
        assert_eq!(sort.loop_depth, 0);
        let iter = a
            .facts
            .iter()
            .filter(|f| f.method == "for_in" && f.receiver == "seen")
            .count();
        assert_eq!(iter, 1);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = r#"
impl Drop for Holder {
    fn drop(&mut self) {
        let mut v = Vec::new();
        v.push(1);
    }
}
"#;
        let a = extract("t.rs", src, ExtractOptions::default());
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].item, "Holder::drop");
        let push = a.facts.iter().find(|f| f.method == "push").unwrap();
        assert_eq!(push.loop_depth, 0, "impl-for must not open a loop frame");
    }

    #[test]
    fn ordinals_are_per_item() {
        let src = r#"
fn a() { let x = Vec::new(); let y = Vec::new(); }
fn b() { let z = Vec::new(); }
"#;
        let found = sites(src);
        assert_eq!(
            found.iter().map(|s| s.fingerprint()).collect::<Vec<_>>(),
            vec!["t.rs::a#0", "t.rs::a#1", "t.rs::b#0"]
        );
    }

    #[test]
    fn nested_modules_compose_item_paths() {
        let src = r#"
mod outer {
    mod inner {
        fn build() { let v = Vec::new(); }
    }
}
"#;
        let found = sites(src);
        assert_eq!(found[0].item, "outer::inner::build");
    }
}
