//! Pull-side exporters: mirror engine state into a [`MetricsRegistry`].
//!
//! The push side ([`MetricsSink`](crate::MetricsSink)) counts events as
//! they happen; this module covers what events alone cannot — point-in-time
//! state (degraded flag, context count) and totals maintained inside the
//! engine (budget usage, log drops, profile drops, pass time). Call
//! [`export_engine`] right before snapshotting, the way a Prometheus
//! exporter refreshes on scrape.

use cs_core::{
    EngineHealth, StatePersisterStats, Switch, WarmStartReport, SNAPSHOT_LATENCY_BOUNDS_NS,
};
use cs_trace::{TraceSnapshot, SPAN_BUCKET_BOUNDS_NS};

use crate::metrics::MetricsRegistry;

/// Writes an [`EngineHealth`] into `registry` under the `cs_engine_*`
/// families. Idempotent: repeated calls overwrite the same series.
pub fn export_engine_health(registry: &MetricsRegistry, health: &EngineHealth) {
    registry
        .gauge(
            "cs_engine_degraded",
            "1 when adaptation is frozen after repeated analyzer failures.",
            &[],
        )
        .set(i64::from(health.degraded));
    registry
        .gauge(
            "cs_engine_contexts",
            "Registered allocation contexts.",
            &[],
        )
        .set(health.contexts as i64);
    let totals: [(&str, &str, u64); 8] = [
        (
            "cs_engine_analysis_passes_total",
            "Completed analysis passes (clean or panicked).",
            health.analysis_passes,
        ),
        (
            "cs_engine_transitions_used_total",
            "Transitions claimed against the global budget.",
            health.transitions_used,
        ),
        (
            "cs_engine_events_recorded_total",
            "Events ever recorded in the engine log.",
            health.events_recorded,
        ),
        (
            "cs_engine_events_dropped_total",
            "Events lost to the bounded log's eviction.",
            health.events_dropped,
        ),
        (
            "cs_engine_profiles_ingested_total",
            "Workload profiles accepted by per-site sinks.",
            health.profiles_ingested,
        ),
        (
            "cs_engine_profiles_dropped_total",
            "Workload profiles discarded by bounded per-site sinks.",
            health.profiles_dropped,
        ),
        (
            "cs_engine_analyzer_panics_total",
            "Lifetime analyzer panics.",
            health.analyzer_panics,
        ),
        (
            "cs_engine_sink_disconnects_total",
            "Event subscribers disconnected because they panicked.",
            health.sink_disconnects,
        ),
    ];
    for (name, help, value) in totals {
        registry.counter(name, help, &[]).set_total(value);
    }
}

/// Refreshes `registry` from a live engine: [`export_engine_health`] plus
/// cumulative analysis time.
pub fn export_engine(registry: &MetricsRegistry, engine: &Switch) {
    export_engine_health(registry, &engine.health());
    registry
        .counter(
            "cs_engine_analysis_nanos_total",
            "Cumulative wall-clock time spent in analysis passes, in nanoseconds.",
            &[],
        )
        .set_total(engine.analysis_time_total().as_nanos() as u64);
}

/// Writes a [`WarmStartReport`] into `registry` under the `cs_state_*`
/// families: the lenient loader's salvage account (records loaded /
/// quarantined / deduplicated), per-outcome site gauges, and the
/// warm-start hit ratio. Idempotent, like every exporter here.
pub fn export_warm_start(registry: &MetricsRegistry, report: &WarmStartReport) {
    let totals: [(&str, &str, u64); 3] = [
        (
            "cs_state_records_loaded_total",
            "Snapshot records salvaged by the lenient loader.",
            report.records_loaded,
        ),
        (
            "cs_state_records_quarantined_total",
            "Snapshot records quarantined as corrupt (CRC, framing, or decode failure).",
            report.records_quarantined,
        ),
        (
            "cs_state_duplicates_dropped_total",
            "Well-formed snapshot records dropped by last-wins deduplication.",
            report.duplicates_dropped,
        ),
    ];
    for (name, help, value) in totals {
        registry.counter(name, help, &[]).set_total(value);
    }
    let gauges: [(&str, &str, i64); 5] = [
        (
            "cs_state_warm_sites_in_snapshot",
            "Site records the imported snapshot carried.",
            report.sites_in_snapshot as i64,
        ),
        (
            "cs_state_warm_sites_applied",
            "Snapshot site records validated and installed on live sites.",
            report.applied as i64,
        ),
        (
            "cs_state_warm_sites_rejected_stale",
            "Snapshot site records rejected for a default-variant fingerprint mismatch.",
            report.rejected_stale as i64,
        ),
        (
            "cs_state_warm_sites_rejected_unknown",
            "Snapshot site records rejected because their variant is unknown to this build.",
            report.rejected_unknown as i64,
        ),
        (
            "cs_state_warm_sites_unclaimed",
            "Snapshot site records no live site has claimed yet.",
            report.unclaimed as i64,
        ),
    ];
    for (name, help, value) in gauges {
        registry.gauge(name, help, &[]).set(value);
    }
    registry
        .float_gauge(
            "cs_state_warm_hit_ratio",
            "Fraction of snapshot sites whose learned state was applied on warm start.",
            &[],
        )
        .set(report.hit_ratio());
}

/// Mirrors a [`StatePersisterStats`] into `registry`: snapshot write
/// totals, failure count, pending dirty events, and the snapshot write
/// latency histogram (`cs_state_snapshot_duration_seconds`, mirrored from
/// the persister's fixed nanosecond buckets — never `observe` into it).
pub fn export_persister(registry: &MetricsRegistry, stats: &StatePersisterStats) {
    registry
        .counter(
            "cs_state_snapshots_written_total",
            "Crash-safe state snapshots written successfully.",
            &[],
        )
        .set_total(stats.snapshots_written);
    registry
        .counter(
            "cs_state_snapshot_failures_total",
            "State snapshot write attempts that failed with an I/O error.",
            &[],
        )
        .set_total(stats.write_failures);
    registry
        .gauge(
            "cs_state_pending_dirty_events",
            "Dirtying engine events since the last successful snapshot.",
            &[],
        )
        .set(stats.pending_dirty_events as i64);
    registry
        .gauge(
            "cs_state_last_snapshot_bytes",
            "Size of the most recent state snapshot, in bytes.",
            &[],
        )
        .set(stats.last_write_bytes as i64);
    let bounds: Vec<f64> = SNAPSHOT_LATENCY_BOUNDS_NS
        .iter()
        .map(|&ns| ns as f64 * 1e-9)
        .collect();
    registry
        .histogram(
            "cs_state_snapshot_duration_seconds",
            "Latency of successful state snapshot writes.",
            &[],
            &bounds,
        )
        .set_distribution(&stats.latency_buckets, stats.total_write_nanos as f64 * 1e-9);
}

/// Refreshes every `cs_state_*` family from a live engine and (optionally)
/// its persister: [`export_warm_start`] when the engine was warm-started,
/// plus [`export_persister`] when a persister handle is supplied.
pub fn export_state(
    registry: &MetricsRegistry,
    engine: &Switch,
    persister: Option<&cs_core::StatePersister>,
) {
    if let Some(report) = engine.warm_start_report() {
        export_warm_start(registry, &report);
    }
    if let Some(p) = persister {
        export_persister(registry, &p.stats());
    }
}

/// Mirrors the process-wide `cs-heap` allocation account into `registry`
/// under the `cs_heap_*` families: the exact alloc/dealloc/realloc ledgers
/// (counts and bytes), derived live bytes, thread-block registry size, the
/// counting-allocator activation flag, and the kernel's peak-RSS reading.
///
/// Binaries that never installed [`cs_heap::CountingAlloc`] still export a
/// consistent view: every ledger reads zero, `cs_heap_counting_active` is 0,
/// and `cs_heap_peak_rss_bytes` still reports the kernel's number (it comes
/// from `/proc`, not the allocator). Idempotent, like every exporter here.
pub fn export_heap(registry: &MetricsRegistry) {
    let account = cs_heap::process_account();
    let totals: [(&str, &str, u64); 6] = [
        (
            "cs_heap_alloc_total",
            "Allocation events observed by the counting allocator (including realloc's allocating half).",
            account.alloc_count,
        ),
        (
            "cs_heap_alloc_bytes_total",
            "Bytes requested by allocation events.",
            account.alloc_bytes,
        ),
        (
            "cs_heap_dealloc_total",
            "Free events observed by the counting allocator (including realloc's freeing half).",
            account.dealloc_count,
        ),
        (
            "cs_heap_dealloc_bytes_total",
            "Bytes released by free events.",
            account.dealloc_bytes,
        ),
        (
            "cs_heap_realloc_total",
            "Realloc events (also counted in the alloc/dealloc ledgers).",
            account.realloc_count,
        ),
        (
            "cs_heap_realloc_bytes_total",
            "Bytes requested as realloc new sizes.",
            account.realloc_bytes,
        ),
    ];
    for (name, help, value) in totals {
        registry.counter(name, help, &[]).set_total(value);
    }
    registry
        .gauge(
            "cs_heap_live_bytes",
            "Bytes currently live per the counting allocator's ledger (alloc - dealloc).",
            &[],
        )
        .set(account.live_bytes() as i64);
    let (blocks_total, blocks_live) = cs_heap::thread_blocks();
    registry
        .gauge(
            "cs_heap_thread_blocks",
            "Per-thread counter blocks ever registered.",
            &[],
        )
        .set(blocks_total as i64);
    registry
        .gauge(
            "cs_heap_thread_blocks_live",
            "Per-thread counter blocks belonging to still-live threads.",
            &[],
        )
        .set(blocks_live as i64);
    registry
        .gauge(
            "cs_heap_counting_active",
            "1 when a counting global allocator has observed traffic in this process.",
            &[],
        )
        .set(i64::from(cs_heap::counting_active()));
    registry
        .gauge(
            "cs_heap_peak_rss_bytes",
            "Peak resident set size of the process per the kernel (VmHWM), in bytes.",
            &[],
        )
        .set(cs_heap::peak_rss_bytes() as i64);
}

/// Writes the process-level gauges into `registry`: how long this process
/// has been alive (`cs_process_uptime_seconds`, kernel truth from `/proc`
/// on Linux) and its peak resident set size (`cs_process_peak_rss_bytes`,
/// via [`cs_heap::peak_rss_bytes`]). These make a bare `/metrics` scrape
/// useful even before any site has seen traffic — a scraper can alert on
/// restarts and memory ceilings with no engine wiring at all. Idempotent,
/// like every exporter here.
pub fn export_process(registry: &MetricsRegistry) {
    registry
        .float_gauge(
            "cs_process_uptime_seconds",
            "Seconds since this process started, per the kernel where available.",
            &[],
        )
        .set(cs_heap::process_uptime().as_secs_f64());
    registry
        .gauge(
            "cs_process_peak_rss_bytes",
            "Peak resident set size of the process per the kernel (VmHWM), in bytes.",
            &[],
        )
        .set(cs_heap::peak_rss_bytes() as i64);
}

/// Mirrors a [`TraceSnapshot`] into `registry` under the `cs_trace_*`
/// families: the self-overhead account (`cs_trace_overhead_ratio`,
/// framework/app nano totals), per-phase span counts, and per-phase
/// duration histograms built from the tracer's power-of-four buckets.
///
/// Like [`export_engine`], call right before snapshotting; repeated calls
/// overwrite the same series. The histograms are *mirrored* (the tracer
/// owns the buckets), so never `observe` into them directly.
pub fn export_trace(registry: &MetricsRegistry, snap: &TraceSnapshot) {
    let overhead = snap.overhead();
    registry
        .float_gauge(
            "cs_trace_overhead_ratio",
            "Tracer self-cost share of accounted time: tracer / (tracer + application).",
            &[],
        )
        .set(overhead.ratio());
    registry
        .float_gauge(
            "cs_trace_pipeline_ratio",
            "Adaptation-pipeline share of accounted time: framework / (framework + application).",
            &[],
        )
        .set(overhead.pipeline_ratio());
    registry
        .counter(
            "cs_trace_framework_nanos_total",
            "Scaled top-level framework span time, in nanoseconds.",
            &[],
        )
        .set_total(overhead.framework_nanos);
    registry
        .counter(
            "cs_trace_tracer_nanos_total",
            "Calibrated tracer self-cost (span records plus sampling checks), in nanoseconds.",
            &[],
        )
        .set_total(overhead.tracer_nanos);
    registry
        .counter(
            "cs_trace_app_nanos_total",
            "Application wall time credited at thread-local flush boundaries, in nanoseconds.",
            &[],
        )
        .set_total(overhead.app_nanos);
    registry
        .counter(
            "cs_trace_app_ops_total",
            "Application collection ops credited at thread-local flush boundaries.",
            &[],
        )
        .set_total(overhead.app_ops);
    registry
        .counter(
            "cs_trace_spans_overwritten_total",
            "Spans evicted from per-thread rings before this snapshot.",
            &[],
        )
        .set_total(snap.total_overwritten());
    registry
        .gauge(
            "cs_trace_threads",
            "Threads that have recorded at least one span.",
            &[],
        )
        .set(snap.threads.len() as i64);

    // Seconds, to match Prometheus duration conventions.
    let bounds: Vec<f64> = SPAN_BUCKET_BOUNDS_NS
        .iter()
        .map(|&ns| ns as f64 * 1e-9)
        .collect();
    let phase_counts = snap.phase_counts();
    let phase_nanos = snap.phase_nanos();
    let buckets = snap.bucket_totals();
    for phase in cs_trace::Phase::ALL {
        let p = phase.index();
        registry
            .counter(
                "cs_trace_spans_total",
                "Spans recorded, by pipeline phase.",
                &[("phase", phase.name())],
            )
            .set_total(phase_counts[p]);
        registry
            .histogram(
                "cs_trace_phase_duration_seconds",
                "Span durations by pipeline phase (unscaled; sampled phases undercount).",
                &[("phase", phase.name())],
                &bounds,
            )
            .set_distribution(&buckets[p], phase_nanos[p] as f64 * 1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_export_round_trips() {
        let health = EngineHealth {
            degraded: true,
            contexts: 3,
            analysis_passes: 11,
            transitions_used: 2,
            events_recorded: 40,
            events_dropped: 1,
            profiles_ingested: 500,
            profiles_dropped: 7,
            analyzer_panics: 4,
            sink_disconnects: 1,
        };
        let registry = MetricsRegistry::new();
        export_engine_health(&registry, &health);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge_value("cs_engine_degraded"), Some(1));
        assert_eq!(snap.gauge_value("cs_engine_contexts"), Some(3));
        assert_eq!(
            snap.counter_value("cs_engine_profiles_dropped_total"),
            Some(7)
        );
        // Idempotent: a second export with fresh numbers overwrites.
        export_engine_health(
            &registry,
            &EngineHealth {
                degraded: false,
                ..health
            },
        );
        assert_eq!(
            registry.snapshot().gauge_value("cs_engine_degraded"),
            Some(0)
        );
        crate::validate_prometheus_text(&registry.snapshot().to_prometheus_text())
            .expect("valid exposition");
    }

    #[test]
    fn state_export_mirrors_warm_report_and_persister() {
        use crate::metrics::ValueSnapshot;

        let report = WarmStartReport {
            source: "state.css".into(),
            sites_in_snapshot: 4,
            models_in_snapshot: 3,
            applied: 3,
            rejected_stale: 1,
            rejected_unknown: 0,
            unclaimed: 0,
            records_loaded: 10,
            records_quarantined: 2,
            duplicates_dropped: 1,
        };
        let registry = MetricsRegistry::new();
        export_warm_start(&registry, &report);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("cs_state_records_loaded_total"), Some(10));
        assert_eq!(
            snap.counter_value("cs_state_records_quarantined_total"),
            Some(2)
        );
        assert_eq!(snap.gauge_value("cs_state_warm_sites_applied"), Some(3));
        assert_eq!(
            snap.gauge_value("cs_state_warm_sites_rejected_stale"),
            Some(1)
        );
        let hit = snap
            .family("cs_state_warm_hit_ratio")
            .and_then(|f| f.series.first())
            .map(|s| match s.value {
                ValueSnapshot::FloatGauge(v) => v,
                _ => panic!("hit ratio must be a float gauge"),
            })
            .expect("hit ratio exported");
        assert!((hit - 0.75).abs() < 1e-12, "hit ratio {hit}");

        let mut stats = cs_core::StatePersisterStats {
            snapshots_written: 5,
            write_failures: 1,
            total_write_nanos: 5_000_000,
            ..Default::default()
        };
        stats.latency_buckets[2] = 5;
        export_persister(&registry, &stats);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("cs_state_snapshots_written_total"), Some(5));
        assert_eq!(snap.counter_value("cs_state_snapshot_failures_total"), Some(1));
        let hist = snap
            .family("cs_state_snapshot_duration_seconds")
            .and_then(|f| f.series.first())
            .map(|s| s.value.clone())
            .expect("latency histogram exported");
        match hist {
            ValueSnapshot::Histogram(h) => {
                assert_eq!(h.count, 5);
                assert_eq!(h.counts[2], 5);
                assert!((h.sum - 5e-3).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Idempotent re-export, and the exposition stays well-formed.
        export_warm_start(&registry, &report);
        export_persister(&registry, &stats);
        crate::validate_prometheus_text(&registry.snapshot().to_prometheus_text())
            .expect("valid exposition");
    }

    #[test]
    fn heap_export_is_consistent_without_a_counting_allocator() {
        // This test binary does not install CountingAlloc, so every ledger
        // must read zero while the export stays structurally complete and
        // the exposition valid.
        let registry = MetricsRegistry::new();
        export_heap(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("cs_heap_alloc_total"), Some(0));
        assert_eq!(snap.counter_value("cs_heap_alloc_bytes_total"), Some(0));
        assert_eq!(snap.counter_value("cs_heap_realloc_total"), Some(0));
        assert_eq!(snap.gauge_value("cs_heap_live_bytes"), Some(0));
        assert_eq!(snap.gauge_value("cs_heap_counting_active"), Some(0));
        // Peak RSS comes from the kernel, not the allocator: nonzero even
        // without counting.
        assert!(snap.gauge_value("cs_heap_peak_rss_bytes").unwrap_or(0) > 0);
        // Idempotent re-export, and the exposition stays well-formed.
        export_heap(&registry);
        crate::validate_prometheus_text(&registry.snapshot().to_prometheus_text())
            .expect("valid exposition");
    }

    #[test]
    fn process_export_is_useful_before_any_traffic() {
        use crate::metrics::ValueSnapshot;

        let registry = MetricsRegistry::new();
        // Both /proc uptime sources tick at 10 ms granularity, so a freshly
        // started test process can legitimately read zero — wait past a
        // tick before exporting.
        std::thread::sleep(std::time::Duration::from_millis(25));
        export_process(&registry);
        let snap = registry.snapshot();
        let uptime = snap
            .family("cs_process_uptime_seconds")
            .and_then(|f| f.series.first())
            .map(|s| match s.value {
                ValueSnapshot::FloatGauge(v) => v,
                _ => panic!("uptime must be a float gauge"),
            })
            .expect("uptime exported");
        assert!(uptime > 0.0, "uptime {uptime}");
        assert!(snap.gauge_value("cs_process_peak_rss_bytes").unwrap_or(0) > 0);
        // Idempotent re-export advances (or holds) the gauge and the
        // exposition stays well-formed.
        export_process(&registry);
        let again = registry.snapshot();
        crate::validate_prometheus_text(&again.to_prometheus_text())
            .expect("valid exposition");
    }

    #[test]
    fn trace_export_mirrors_snapshot() {
        use crate::metrics::ValueSnapshot;
        use cs_trace::{Phase, ThreadTrace, PHASE_COUNT, SPAN_BUCKET_COUNT};

        // Synthetic snapshot: avoids flipping the process-global trace mode
        // under the parallel test harness.
        let mut thread = ThreadTrace {
            thread: 0,
            retired: false,
            recorded: 3,
            overwritten: 0,
            spans: Vec::new(),
            phase_counts: [0; PHASE_COUNT],
            phase_nanos: [0; PHASE_COUNT],
            phase_scaled_nanos: [0; PHASE_COUNT],
            outer_scaled_nanos: 250,
            bucket_counts: [[0; SPAN_BUCKET_COUNT]; PHASE_COUNT],
            app_ops: 10,
            app_nanos: 750,
        };
        let d = Phase::Decision.index();
        thread.phase_counts[d] = 3;
        thread.phase_nanos[d] = 250;
        thread.phase_scaled_nanos[d] = 250;
        thread.bucket_counts[d][0] = 2;
        thread.bucket_counts[d][SPAN_BUCKET_COUNT - 1] = 1;
        let snap = cs_trace::TraceSnapshot {
            threads: vec![thread],
            taken_ns: 1,
        };

        let registry = MetricsRegistry::new();
        export_trace(&registry, &snap);
        let tsnap = registry.snapshot();
        assert_eq!(tsnap.counter_value("cs_trace_framework_nanos_total"), Some(250));
        assert_eq!(tsnap.counter_value("cs_trace_app_nanos_total"), Some(750));
        assert_eq!(tsnap.counter_value("cs_trace_app_ops_total"), Some(10));
        let float_gauge = |name: &str| {
            tsnap
                .family(name)
                .and_then(|f| f.series.first())
                .map(|s| match s.value {
                    ValueSnapshot::FloatGauge(v) => v,
                    _ => panic!("{name} must be a float gauge"),
                })
                .unwrap_or_else(|| panic!("{name} series exported"))
        };
        // The pipeline ratio is exact: 250 framework vs 750 app nanos. The
        // self ratio depends on the host's calibrated tracer costs, so only
        // range-check it.
        let pipeline = float_gauge("cs_trace_pipeline_ratio");
        assert!((pipeline - 0.25).abs() < 1e-9, "pipeline ratio {pipeline}");
        let ratio = float_gauge("cs_trace_overhead_ratio");
        assert!(ratio > 0.0 && ratio < 1.0, "self ratio {ratio}");
        assert_eq!(
            tsnap.counter_value("cs_trace_tracer_nanos_total"),
            Some(snap.overhead().tracer_nanos)
        );
        let spans = tsnap.family("cs_trace_spans_total").expect("span counters");
        assert_eq!(spans.series.len(), PHASE_COUNT, "one series per phase");
        let hist = tsnap
            .family("cs_trace_phase_duration_seconds")
            .expect("duration histograms");
        let decision = hist
            .series
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "decision"))
            .expect("decision series");
        match &decision.value {
            ValueSnapshot::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.counts[0], 2);
                assert_eq!(*h.counts.last().unwrap(), 1);
                assert!((h.sum - 250e-9).abs() < 1e-15);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Idempotent re-export, and the exposition stays well-formed.
        export_trace(&registry, &snap);
        assert_eq!(
            registry.snapshot().counter_value("cs_trace_app_ops_total"),
            Some(10)
        );
        crate::validate_prometheus_text(&registry.snapshot().to_prometheus_text())
            .expect("valid exposition");
    }
}
