//! Pull-side exporters: mirror engine state into a [`MetricsRegistry`].
//!
//! The push side ([`MetricsSink`](crate::MetricsSink)) counts events as
//! they happen; this module covers what events alone cannot — point-in-time
//! state (degraded flag, context count) and totals maintained inside the
//! engine (budget usage, log drops, profile drops, pass time). Call
//! [`export_engine`] right before snapshotting, the way a Prometheus
//! exporter refreshes on scrape.

use cs_core::{EngineHealth, Switch};

use crate::metrics::MetricsRegistry;

/// Writes an [`EngineHealth`] into `registry` under the `cs_engine_*`
/// families. Idempotent: repeated calls overwrite the same series.
pub fn export_engine_health(registry: &MetricsRegistry, health: &EngineHealth) {
    registry
        .gauge(
            "cs_engine_degraded",
            "1 when adaptation is frozen after repeated analyzer failures.",
            &[],
        )
        .set(i64::from(health.degraded));
    registry
        .gauge(
            "cs_engine_contexts",
            "Registered allocation contexts.",
            &[],
        )
        .set(health.contexts as i64);
    let totals: [(&str, &str, u64); 8] = [
        (
            "cs_engine_analysis_passes_total",
            "Completed analysis passes (clean or panicked).",
            health.analysis_passes,
        ),
        (
            "cs_engine_transitions_used_total",
            "Transitions claimed against the global budget.",
            health.transitions_used,
        ),
        (
            "cs_engine_events_recorded_total",
            "Events ever recorded in the engine log.",
            health.events_recorded,
        ),
        (
            "cs_engine_events_dropped_total",
            "Events lost to the bounded log's eviction.",
            health.events_dropped,
        ),
        (
            "cs_engine_profiles_ingested_total",
            "Workload profiles accepted by per-site sinks.",
            health.profiles_ingested,
        ),
        (
            "cs_engine_profiles_dropped_total",
            "Workload profiles discarded by bounded per-site sinks.",
            health.profiles_dropped,
        ),
        (
            "cs_engine_analyzer_panics_total",
            "Lifetime analyzer panics.",
            health.analyzer_panics,
        ),
        (
            "cs_engine_sink_disconnects_total",
            "Event subscribers disconnected because they panicked.",
            health.sink_disconnects,
        ),
    ];
    for (name, help, value) in totals {
        registry.counter(name, help, &[]).set_total(value);
    }
}

/// Refreshes `registry` from a live engine: [`export_engine_health`] plus
/// cumulative analysis time.
pub fn export_engine(registry: &MetricsRegistry, engine: &Switch) {
    export_engine_health(registry, &engine.health());
    registry
        .counter(
            "cs_engine_analysis_nanos_total",
            "Cumulative wall-clock time spent in analysis passes, in nanoseconds.",
            &[],
        )
        .set_total(engine.analysis_time_total().as_nanos() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_export_round_trips() {
        let health = EngineHealth {
            degraded: true,
            contexts: 3,
            analysis_passes: 11,
            transitions_used: 2,
            events_recorded: 40,
            events_dropped: 1,
            profiles_ingested: 500,
            profiles_dropped: 7,
            analyzer_panics: 4,
            sink_disconnects: 1,
        };
        let registry = MetricsRegistry::new();
        export_engine_health(&registry, &health);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge_value("cs_engine_degraded"), Some(1));
        assert_eq!(snap.gauge_value("cs_engine_contexts"), Some(3));
        assert_eq!(
            snap.counter_value("cs_engine_profiles_dropped_total"),
            Some(7)
        );
        // Idempotent: a second export with fresh numbers overwrites.
        export_engine_health(
            &registry,
            &EngineHealth {
                degraded: false,
                ..health
            },
        );
        assert_eq!(
            registry.snapshot().gauge_value("cs_engine_degraded"),
            Some(0)
        );
        crate::validate_prometheus_text(&registry.snapshot().to_prometheus_text())
            .expect("valid exposition");
    }
}
