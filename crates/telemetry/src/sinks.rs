//! Ready-made [`EngineEventSink`] implementations: metrics aggregation,
//! a bounded JSONL audit stream, and an in-memory sink for tests.

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cs_core::{EngineEvent, EngineEventSink};
use parking_lot::Mutex;

use crate::json::event_to_json;
use crate::metrics::{Histogram, MetricsRegistry};

/// Bucket bounds (seconds) for the analysis-pass duration histogram:
/// exponential decades from 1µs to 1s, two points per decade.
pub const PASS_DURATION_BUCKETS: [f64; 13] = [
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,
];

/// An [`EngineEventSink`] that folds every event into a
/// [`MetricsRegistry`]:
///
/// * `cs_events_total{event=…}` — every event by kind;
/// * `cs_site_transitions_total` / `cs_site_rollbacks_total` /
///   `cs_site_quarantines_total{site=…}` — guardrail activity per
///   allocation site;
/// * `cs_selections_total{outcome=…}` — audit-trail outcomes;
/// * `cs_selection_margin` — histogram of winning margins (how decisive
///   selections are);
/// * `cs_analysis_pass_seconds` — histogram of analysis-pass durations.
///
/// The engine-global families are registered up front so an exposition
/// scraped before the first event still shows them at zero.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cs_core::Switch;
/// use cs_telemetry::{MetricsRegistry, MetricsSink};
///
/// let registry = MetricsRegistry::new();
/// let engine = Switch::builder()
///     .event_sink(Arc::new(MetricsSink::new(registry.clone())))
///     .build();
/// engine.analyze_now();
/// let text = registry.snapshot().to_prometheus_text();
/// assert!(text.contains("cs_events_total"));
/// ```
#[derive(Debug)]
pub struct MetricsSink {
    registry: MetricsRegistry,
    margin: Histogram,
    pass_duration: Histogram,
}

impl MetricsSink {
    /// Creates a sink feeding `registry`.
    pub fn new(registry: MetricsRegistry) -> Self {
        for kind in [
            "transition",
            "selection",
            "rollback",
            "quarantine",
            "model_fallback",
            "analyzer_panic",
            "degraded_entered",
        ] {
            registry.counter(
                "cs_events_total",
                "Engine events by kind.",
                &[("event", kind)],
            );
        }
        let margin = registry.histogram(
            "cs_selection_margin",
            "Winning margin of switch decisions (1 - predicted cost ratio).",
            &[],
            &[0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99],
        );
        let pass_duration = registry.histogram(
            "cs_analysis_pass_seconds",
            "Wall-clock duration of engine analysis passes.",
            &[],
            &PASS_DURATION_BUCKETS,
        );
        MetricsSink {
            registry,
            margin,
            pass_duration,
        }
    }

    /// The registry this sink updates.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn site_counter(&self, family: &'static str, help: &'static str, site: &str) {
        self.registry
            .counter(family, help, &[("site", site)])
            .inc();
    }
}

impl EngineEventSink for MetricsSink {
    fn on_event(&self, event: &EngineEvent) {
        self.registry
            .counter(
                "cs_events_total",
                "Engine events by kind.",
                &[("event", event.kind_name())],
            )
            .inc();
        match event {
            EngineEvent::Transition(t) => {
                self.site_counter(
                    "cs_site_transitions_total",
                    "Applied collection transitions per allocation site.",
                    &t.context_name,
                );
            }
            EngineEvent::Selection(e) => {
                self.registry
                    .counter(
                        "cs_selections_total",
                        "Selection decisions by outcome.",
                        &[("outcome", &e.outcome.to_string())],
                    )
                    .inc();
                if e.winner.is_some() && e.winning_margin.is_finite() {
                    self.margin.observe(e.winning_margin);
                }
            }
            EngineEvent::Rollback(r) => {
                self.site_counter(
                    "cs_site_rollbacks_total",
                    "Verification rollbacks per allocation site.",
                    &r.context_name,
                );
            }
            EngineEvent::Quarantine(q) => {
                self.site_counter(
                    "cs_site_quarantines_total",
                    "Candidate quarantines per allocation site.",
                    &q.context_name,
                );
            }
            EngineEvent::WarmStartSite(s) => {
                self.registry
                    .counter(
                        "cs_state_warm_sites_total",
                        "Warm-start site records by application outcome.",
                        &[("outcome", s.outcome.name())],
                    )
                    .inc();
            }
            EngineEvent::ModelFallback(_)
            | EngineEvent::AnalyzerPanic(_)
            | EngineEvent::DegradedEntered(_)
            | EngineEvent::WarmStart(_) => {}
        }
    }

    fn on_analysis_pass(&self, duration: Duration) {
        self.pass_duration.observe_duration(duration);
    }

    fn name(&self) -> &str {
        "metrics"
    }
}

#[derive(Debug)]
struct JsonlInner {
    writer: BufWriter<File>,
    written: u64,
}

/// A bounded JSONL file sink: each event becomes one line of JSON (the
/// [`event_to_json`] encoding — selection events carry the full decision
/// audit record). After `max_lines` lines the sink stops writing and
/// counts what it skipped, so a chatty engine can never fill a disk.
///
/// Write errors are likewise counted (see [`JsonlSink::io_errors`]) rather
/// than panicking: observability must not take the host down.
#[derive(Debug)]
pub struct JsonlSink {
    inner: Mutex<JsonlInner>,
    max_lines: u64,
    skipped: AtomicU64,
    io_errors: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, capping output at
    /// `max_lines` event lines.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the file.
    ///
    /// # Panics
    ///
    /// Panics if `max_lines` is zero.
    pub fn create(path: impl AsRef<Path>, max_lines: u64) -> io::Result<JsonlSink> {
        assert!(max_lines > 0, "JsonlSink cap must be nonzero");
        let file = File::create(path)?;
        Ok(JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(file),
                written: 0,
            }),
            max_lines,
            skipped: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        })
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Events skipped because the line cap was reached.
    pub fn lines_skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Events lost to write errors.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Flushes buffered lines to the file.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying flush.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().writer.flush()
    }

    /// Writes an arbitrary pre-rendered [`Json`](crate::Json) document as
    /// one line of the stream, under the same line cap and error
    /// accounting as engine events. This is how non-event records (flight
    /// recorder incidents) interleave with the audit trail.
    ///
    /// Returns `true` if the line was written (not capped, no I/O error).
    pub fn write_json(&self, doc: &crate::Json) -> bool {
        let mut inner = self.inner.lock();
        if inner.written >= self.max_lines {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut line = doc.render();
        line.push('\n');
        match inner.writer.write_all(line.as_bytes()) {
            Ok(()) => {
                inner.written += 1;
                true
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.inner.lock().writer.flush();
    }
}

impl EngineEventSink for JsonlSink {
    fn on_event(&self, event: &EngineEvent) {
        let mut inner = self.inner.lock();
        if inner.written >= self.max_lines {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut line = event_to_json(event).render();
        line.push('\n');
        match inner.writer.write_all(line.as_bytes()) {
            Ok(()) => inner.written += 1,
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn name(&self) -> &str {
        "jsonl"
    }
}

/// An in-memory sink that records everything it receives, for tests and
/// ad-hoc inspection.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cs_core::Switch;
/// use cs_telemetry::VecSink;
///
/// let sink = Arc::new(VecSink::default());
/// let engine = Switch::builder().event_sink(sink.clone()).build();
/// engine.analyze_now();
/// assert_eq!(sink.pass_durations().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<EngineEvent>>,
    passes: Mutex<Vec<Duration>>,
}

impl VecSink {
    /// A copy of every event received, in delivery order.
    pub fn events(&self) -> Vec<EngineEvent> {
        self.events.lock().clone()
    }

    /// Number of events received.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every analysis-pass duration received.
    pub fn pass_durations(&self) -> Vec<Duration> {
        self.passes.lock().clone()
    }

    /// Clears recorded events and pass durations.
    pub fn clear(&self) {
        self.events.lock().clear();
        self.passes.lock().clear();
    }
}

impl EngineEventSink for VecSink {
    fn on_event(&self, event: &EngineEvent) {
        self.events.lock().push(event.clone());
    }

    fn on_analysis_pass(&self, duration: Duration) {
        self.passes.lock().push(duration);
    }

    fn name(&self) -> &str {
        "vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_core::{ModelFallbackEvent, TransitionEvent};

    fn transition(name: &str) -> EngineEvent {
        EngineEvent::Transition(TransitionEvent::new(
            7,
            name,
            cs_collections::Abstraction::List,
            "array",
            "hasharray",
            2,
        ))
    }

    #[test]
    fn metrics_sink_counts_by_kind_and_site() {
        let registry = MetricsRegistry::new();
        let sink = MetricsSink::new(registry.clone());
        sink.on_event(&transition("A"));
        sink.on_event(&transition("A"));
        sink.on_event(&transition("B"));
        sink.on_event(&EngineEvent::ModelFallback(ModelFallbackEvent {
            file: "lists.model".into(),
            reason: "x".into(),
        }));
        sink.on_analysis_pass(Duration::from_micros(30));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("cs_events_total"), Some(4));
        assert_eq!(snap.counter_total("cs_site_transitions_total"), Some(3));
        let sites = snap.family("cs_site_transitions_total").unwrap();
        assert_eq!(sites.series.len(), 2);
        let text = snap.to_prometheus_text();
        assert!(text.contains("cs_site_transitions_total{site=\"A\"} 2"));
        assert!(text.contains("cs_analysis_pass_seconds_count 1"));
        crate::validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn jsonl_sink_caps_lines_and_counts_skips() {
        let path = std::env::temp_dir().join(format!(
            "cs-jsonl-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path, 2).unwrap();
        for _ in 0..5 {
            sink.on_event(&transition("A"));
        }
        sink.flush().unwrap();
        assert_eq!(sink.lines_written(), 2);
        assert_eq!(sink.lines_skipped(), 3);
        assert_eq!(sink.io_errors(), 0);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        for line in content.lines() {
            assert!(line.starts_with("{\"event\":\"transition\""));
            assert!(line.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vec_sink_records_in_order() {
        let sink = VecSink::default();
        sink.on_event(&transition("A"));
        sink.on_event(&transition("B"));
        sink.on_analysis_pass(Duration::from_nanos(5));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.pass_durations(), vec![Duration::from_nanos(5)]);
        sink.clear();
        assert!(sink.is_empty());
    }
}
