//! # cs-telemetry
//!
//! Observability for the CollectionSwitch stack: a lock-cheap metrics
//! registry, event sinks that turn the engine's push stream into metrics
//! and a JSONL audit trail, and exposition in Prometheus text and JSON.
//!
//! The paper (§4.4) names detailed logging of switch decisions as the
//! mitigation for the framework's main operational risk — a switch that
//! makes things worse and nobody can explain why. This crate is that
//! mitigation, productionized:
//!
//! * [`MetricsRegistry`] — atomic counters, gauges, and fixed-bucket
//!   histograms behind `Arc` handles; the registry lock is touched only at
//!   registration and snapshot time, so instrumented hot paths stay a
//!   single atomic RMW.
//! * [`MetricsSink`] / [`JsonlSink`] / [`VecSink`] — implementations of
//!   [`cs_core::EngineEventSink`] receiving every engine event at record
//!   time: one folds events into metrics, one streams the decision audit
//!   trail (including per-candidate cost estimates from
//!   [`cs_core::SelectionExplanation`]) as bounded JSONL, one buffers for
//!   tests.
//! * [`TelemetrySnapshot`] — a frozen registry copy that renders to
//!   Prometheus text ([`TelemetrySnapshot::to_prometheus_text`]) or JSON
//!   ([`TelemetrySnapshot::to_json`]); [`validate_prometheus_text`] checks
//!   the exposition grammar and is run in CI.
//! * [`export_engine`] — the pull side: mirrors [`cs_core::Switch::health`]
//!   into `cs_engine_*` series on scrape.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cs_collections::ListKind;
//! use cs_core::Switch;
//! use cs_telemetry::{export_engine, MetricsRegistry, MetricsSink, validate_prometheus_text};
//!
//! let registry = MetricsRegistry::new();
//! let engine = Switch::builder()
//!     .event_sink(Arc::new(MetricsSink::new(registry.clone())))
//!     .build();
//!
//! let ctx = engine.list_context::<i64>(ListKind::Array);
//! for _ in 0..200 {
//!     let mut list = ctx.create_list();
//!     for v in 0..150 {
//!         list.push(v);
//!     }
//!     for v in 0..150 {
//!         list.contains(&v);
//!     }
//! }
//! engine.analyze_now();
//!
//! export_engine(&registry, &engine); // refresh gauges, scrape-style
//! let snapshot = registry.snapshot();
//! let text = snapshot.to_prometheus_text();
//! validate_prometheus_text(&text).expect("well-formed exposition");
//! assert!(text.contains("cs_site_transitions_total"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod flight;
mod json;
mod metrics;
mod prometheus;
mod sinks;

pub use export::{
    export_engine, export_engine_health, export_heap, export_persister, export_process,
    export_state, export_trace, export_warm_start,
};
pub use flight::{FlightRecorder, FlightRecorderConfig};
pub use json::{
    event_to_json, explanation_to_json, health_to_json, manifest_entry_to_json, Json,
    JsonParseError,
};
pub use metrics::{
    Counter, FamilySnapshot, FloatGauge, Gauge, Histogram, HistogramSnapshot, MetricKind,
    MetricsRegistry, SeriesSnapshot, TelemetrySnapshot, ValueSnapshot,
};
pub use prometheus::validate_prometheus_text;
pub use sinks::{JsonlSink, MetricsSink, VecSink, PASS_DURATION_BUCKETS};

// The sinks cross the engine's dispatch boundary from arbitrary threads;
// losing `Send + Sync` on any of them must fail the build here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<MetricsSink>();
    assert_send_sync::<JsonlSink>();
    assert_send_sync::<VecSink>();
    assert_send_sync::<FlightRecorder>();
};
