//! A minimal JSON document model and serializer.
//!
//! The build environment pins every external dependency to a local shim, so
//! there is no `serde`; this module is the crate's single JSON encoder,
//! shared by the JSONL event sink, [`TelemetrySnapshot::to_json`]
//! (crate::TelemetrySnapshot::to_json), and the bench binaries' result
//! files. It emits strict RFC 8259 output: strings are escaped, non-finite
//! floats become `null` (JSON has no NaN), and object key order is the
//! insertion order so output is deterministic.

use std::fmt::Write as _;

use cs_core::{CandidateEstimate, EngineEvent, SelectionExplanation};

/// A JSON value.
///
/// # Examples
///
/// ```
/// use cs_telemetry::Json;
///
/// let doc = Json::object()
///     .field("site", Json::str("IndexCursor:70"))
///     .field("ops", Json::from(12_u64))
///     .field("ratio", Json::from(0.5));
/// assert_eq!(
///     doc.render(),
///     r#"{"site":"IndexCursor:70","ops":12,"ratio":0.5}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::String(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::String(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// A string value (shorthand for `Json::from`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Appends a key to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.into(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serializes to a compact (single-line) JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, for human-facing files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Infinity; `null` keeps the document parseable and
        // makes the hole explicit instead of inventing a sentinel number.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn candidate_to_json(c: &CandidateEstimate) -> Json {
    Json::object()
        .field("variant", c.variant.as_str())
        .field("primary_cost", c.primary_cost)
        .field("primary_ratio", c.primary_ratio)
        .field("satisfied", c.satisfied)
        .field("excluded", c.excluded)
}

/// Serializes a [`SelectionExplanation`] — the decision audit record — with
/// every candidate's estimate, for the JSONL stream and `explain` tooling.
pub fn explanation_to_json(e: &SelectionExplanation) -> Json {
    Json::object()
        .field("context_id", e.context_id)
        .field("context_name", e.context_name.as_str())
        .field("abstraction", e.abstraction.to_string())
        .field("rule", e.rule.as_str())
        .field("round", e.round)
        .field("current", e.current.as_str())
        .field("current_primary_cost", e.current_primary_cost)
        .field(
            "candidates",
            Json::Array(e.candidates.iter().map(candidate_to_json).collect()),
        )
        .field("winner", e.winner.as_deref())
        .field("winning_margin", e.winning_margin)
        .field("outcome", e.outcome.to_string())
}

/// Serializes any [`EngineEvent`] as a self-describing object whose `"event"`
/// field is [`EngineEvent::kind_name`]. This is the line format of the JSONL
/// sink, one event per line.
///
/// # Examples
///
/// ```
/// use cs_core::{EngineEvent, ModelFallbackEvent};
/// use cs_telemetry::event_to_json;
///
/// let event = EngineEvent::ModelFallback(ModelFallbackEvent {
///     file: "lists.model".into(),
///     reason: "garbage".into(),
/// });
/// assert_eq!(
///     event_to_json(&event).render(),
///     r#"{"event":"model_fallback","file":"lists.model","reason":"garbage"}"#
/// );
/// ```
pub fn event_to_json(event: &EngineEvent) -> Json {
    let doc = Json::object().field("event", event.kind_name());
    match event {
        EngineEvent::Transition(t) => doc
            .field("context_id", t.context_id)
            .field("context_name", t.context_name.as_str())
            .field("abstraction", t.abstraction.to_string())
            .field("from", t.from.as_str())
            .field("to", t.to.as_str())
            .field("round", t.round),
        EngineEvent::Selection(e) => {
            let Json::Object(audit) = explanation_to_json(e) else {
                unreachable!("explanation_to_json returns an object");
            };
            let Json::Object(mut fields) = doc else {
                unreachable!("doc is an object");
            };
            fields.extend(audit);
            Json::Object(fields)
        }
        EngineEvent::Rollback(r) => doc
            .field("context_id", r.context_id)
            .field("context_name", r.context_name.as_str())
            .field("abstraction", r.abstraction.to_string())
            .field("from", r.from.as_str())
            .field("to", r.to.as_str())
            .field("predicted_ratio", r.predicted_ratio)
            .field("realized_ratio", r.realized_ratio)
            .field("round", r.round),
        EngineEvent::Quarantine(q) => doc
            .field("context_id", q.context_id)
            .field("context_name", q.context_name.as_str())
            .field("abstraction", q.abstraction.to_string())
            .field("candidate", q.candidate.as_str())
            .field("until_round", q.until_round)
            .field("strikes", q.strikes)
            .field("round", q.round),
        EngineEvent::ModelFallback(m) => {
            doc.field("file", m.file.as_str()).field("reason", m.reason.as_str())
        }
        EngineEvent::AnalyzerPanic(p) => doc
            .field("consecutive", p.consecutive)
            .field("message", p.message.as_str()),
        EngineEvent::DegradedEntered(d) => {
            doc.field("consecutive_failures", d.consecutive_failures)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_compact() {
        let doc = Json::object()
            .field("xs", vec![1_u64, 2, 3])
            .field("inner", Json::object().field("ok", true))
            .field("nothing", Json::Null);
        assert_eq!(
            doc.render(),
            r#"{"xs":[1,2,3],"inner":{"ok":true},"nothing":null}"#
        );
    }

    #[test]
    fn pretty_rendering_is_parseable_shape() {
        let doc = Json::object().field("xs", vec![1_u64]).field("n", 2_u64);
        let text = doc.render_pretty();
        assert!(text.contains("\"xs\": [\n"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn option_maps_to_null() {
        let none: Option<&str> = None;
        assert_eq!(Json::from(none).render(), "null");
        assert_eq!(Json::from(Some("x")).render(), "\"x\"");
    }
}
