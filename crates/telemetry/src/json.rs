//! A minimal JSON document model and serializer.
//!
//! The build environment pins every external dependency to a local shim, so
//! there is no `serde`; this module is the crate's single JSON encoder,
//! shared by the JSONL event sink, [`TelemetrySnapshot::to_json`]
//! (crate::TelemetrySnapshot::to_json), and the bench binaries' result
//! files. It emits strict RFC 8259 output: strings are escaped, non-finite
//! floats become `null` (JSON has no NaN), and object key order is the
//! insertion order so output is deterministic.

use std::fmt::Write as _;

use cs_core::{CandidateEstimate, EngineEvent, SelectionExplanation};

/// A JSON value.
///
/// # Examples
///
/// ```
/// use cs_telemetry::Json;
///
/// let doc = Json::object()
///     .field("site", Json::str("IndexCursor:70"))
///     .field("ops", Json::from(12_u64))
///     .field("ratio", Json::from(0.5));
/// assert_eq!(
///     doc.render(),
///     r#"{"site":"IndexCursor:70","ops":12,"ratio":0.5}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::String(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::String(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// A string value (shorthand for `Json::from`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Appends a key to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.into(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serializes to a compact (single-line) JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, for human-facing files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Error from [`Json::parse`]: a message and the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            // Surrogate pairs are not recombined; the
                            // workspace's own output never emits them (it
                            // escapes only control characters).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if float {
            match text.parse::<f64>() {
                Ok(v) => Ok(Json::Float(v)),
                Err(_) => self.err(format!("bad number `{text}`")),
            }
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Json::UInt(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Json::Int(v))
        } else {
            self.err(format!("bad number `{text}`"))
        }
    }
}

impl Json {
    /// Parses a JSON document — the read half of this module, used by
    /// `cs-analyzer` to load committed baselines and runtime manifests.
    /// Accepts strict RFC 8259 documents (everything [`Json::render`] and
    /// [`Json::render_pretty`] emit round-trips); integers that fit `u64`
    /// parse as [`Json::UInt`], other integers as [`Json::Int`], the rest
    /// as [`Json::Float`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cs_telemetry::Json;
    ///
    /// let doc = Json::parse(r#"{"site":"a:1","ops":[1,2],"ok":true}"#).unwrap();
    /// assert_eq!(doc.get("site"), Some(&Json::String("a:1".into())));
    /// assert_eq!(doc.render(), r#"{"site":"a:1","ops":[1,2],"ok":true}"#);
    /// ```
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing garbage after document");
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The items, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Infinity; `null` keeps the document parseable and
        // makes the hole explicit instead of inventing a sentinel number.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn candidate_to_json(c: &CandidateEstimate) -> Json {
    Json::object()
        .field("variant", c.variant.as_str())
        .field("primary_cost", c.primary_cost)
        .field("primary_ratio", c.primary_ratio)
        // NaN (excluded candidates are never costed) renders as null.
        .field("contention_cost", c.contention_cost)
        .field("alloc_cost", c.alloc_cost)
        .field("energy_cost", c.energy_cost)
        .field("satisfied", c.satisfied)
        .field("excluded", c.excluded)
}

/// Serializes a [`SelectionExplanation`] — the decision audit record — with
/// every candidate's estimate, for the JSONL stream and `explain` tooling.
pub fn explanation_to_json(e: &SelectionExplanation) -> Json {
    Json::object()
        .field("context_id", e.context_id)
        .field("context_name", e.context_name.as_str())
        .field("abstraction", e.abstraction.to_string())
        .field("rule", e.rule.as_str())
        .field("round", e.round)
        .field("current", e.current.as_str())
        .field("current_primary_cost", e.current_primary_cost)
        .field("current_contention_cost", e.current_contention_cost)
        .field("contention_ratio", e.contention_ratio)
        .field("contention_driven", e.contention_driven)
        .field("current_alloc_cost", e.current_alloc_cost)
        .field("current_energy_cost", e.current_energy_cost)
        .field("alloc_bytes_per_op", e.alloc_bytes_per_op)
        .field("alloc_driven", e.alloc_driven)
        .field(
            "candidates",
            Json::Array(e.candidates.iter().map(candidate_to_json).collect()),
        )
        .field("winner", e.winner.as_deref())
        .field("winning_margin", e.winning_margin)
        .field("outcome", e.outcome.to_string())
}

/// Serializes an [`EngineHealth`](cs_core::EngineHealth) — the liveness
/// summary behind `cs-obs`'s `/health` endpoint — field for field.
pub fn health_to_json(h: &cs_core::EngineHealth) -> Json {
    Json::object()
        .field("degraded", h.degraded)
        .field("contexts", h.contexts as u64)
        .field("analysis_passes", h.analysis_passes)
        .field("transitions_used", h.transitions_used)
        .field("events_recorded", h.events_recorded)
        .field("events_dropped", h.events_dropped)
        .field("profiles_ingested", h.profiles_ingested)
        .field("profiles_dropped", h.profiles_dropped)
        .field("analyzer_panics", h.analyzer_panics)
        .field("sink_disconnects", h.sink_disconnects)
}

/// Serializes a [`SiteManifestEntry`](cs_core::SiteManifestEntry) — one row
/// of `cs-obs`'s `/sites` endpoint and of the drift tooling's manifests.
pub fn manifest_entry_to_json(e: &cs_core::SiteManifestEntry) -> Json {
    Json::object()
        .field("id", e.id)
        .field("name", e.name.as_str())
        .field("abstraction", e.abstraction.to_string())
        .field("default_kind", e.default_kind.as_str())
        .field("current_kind", e.current_kind.as_str())
        .field("alloc_bytes_per_op", e.alloc_bytes_per_op)
}

/// Serializes any [`EngineEvent`] as a self-describing object whose `"event"`
/// field is [`EngineEvent::kind_name`]. This is the line format of the JSONL
/// sink, one event per line.
///
/// # Examples
///
/// ```
/// use cs_core::{EngineEvent, ModelFallbackEvent};
/// use cs_telemetry::event_to_json;
///
/// let event = EngineEvent::ModelFallback(ModelFallbackEvent {
///     file: "lists.model".into(),
///     reason: "garbage".into(),
/// });
/// assert_eq!(
///     event_to_json(&event).render(),
///     r#"{"event":"model_fallback","file":"lists.model","reason":"garbage"}"#
/// );
/// ```
pub fn event_to_json(event: &EngineEvent) -> Json {
    let doc = Json::object().field("event", event.kind_name());
    match event {
        EngineEvent::Transition(t) => doc
            .field("context_id", t.context_id)
            .field("context_name", t.context_name.as_str())
            .field("abstraction", t.abstraction.to_string())
            .field("from", t.from.as_str())
            .field("to", t.to.as_str())
            .field("round", t.round),
        EngineEvent::Selection(e) => {
            let Json::Object(audit) = explanation_to_json(e) else {
                unreachable!("explanation_to_json returns an object");
            };
            let Json::Object(mut fields) = doc else {
                unreachable!("doc is an object");
            };
            fields.extend(audit);
            Json::Object(fields)
        }
        EngineEvent::Rollback(r) => doc
            .field("context_id", r.context_id)
            .field("context_name", r.context_name.as_str())
            .field("abstraction", r.abstraction.to_string())
            .field("from", r.from.as_str())
            .field("to", r.to.as_str())
            .field("predicted_ratio", r.predicted_ratio)
            .field("realized_ratio", r.realized_ratio)
            .field("round", r.round),
        EngineEvent::Quarantine(q) => doc
            .field("context_id", q.context_id)
            .field("context_name", q.context_name.as_str())
            .field("abstraction", q.abstraction.to_string())
            .field("candidate", q.candidate.as_str())
            .field("until_round", q.until_round)
            .field("strikes", q.strikes)
            .field("round", q.round),
        EngineEvent::ModelFallback(m) => {
            doc.field("file", m.file.as_str()).field("reason", m.reason.as_str())
        }
        EngineEvent::AnalyzerPanic(p) => doc
            .field("consecutive", p.consecutive)
            .field("message", p.message.as_str()),
        EngineEvent::DegradedEntered(d) => {
            doc.field("consecutive_failures", d.consecutive_failures)
        }
        EngineEvent::WarmStart(w) => doc
            .field("source", w.source.as_str())
            .field("sites_in_snapshot", w.sites_in_snapshot as u64)
            .field("models_in_snapshot", w.models_in_snapshot as u64)
            .field("records_loaded", w.records_loaded)
            .field("records_quarantined", w.records_quarantined)
            .field("duplicates_dropped", w.duplicates_dropped)
            .field("note", w.note.as_str()),
        EngineEvent::WarmStartSite(s) => doc
            .field("context_id", s.context_id)
            .field("context_name", s.context_name.as_str())
            .field("abstraction", s.abstraction.to_string())
            .field("snapshot_kind", s.snapshot_kind.as_str())
            .field("outcome", s.outcome.name())
            .field("detail", s.detail.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn nested_structures_render_compact() {
        let doc = Json::object()
            .field("xs", vec![1_u64, 2, 3])
            .field("inner", Json::object().field("ok", true))
            .field("nothing", Json::Null);
        assert_eq!(
            doc.render(),
            r#"{"xs":[1,2,3],"inner":{"ok":true},"nothing":null}"#
        );
    }

    #[test]
    fn pretty_rendering_is_parseable_shape() {
        let doc = Json::object().field("xs", vec![1_u64]).field("n", 2_u64);
        let text = doc.render_pretty();
        assert!(text.contains("\"xs\": [\n"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = Json::object()
            .field("site", Json::str("crates/a/src/b.rs::f#0"))
            .field("xs", vec![1_u64, 2, 3])
            .field("neg", Json::Int(-7))
            .field("ratio", 3.25)
            .field("inner", Json::object().field("ok", true).field("gap", Json::Null));
        let compact = Json::parse(&doc.render()).expect("compact parses");
        assert_eq!(compact, doc);
        let pretty = Json::parse(&doc.render_pretty()).expect("pretty parses");
        assert_eq!(pretty, doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let doc = Json::parse(r#"{"k":"a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        let err = Json::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn parse_number_shapes() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5e2").unwrap(), Json::Float(150.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn accessors_narrow_types() {
        let doc = Json::parse(r#"{"a":1,"b":[2],"c":"s","d":1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(doc.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn option_maps_to_null() {
        let none: Option<&str> = None;
        assert_eq!(Json::from(none).render(), "null");
        assert_eq!(Json::from(Some("x")).render(), "\"x\"");
    }
}
