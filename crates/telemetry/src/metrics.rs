//! A lock-cheap metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms, grouped into named families with Prometheus-style labels.
//!
//! The registry mutex is held only while *registering* a series (and while
//! snapshotting); the handles it returns are `Arc`'d atomics, so the hot
//! paths — `inc`, `set`, `observe` — are single atomic RMW operations with
//! no lock, safe to call from the analyzer thread, sink callbacks, and
//! worker threads concurrently. Registering the same `(name, labels)` pair
//! twice returns a handle to the *same* cell, so instrumentation code can
//! re-resolve handles without double counting.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;

/// What a metric family measures; mirrors the Prometheus `# TYPE` keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically nondecreasing count.
    Counter,
    /// Point-in-time value that can go up or down.
    Gauge,
    /// Distribution over fixed buckets, with sum and count.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle. Cloning shares the cell.
///
/// # Examples
///
/// ```
/// use cs_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let hits = registry.counter("cs_hits_total", "Total hits.", &[]);
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// // Re-registering resolves to the same cell.
/// assert_eq!(registry.counter("cs_hits_total", "Total hits.", &[]).get(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the total. Only for exporters mirroring a monotone total
    /// maintained elsewhere (e.g. an engine-internal atomic); never mix
    /// with [`Counter::add`] on the same series.
    pub fn set_total(&self, total: u64) {
        self.cell.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a signed point-in-time value). Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A float-valued gauge handle (f64 bits behind an atomic). Cloning shares
/// the cell. Registered under the Prometheus `gauge` kind, next to the
/// integer [`Gauge`]; use it for ratios and other fractional readings —
/// e.g. `cs_trace_overhead_ratio`.
#[derive(Debug, Clone)]
pub struct FloatGauge {
    cell: Arc<AtomicU64>,
}

impl FloatGauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending finite bucket upper bounds; an implicit `+Inf` bucket
    /// follows.
    bounds: Vec<f64>,
    /// One per bound, plus the `+Inf` bucket — *non*-cumulative here;
    /// exposition accumulates.
    counts: Vec<AtomicU64>,
    /// Sum of observations, stored as f64 bits (CAS loop on observe).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning shares the cells.
///
/// # Examples
///
/// ```
/// use cs_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let h = registry.histogram(
///     "cs_pass_seconds",
///     "Analysis pass duration.",
///     &[],
///     &[0.001, 0.01, 0.1],
/// );
/// h.observe(0.005);
/// h.observe(5.0); // lands in the implicit +Inf bucket
/// assert_eq!(h.count(), 2);
/// assert!((h.sum() - 5.005).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let bucket = self
            .core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, duration: std::time::Duration) {
        self.observe(duration.as_secs_f64());
    }

    /// Overwrites the whole distribution. Only for exporters mirroring a
    /// histogram maintained elsewhere (e.g. the tracer's per-phase
    /// duration buckets), refreshed on scrape; never mix with
    /// [`Histogram::observe`] on the same series.
    ///
    /// # Panics
    ///
    /// Panics unless `counts` has one entry per finite bound plus the
    /// final `+Inf` bucket.
    pub fn set_distribution(&self, counts: &[u64], sum: f64) {
        assert_eq!(
            counts.len(),
            self.core.bounds.len() + 1,
            "set_distribution needs one count per bound plus +Inf"
        );
        let mut total = 0u64;
        for (cell, &v) in self.core.counts.iter().zip(counts) {
            cell.store(v, Ordering::Relaxed);
            total += v;
        }
        self.core.count.store(total, Ordering::Relaxed);
        self.core.sum_bits.store(sum.to_bits(), Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<(Vec<(String, String)>, Cell)>,
}

/// The registry: named metric families, each with labelled series.
///
/// Cloning shares the registry. See the [crate docs](crate) for the
/// locking model. Metric and label names are validated on registration
/// against the Prometheus grammar, so a typo fails fast at the
/// instrumentation site instead of producing an exposition some scraper
/// rejects at 3am.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<Mutex<Vec<Family>>>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or resolves) a counter series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, or if `name` is already
    /// registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Cell::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    /// Registers (or resolves) a gauge series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, or if `name` is already
    /// registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Cell::Gauge(Gauge {
                cell: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Cell::Gauge(g) => g,
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    /// Registers (or resolves) a float-valued gauge series.
    ///
    /// Rendered under the same Prometheus `gauge` kind as [`Gauge`]; a
    /// given family must stick to one of the two cell flavours.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, or if `name` is already
    /// registered with a different kind or as an integer gauge.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Cell::FloatGauge(FloatGauge {
                cell: Arc::new(AtomicU64::new(0.0_f64.to_bits())),
            })
        }) {
            Cell::FloatGauge(g) => g,
            _ => panic!("metric {name} already registered as an integer gauge"),
        }
    }

    /// Registers (or resolves) a histogram series with the given ascending
    /// finite bucket bounds (an `+Inf` bucket is implicit).
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name, a kind conflict, or bounds
    /// that are empty, non-finite, or not strictly ascending.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram {name} bounds must be finite and strictly ascending"
        );
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Cell::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0.0_f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            })
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (label, _) in labels {
            assert!(
                valid_label_name(label),
                "invalid label name {label:?} on metric {name}"
            );
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let mut families = self.families.lock();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name} already registered as {}",
                family.kind.as_str()
            );
            if let Some((_, cell)) = family.series.iter().find(|(l, _)| *l == labels) {
                return cell.clone();
            }
            let cell = make();
            family.series.push((labels, cell.clone()));
            return cell;
        }
        let cell = make();
        families.push(Family {
            name: name.to_owned(),
            help: help.to_owned(),
            kind,
            series: vec![(labels, cell.clone())],
        });
        cell
    }

    /// A point-in-time copy of every family and series, in registration
    /// order (deterministic across runs with the same code path order).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let families = self.families.lock();
        TelemetrySnapshot {
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|(labels, cell)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match cell {
                                Cell::Counter(c) => ValueSnapshot::Counter(c.get()),
                                Cell::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                                Cell::FloatGauge(g) => ValueSnapshot::FloatGauge(g.get()),
                                Cell::Histogram(h) => ValueSnapshot::Histogram(HistogramSnapshot {
                                    bounds: h.core.bounds.clone(),
                                    counts: h
                                        .core
                                        .counts
                                        .iter()
                                        .map(|c| c.load(Ordering::Relaxed))
                                        .collect(),
                                    sum: h.sum(),
                                    count: h.count(),
                                }),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One series' value in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSnapshot {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Float gauge value.
    FloatGauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one per bound plus `+Inf` last.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// One labelled series in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: ValueSnapshot,
}

/// One metric family in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (Prometheus grammar).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// The family's series.
    pub series: Vec<SeriesSnapshot>,
}

/// A frozen copy of a [`MetricsRegistry`], ready for exposition.
///
/// # Examples
///
/// ```
/// use cs_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// registry
///     .counter("cs_transitions_total", "Collection transitions.", &[])
///     .inc();
/// let snapshot = registry.snapshot();
/// let text = snapshot.to_prometheus_text();
/// assert!(text.contains("cs_transitions_total 1"));
/// cs_telemetry::validate_prometheus_text(&text).expect("valid exposition");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Families in registration order.
    pub families: Vec<FamilySnapshot>,
}

impl TelemetrySnapshot {
    /// Finds a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The value of the unlabelled counter series `name`, or of the single
    /// series when exactly one exists. `None` if absent or not a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let family = self.family(name)?;
        let series = match family.series.as_slice() {
            [only] => only,
            many => many.iter().find(|s| s.labels.is_empty())?,
        };
        match series.value {
            ValueSnapshot::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Sums every counter series in family `name`. `None` if the family is
    /// absent or not a counter family.
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        let family = self.family(name)?;
        let mut total = 0u64;
        for series in &family.series {
            match series.value {
                ValueSnapshot::Counter(v) => total += v,
                _ => return None,
            }
        }
        Some(total)
    }

    /// The value of the unlabelled (or single) gauge series `name`.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let family = self.family(name)?;
        let series = match family.series.as_slice() {
            [only] => only,
            many => many.iter().find(|s| s.labels.is_empty())?,
        };
        match series.value {
            ValueSnapshot::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes the snapshot as a JSON document:
    /// `{"families": [{name, kind, help, series: [{labels, value…}]}]}`.
    pub fn to_json(&self) -> Json {
        Json::object().field(
            "families",
            Json::Array(
                self.families
                    .iter()
                    .map(|f| {
                        Json::object()
                            .field("name", f.name.as_str())
                            .field("kind", f.kind.as_str())
                            .field("help", f.help.as_str())
                            .field(
                                "series",
                                Json::Array(f.series.iter().map(series_to_json).collect()),
                            )
                    })
                    .collect(),
            ),
        )
    }
}

fn series_to_json(s: &SeriesSnapshot) -> Json {
    let labels = Json::Object(
        s.labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect(),
    );
    let doc = Json::object().field("labels", labels);
    match &s.value {
        ValueSnapshot::Counter(v) => doc.field("value", *v),
        ValueSnapshot::Gauge(v) => doc.field("value", *v),
        ValueSnapshot::FloatGauge(v) => doc.field("value", *v),
        ValueSnapshot::Histogram(h) => doc
            .field("bounds", h.bounds.clone())
            .field("counts", h.counts.clone())
            .field("sum", h.sum)
            .field("count", h.count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_gauge_and_distribution_mirrors() {
        let registry = MetricsRegistry::new();
        let g = registry.float_gauge("cs_ratio", "r", &[]);
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
        let h = registry.histogram("cs_mirror", "m", &[], &[1.0, 2.0]);
        h.set_distribution(&[3, 4, 5], 21.5);
        assert_eq!(h.count(), 12);
        assert_eq!(h.sum(), 21.5);
        // Overwrite, not accumulate.
        h.set_distribution(&[1, 0, 0], 0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.5);
        let snap = registry.snapshot();
        assert_eq!(
            snap.family("cs_ratio").unwrap().series[0].value,
            ValueSnapshot::FloatGauge(0.125)
        );
        crate::validate_prometheus_text(&snap.to_prometheus_text()).expect("valid exposition");
    }

    #[test]
    #[should_panic(expected = "one count per bound plus +Inf")]
    fn distribution_mirror_rejects_wrong_arity() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("cs_mirror_bad", "m", &[], &[1.0]);
        h.set_distribution(&[1], 0.0);
    }

    #[test]
    fn counter_series_are_deduplicated_by_labels() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("cs_x_total", "x", &[("site", "1")]);
        let b = registry.counter("cs_x_total", "x", &[("site", "1")]);
        let other = registry.counter("cs_x_total", "x", &[("site", "2")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.get(), 2, "same labels share a cell");
        assert_eq!(other.get(), 5);
        let snap = registry.snapshot();
        assert_eq!(snap.family("cs_x_total").unwrap().series.len(), 2);
        assert_eq!(snap.counter_total("cs_x_total"), Some(7));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("cs_pending", "pending", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(registry.snapshot().gauge_value("cs_pending"), Some(7));
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("cs_h", "h", &[], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // on the boundary: `le` is inclusive
        h.observe(5.0);
        h.observe(100.0);
        let snap = registry.snapshot();
        let ValueSnapshot::Histogram(hist) = &snap.family("cs_h").unwrap().series[0].value
        else {
            panic!("expected histogram");
        };
        assert_eq!(hist.counts, vec![2, 1, 1]);
        assert_eq!(hist.count, 4);
        assert!((hist.sum - 106.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("cs_h", "h", &[], &[0.5]);
        let c = registry.counter("cs_c_total", "c", &[]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = h.clone();
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8_000);
        assert_eq!(h.count(), 8_000);
        assert!((h.sum() - 8_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_rejected() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("cs_x", "x", &[]);
        let _ = registry.gauge("cs_x", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_names_are_rejected() {
        let _ = MetricsRegistry::new().counter("0bad", "x", &[]);
    }

    #[test]
    fn snapshot_json_is_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("cs_a_total", "A.", &[("k", "v")]).inc();
        let text = registry.snapshot().to_json().render();
        assert_eq!(
            text,
            r#"{"families":[{"name":"cs_a_total","kind":"counter","help":"A.","series":[{"labels":{"k":"v"},"value":1}]}]}"#
        );
    }
}
