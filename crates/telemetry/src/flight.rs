//! The anomaly flight recorder: freeze the recent past when something
//! goes wrong.
//!
//! Metrics tell you *that* a rollback happened; the audit trail tells you
//! *what* was decided. What neither preserves is the fine-grained "what
//! was the pipeline doing just before" — the span-level context that makes
//! an anomaly diagnosable after the fact. [`FlightRecorder`] closes that
//! gap: it subscribes to the engine's event stream and, when a trigger
//! fires, dumps the last `N` trace spans, the site's current
//! [`SelectionExplanation`](cs_core::SelectionExplanation), the
//! self-overhead account, and (optionally) a full metrics snapshot as one
//! JSONL *incident record* into a [`JsonlSink`] — interleaved with the
//! ordinary event audit trail, under the same line cap.
//!
//! ## Trigger matrix
//!
//! | Trigger             | Detected in        | Condition                                   |
//! |---------------------|--------------------|---------------------------------------------|
//! | `rollback`          | `on_event`         | a [`RollbackEvent`](cs_core::RollbackEvent) |
//! | `quarantine`        | `on_event`         | a [`QuarantineEvent`](cs_core::QuarantineEvent) |
//! | `contention_switch` | `on_event`         | a switched [`SelectionExplanation`](cs_core::SelectionExplanation) with `contention_driven` set — the strategy tier changed locking discipline because of observed contention |
//! | `state_quarantine`  | `on_event`         | a [`WarmStartEvent`](cs_core::WarmStartEvent) with corrupt records quarantined |
//! | `warm_start_reject` | `on_event`         | a [`WarmStartSiteEvent`](cs_core::WarmStartSiteEvent) whose record was rejected |
//! | `overhead_budget`   | `on_analysis_pass` | overhead ratio crosses above the budget     |
//! | `sink_disconnect`   | `on_analysis_pass` | the engine's sink-disconnect total grew     |
//!
//! The polled triggers are edge-detected (they fire on the crossing, not
//! on every pass spent above the threshold), and total incidents are
//! capped by [`FlightRecorderConfig::max_incidents`] so a flapping site
//! cannot fill the sink's line budget with incident dumps.
//!
//! `on_event` itself stays allocation- and lock-free on the non-triggering
//! path — it is on the engine's synchronous dispatch path — and hands off
//! to the (deliberately heavyweight) incident serializer only when a
//! trigger actually fires. The `no-alloc-in-span-path` analyzer lint keeps
//! it that way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_core::{EngineEvent, EngineEventSink, WeakSwitch};
use parking_lot::Mutex;

use crate::json::{event_to_json, explanation_to_json, Json};
use crate::metrics::MetricsRegistry;
use crate::sinks::JsonlSink;

/// Tuning for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// How many of the most recent spans to freeze into each incident.
    pub span_window: usize,
    /// Overhead-ratio budget; crossing above it fires an
    /// `overhead_budget` incident. The ISSUE-level SLO for sampled
    /// tracing is 5%.
    pub overhead_budget: f64,
    /// Hard cap on incidents ever recorded (the flight recorder must not
    /// exhaust the sink's line budget).
    pub max_incidents: u64,
    /// Attach a full metrics snapshot to each incident. Costly per
    /// incident; invaluable in post-mortems.
    pub include_telemetry: bool,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            span_window: 128,
            overhead_budget: 0.05,
            max_incidents: 32,
            include_telemetry: true,
        }
    }
}

/// An [`EngineEventSink`] that writes incident records on anomalies. See
/// the module-level documentation for the trigger matrix and record
/// schema.
///
/// Construction order matters: the recorder is registered as a sink on
/// the engine *and* queries the engine back (for explanations and
/// health), so it holds a [`WeakSwitch`] installed after the engine is
/// built:
///
/// ```
/// use std::sync::Arc;
/// use cs_core::Switch;
/// use cs_telemetry::{FlightRecorder, FlightRecorderConfig, JsonlSink, MetricsRegistry};
///
/// let path = std::env::temp_dir().join(format!("cs-fr-doc-{}.jsonl", std::process::id()));
/// let sink = Arc::new(JsonlSink::create(&path, 10_000).unwrap());
/// let recorder = Arc::new(FlightRecorder::new(
///     Arc::clone(&sink),
///     MetricsRegistry::new(),
///     FlightRecorderConfig::default(),
/// ));
/// let engine = Switch::builder().event_sink(recorder.clone()).build();
/// recorder.attach(&engine);
/// assert_eq!(recorder.incidents_recorded(), 0);
/// # drop(engine); std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    sink: Arc<JsonlSink>,
    registry: Option<MetricsRegistry>,
    config: FlightRecorderConfig,
    engine: Mutex<WeakSwitch>,
    incidents: AtomicU64,
    seq: AtomicU64,
    // Edge-detection state for the polled triggers.
    last_disconnects: AtomicU64,
    over_budget: AtomicU64, // 0 = below budget, 1 = above (latched)
}

impl FlightRecorder {
    /// Creates a recorder writing incidents to `sink`. Pass the registry
    /// the engine's metrics feed into so incidents can carry a metrics
    /// snapshot ([`FlightRecorderConfig::include_telemetry`]).
    pub fn new(
        sink: Arc<JsonlSink>,
        registry: MetricsRegistry,
        config: FlightRecorderConfig,
    ) -> FlightRecorder {
        FlightRecorder {
            sink,
            registry: Some(registry),
            config,
            engine: Mutex::new(WeakSwitch::dangling()),
            incidents: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            last_disconnects: AtomicU64::new(0),
            over_budget: AtomicU64::new(0),
        }
    }

    /// Installs the engine back-reference (non-owning). Until attached,
    /// incidents record with a `null` explanation and no health polling.
    pub fn attach(&self, engine: &cs_core::Switch) {
        *self.engine.lock() = engine.downgrade();
    }

    /// Incidents written so far.
    pub fn incidents_recorded(&self) -> u64 {
        self.incidents.load(Ordering::Relaxed)
    }

    /// The sink incidents are written into.
    pub fn sink(&self) -> &JsonlSink {
        &self.sink
    }

    /// Serializes and writes one incident. Heavyweight by design; only
    /// called once a trigger has fired.
    fn record_incident(&self, trigger: &str, event: Option<&EngineEvent>) {
        if self.incidents.load(Ordering::Relaxed) >= self.config.max_incidents {
            return;
        }
        let snap = cs_trace::snapshot();
        let overhead = snap.overhead();
        let explanation = event
            .and_then(|e| match e {
                EngineEvent::Rollback(r) => Some(r.context_id),
                EngineEvent::Quarantine(q) => Some(q.context_id),
                EngineEvent::Selection(s) => Some(s.context_id),
                _ => None,
            })
            .and_then(|site| self.engine.lock().upgrade()?.explain(site));
        let spans: Vec<Json> = snap
            .last_spans(self.config.span_window)
            .iter()
            .map(|s| {
                Json::object()
                    .field("thread", s.thread)
                    .field("site", s.site)
                    .field("phase", s.phase.name())
                    .field("depth", u64::from(s.depth))
                    .field("start_ns", s.start_ns)
                    .field("dur_ns", s.dur_ns)
            })
            .collect();
        let doc = Json::object()
            .field("kind", "incident")
            .field("seq", self.seq.fetch_add(1, Ordering::Relaxed))
            .field("trigger", trigger)
            .field("t_ns", snap.taken_ns)
            .field("event", event.map(event_to_json))
            .field("explanation", explanation.as_ref().map(explanation_to_json))
            .field(
                "overhead",
                Json::object()
                    .field("framework_nanos", overhead.framework_nanos)
                    .field("tracer_nanos", overhead.tracer_nanos)
                    .field("app_nanos", overhead.app_nanos)
                    .field("app_ops", overhead.app_ops)
                    .field("ratio", overhead.ratio())
                    .field("pipeline_ratio", overhead.pipeline_ratio()),
            )
            .field("spans", Json::Array(spans))
            .field(
                "telemetry",
                match (&self.registry, self.config.include_telemetry) {
                    (Some(r), true) => r.snapshot().to_json(),
                    _ => Json::Null,
                },
            );
        if self.sink.write_json(&doc) {
            self.incidents.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl EngineEventSink for FlightRecorder {
    fn on_event(&self, event: &EngineEvent) {
        let trigger = match event {
            EngineEvent::Rollback(_) => "rollback",
            EngineEvent::Quarantine(_) => "quarantine",
            // A switch the contention term decided: the incident preserves
            // the full explanation (ratio, contention costs per candidate)
            // that justified changing the locking discipline.
            EngineEvent::Selection(s)
                if s.outcome == cs_core::SelectionOutcome::Switched && s.contention_driven =>
            {
                "contention_switch"
            }
            // Corruption survived a restart: the snapshot loaded, but some
            // records were quarantined. The incident preserves the salvage
            // account alongside whatever the pipeline was doing.
            EngineEvent::WarmStart(w) if w.records_quarantined > 0 => "state_quarantine",
            // A snapshot site record failed per-site validation (stale
            // fingerprint / unknown variant) — that site cold-started.
            EngineEvent::WarmStartSite(s)
                if s.outcome != cs_core::WarmStartSiteOutcome::Applied =>
            {
                "warm_start_reject"
            }
            _ => return,
        };
        self.record_incident(trigger, Some(event));
    }

    fn on_analysis_pass(&self, _duration: Duration) {
        let overhead = cs_trace::snapshot().overhead();
        let was_over = self.over_budget.load(Ordering::Relaxed) == 1;
        // Only judge the ratio once application time has been credited:
        // before the first flush the denominator is empty and any recorded
        // span would push the ratio to 1.0, which is startup noise, not an
        // anomaly.
        let is_over =
            overhead.app_nanos > 0 && overhead.ratio() > self.config.overhead_budget;
        self.over_budget
            .store(u64::from(is_over), Ordering::Relaxed);
        if is_over && !was_over {
            self.record_incident("overhead_budget", None);
        }
        if let Some(engine) = self.engine.lock().upgrade() {
            let disconnects = engine.sink_disconnects();
            let before = self.last_disconnects.swap(disconnects, Ordering::Relaxed);
            if disconnects > before {
                self.record_incident("sink_disconnect", None);
            }
        }
    }

    fn name(&self) -> &str {
        "flight-recorder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cs-flight-{tag}-{}.jsonl", std::process::id()))
    }

    fn recorder(path: &std::path::Path, config: FlightRecorderConfig) -> Arc<FlightRecorder> {
        let sink = Arc::new(JsonlSink::create(path, 1_000).unwrap());
        Arc::new(FlightRecorder::new(sink, MetricsRegistry::new(), config))
    }

    #[test]
    fn rollback_event_produces_parseable_incident() {
        let path = tmp("rollback");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: true,
                ..FlightRecorderConfig::default()
            },
        );
        rec.on_event(&EngineEvent::Rollback(cs_core::RollbackEvent {
            context_id: 9,
            context_name: "orders".into(),
            abstraction: cs_collections::Abstraction::Map,
            from: "hash".into(),
            to: "chained".into(),
            predicted_ratio: 0.7,
            realized_ratio: 1.9,
            round: 4,
        }));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let content = std::fs::read_to_string(&path).unwrap();
        let line = content.lines().next().expect("one incident line");
        let doc = Json::parse(line).expect("incident is valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("incident"));
        assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("rollback"));
        assert_eq!(
            doc.get("event")
                .and_then(|e| e.get("event"))
                .and_then(Json::as_str),
            Some("rollback")
        );
        assert!(doc.get("overhead").is_some());
        assert!(doc.get("spans").and_then(Json::as_array).is_some());
        // No engine attached: explanation degrades to null, nothing panics.
        assert_eq!(doc.get("explanation"), Some(&Json::Null));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incident_cap_holds_and_non_triggers_are_ignored() {
        let path = tmp("cap");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                max_incidents: 2,
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        rec.on_event(&EngineEvent::ModelFallback(cs_core::ModelFallbackEvent {
            file: "x".into(),
            reason: "y".into(),
        }));
        assert_eq!(rec.incidents_recorded(), 0, "fallback is not a trigger");
        for _ in 0..5 {
            rec.on_event(&EngineEvent::Quarantine(cs_core::QuarantineEvent {
                context_id: 1,
                context_name: "q".into(),
                abstraction: cs_collections::Abstraction::List,
                candidate: "array".into(),
                until_round: 9,
                strikes: 1,
                round: 2,
            }));
        }
        assert_eq!(rec.incidents_recorded(), 2, "capped at max_incidents");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_triggers_fire_only_on_anomalies() {
        let path = tmp("warm");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        // A clean warm start is not an incident.
        rec.on_event(&EngineEvent::WarmStart(cs_core::WarmStartEvent {
            source: "state.css".into(),
            sites_in_snapshot: 3,
            models_in_snapshot: 3,
            records_loaded: 7,
            records_quarantined: 0,
            duplicates_dropped: 0,
            note: String::new(),
        }));
        // Nor is a record applied successfully.
        rec.on_event(&EngineEvent::WarmStartSite(cs_core::WarmStartSiteEvent {
            context_id: 1,
            context_name: "orders".into(),
            abstraction: cs_collections::Abstraction::List,
            snapshot_kind: "hasharray".into(),
            outcome: cs_core::WarmStartSiteOutcome::Applied,
            detail: "resumed".into(),
        }));
        assert_eq!(rec.incidents_recorded(), 0);
        // Salvaged-with-quarantine and per-site rejection both are.
        rec.on_event(&EngineEvent::WarmStart(cs_core::WarmStartEvent {
            source: "state.css".into(),
            sites_in_snapshot: 3,
            models_in_snapshot: 3,
            records_loaded: 6,
            records_quarantined: 1,
            duplicates_dropped: 0,
            note: "1 corrupt record(s) quarantined".into(),
        }));
        rec.on_event(&EngineEvent::WarmStartSite(cs_core::WarmStartSiteEvent {
            context_id: 2,
            context_name: "sessions".into(),
            abstraction: cs_collections::Abstraction::Set,
            snapshot_kind: "array".into(),
            outcome: cs_core::WarmStartSiteOutcome::StaleFingerprint,
            detail: "default drifted".into(),
        }));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 2);
        let content = std::fs::read_to_string(&path).unwrap();
        let triggers: Vec<String> = content
            .lines()
            .map(|l| {
                Json::parse(l)
                    .expect("incident parses")
                    .get("trigger")
                    .and_then(Json::as_str)
                    .expect("trigger field")
                    .to_owned()
            })
            .collect();
        assert_eq!(triggers, ["state_quarantine", "warm_start_reject"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn contention_driven_switch_records_an_incident_with_the_explanation() {
        let path = tmp("contention");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        let explanation = cs_core::SelectionExplanation {
            context_id: 3,
            context_name: "hot-cache#strategy".into(),
            abstraction: cs_collections::Abstraction::Map,
            rule: "R_time".into(),
            round: 11,
            current: "lockstriped".into(),
            current_primary_cost: 65_000.0,
            current_contention_cost: 45_000.0,
            contention_ratio: 0.5,
            contention_driven: true,
            candidates: vec![],
            winner: Some("lockfree".into()),
            winning_margin: 0.37,
            outcome: cs_core::SelectionOutcome::Switched,
        };
        // A contention-free switch is routine adaptation, not an incident.
        rec.on_event(&EngineEvent::Selection(cs_core::SelectionExplanation {
            contention_driven: false,
            ..explanation.clone()
        }));
        // An audited pass that keeps the variant is not one either.
        rec.on_event(&EngineEvent::Selection(cs_core::SelectionExplanation {
            outcome: cs_core::SelectionOutcome::NoCandidate,
            winner: None,
            ..explanation.clone()
        }));
        assert_eq!(rec.incidents_recorded(), 0);
        rec.on_event(&EngineEvent::Selection(explanation));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let content = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(content.lines().next().unwrap()).expect("valid incident");
        assert_eq!(
            doc.get("trigger").and_then(Json::as_str),
            Some("contention_switch")
        );
        let event = doc.get("event").expect("event attached");
        assert_eq!(
            event.get("contention_driven"),
            Some(&Json::Bool(true)),
            "the incident must preserve the contention inputs: {event:?}"
        );
        assert_eq!(event.get("contention_ratio"), Some(&Json::from(0.5)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disconnect_poll_is_edge_detected() {
        let path = tmp("edge");
        let rec = recorder(&path, FlightRecorderConfig::default());
        let engine = cs_core::Switch::builder().build();
        rec.attach(&engine);
        // No disconnects yet: polling fires nothing.
        rec.on_analysis_pass(Duration::from_micros(1));
        rec.on_analysis_pass(Duration::from_micros(1));
        assert_eq!(rec.incidents_recorded(), 0);
        std::fs::remove_file(&path).ok();
    }
}
