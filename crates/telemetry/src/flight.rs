//! The anomaly flight recorder: freeze the recent past when something
//! goes wrong.
//!
//! Metrics tell you *that* a rollback happened; the audit trail tells you
//! *what* was decided. What neither preserves is the fine-grained "what
//! was the pipeline doing just before" — the span-level context that makes
//! an anomaly diagnosable after the fact. [`FlightRecorder`] closes that
//! gap: it subscribes to the engine's event stream and, when a trigger
//! fires, dumps the last `N` trace spans, the site's current
//! [`SelectionExplanation`](cs_core::SelectionExplanation), the
//! self-overhead account, and (optionally) a full metrics snapshot as one
//! JSONL *incident record* into a [`JsonlSink`] — interleaved with the
//! ordinary event audit trail, under the same line cap.
//!
//! ## Trigger matrix
//!
//! | Trigger             | Detected in        | Condition                                   |
//! |---------------------|--------------------|---------------------------------------------|
//! | `rollback`          | `on_event`         | a [`RollbackEvent`](cs_core::RollbackEvent) |
//! | `quarantine`        | `on_event`         | a [`QuarantineEvent`](cs_core::QuarantineEvent) |
//! | `contention_switch` | `on_event`         | a switched [`SelectionExplanation`](cs_core::SelectionExplanation) with `contention_driven` set — the strategy tier changed locking discipline because of observed contention |
//! | `alloc_switch`      | `on_event`         | a switched [`SelectionExplanation`](cs_core::SelectionExplanation) with `alloc_driven` set — the allocation dimension decided the switch |
//! | `state_quarantine`  | `on_event`         | a [`WarmStartEvent`](cs_core::WarmStartEvent) with corrupt records quarantined |
//! | `warm_start_reject` | `on_event`         | a [`WarmStartSiteEvent`](cs_core::WarmStartSiteEvent) whose record was rejected |
//! | `overhead_budget`   | `on_analysis_pass` | overhead ratio crosses above the budget     |
//! | `sink_disconnect`   | `on_analysis_pass` | the engine's sink-disconnect total grew     |
//! | `alloc_spike`       | `on_analysis_pass` | process allocation bytes this pass exceed [`FlightRecorderConfig::alloc_spike_ratio`] × the trailing per-pass average (and the absolute floor) |
//! | `phase_shift`       | external ([`FlightRecorder::record_external`]) | `cs-obs`'s EWMA drift detector saw a site's op-mix or alloc-rate trend break band |
//!
//! The polled triggers are edge-detected (they fire on the crossing, not
//! on every pass spent above the threshold), and total incidents are
//! capped by [`FlightRecorderConfig::max_incidents`] so a flapping site
//! cannot fill the sink's line budget with incident dumps. Every incident
//! additionally freezes the process-wide `cs-heap` account under a
//! `"heap"` field — zeros in binaries that never installed the counting
//! allocator.
//!
//! `on_event` itself stays allocation- and lock-free on the non-triggering
//! path — it is on the engine's synchronous dispatch path — and hands off
//! to the (deliberately heavyweight) incident serializer only when a
//! trigger actually fires. The `no-alloc-in-span-path` analyzer lint keeps
//! it that way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_core::{EngineEvent, EngineEventSink, WeakSwitch};
use parking_lot::Mutex;

use crate::json::{event_to_json, explanation_to_json, Json};
use crate::metrics::MetricsRegistry;
use crate::sinks::JsonlSink;

/// Tuning for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// How many of the most recent spans to freeze into each incident.
    pub span_window: usize,
    /// Overhead-ratio budget; crossing above it fires an
    /// `overhead_budget` incident. The ISSUE-level SLO for sampled
    /// tracing is 5%.
    pub overhead_budget: f64,
    /// Hard cap on incidents ever recorded (the flight recorder must not
    /// exhaust the sink's line budget).
    pub max_incidents: u64,
    /// Attach a full metrics snapshot to each incident. Costly per
    /// incident; invaluable in post-mortems.
    pub include_telemetry: bool,
    /// An `alloc_spike` fires when the bytes allocated since the previous
    /// analysis pass exceed this multiple of the trailing per-pass average
    /// (EWMA, 7/8 decay). Detection needs a warm baseline: the first two
    /// passes only measure.
    pub alloc_spike_ratio: f64,
    /// Absolute floor for `alloc_spike`: a pass must allocate at least
    /// this many bytes to fire, so an idle process's tiny wobbles (ratio
    /// against a near-zero baseline) stay quiet.
    pub alloc_spike_min_bytes: u64,
    /// How many of the most recent incident records to keep in memory for
    /// live queries ([`FlightRecorder::recent_incidents`], served by
    /// `cs-obs` as `/incidents`). Bounded by construction: the ring
    /// allocates its full capacity up front and evicts oldest-first.
    pub ring_capacity: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            span_window: 128,
            overhead_budget: 0.05,
            max_incidents: 32,
            include_telemetry: true,
            alloc_spike_ratio: 8.0,
            alloc_spike_min_bytes: 1 << 20,
            ring_capacity: 64,
        }
    }
}

/// An [`EngineEventSink`] that writes incident records on anomalies. See
/// the module-level documentation for the trigger matrix and record
/// schema.
///
/// Construction order matters: the recorder is registered as a sink on
/// the engine *and* queries the engine back (for explanations and
/// health), so it holds a [`WeakSwitch`] installed after the engine is
/// built:
///
/// ```
/// use std::sync::Arc;
/// use cs_core::Switch;
/// use cs_telemetry::{FlightRecorder, FlightRecorderConfig, JsonlSink, MetricsRegistry};
///
/// let path = std::env::temp_dir().join(format!("cs-fr-doc-{}.jsonl", std::process::id()));
/// let sink = Arc::new(JsonlSink::create(&path, 10_000).unwrap());
/// let recorder = Arc::new(FlightRecorder::new(
///     Arc::clone(&sink),
///     MetricsRegistry::new(),
///     FlightRecorderConfig::default(),
/// ));
/// let engine = Switch::builder().event_sink(recorder.clone()).build();
/// recorder.attach(&engine);
/// assert_eq!(recorder.incidents_recorded(), 0);
/// # drop(engine); std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    sink: Arc<JsonlSink>,
    registry: Option<MetricsRegistry>,
    config: FlightRecorderConfig,
    engine: Mutex<WeakSwitch>,
    incidents: AtomicU64,
    seq: AtomicU64,
    // Edge-detection state for the polled triggers.
    last_disconnects: AtomicU64,
    over_budget: AtomicU64, // 0 = below budget, 1 = above (latched)
    // Allocation-spike state: last process alloc_bytes reading, the EWMA
    // of per-pass deltas, how many passes have been observed, and the
    // spike latch.
    last_alloc_bytes: AtomicU64,
    alloc_trailing: AtomicU64,
    alloc_passes: AtomicU64,
    alloc_spiking: AtomicU64, // 0 = normal, 1 = spiking (latched)
    // The most recent rendered incident lines, oldest first — the live
    // complement to the JSONL sink, bounded at ring_capacity (allocated up
    // front; eviction is pop_front).
    ring: Mutex<std::collections::VecDeque<String>>,
}

impl FlightRecorder {
    /// Creates a recorder writing incidents to `sink`. Pass the registry
    /// the engine's metrics feed into so incidents can carry a metrics
    /// snapshot ([`FlightRecorderConfig::include_telemetry`]).
    pub fn new(
        sink: Arc<JsonlSink>,
        registry: MetricsRegistry,
        config: FlightRecorderConfig,
    ) -> FlightRecorder {
        let ring = Mutex::new(std::collections::VecDeque::with_capacity(
            config.ring_capacity,
        ));
        FlightRecorder {
            sink,
            registry: Some(registry),
            config,
            engine: Mutex::new(WeakSwitch::dangling()),
            incidents: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            last_disconnects: AtomicU64::new(0),
            over_budget: AtomicU64::new(0),
            last_alloc_bytes: AtomicU64::new(0),
            alloc_trailing: AtomicU64::new(0),
            alloc_passes: AtomicU64::new(0),
            alloc_spiking: AtomicU64::new(0),
            ring,
        }
    }

    /// Installs the engine back-reference (non-owning). Until attached,
    /// incidents record with a `null` explanation and no health polling.
    pub fn attach(&self, engine: &cs_core::Switch) {
        *self.engine.lock() = engine.downgrade();
    }

    /// Incidents written so far.
    pub fn incidents_recorded(&self) -> u64 {
        self.incidents.load(Ordering::Relaxed)
    }

    /// The sink incidents are written into.
    pub fn sink(&self) -> &JsonlSink {
        &self.sink
    }

    /// The most recent incident records as rendered JSON lines, oldest
    /// first — at most [`FlightRecorderConfig::ring_capacity`] of them.
    /// This is what `cs-obs` serves as `/incidents`: the live in-memory
    /// complement to the JSONL sink on disk.
    pub fn recent_incidents(&self) -> Vec<String> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Records an incident fired by an *external* detector — a trigger the
    /// recorder cannot see from engine events alone. The `cs-obs` drift
    /// detector uses this for `phase_shift` incidents, attaching its
    /// evidence (site, dimension, observed value, EWMA band) as `detail`.
    /// Subject to the same [`FlightRecorderConfig::max_incidents`] cap as
    /// every internal trigger.
    pub fn record_external(&self, trigger: &str, detail: Json) {
        self.record_incident_with_detail(trigger, None, Some(detail));
    }

    /// Serializes and writes one incident. Heavyweight by design; only
    /// called once a trigger has fired.
    fn record_incident(&self, trigger: &str, event: Option<&EngineEvent>) {
        self.record_incident_with_detail(trigger, event, None);
    }

    fn record_incident_with_detail(
        &self,
        trigger: &str,
        event: Option<&EngineEvent>,
        detail: Option<Json>,
    ) {
        if self.incidents.load(Ordering::Relaxed) >= self.config.max_incidents {
            return;
        }
        let snap = cs_trace::snapshot();
        let overhead = snap.overhead();
        let explanation = event
            .and_then(|e| match e {
                EngineEvent::Rollback(r) => Some(r.context_id),
                EngineEvent::Quarantine(q) => Some(q.context_id),
                EngineEvent::Selection(s) => Some(s.context_id),
                _ => None,
            })
            .and_then(|site| self.engine.lock().upgrade()?.explain(site));
        let spans: Vec<Json> = snap
            .last_spans(self.config.span_window)
            .iter()
            .map(|s| {
                Json::object()
                    .field("thread", s.thread)
                    .field("site", s.site)
                    .field("phase", s.phase.name())
                    .field("depth", u64::from(s.depth))
                    .field("start_ns", s.start_ns)
                    .field("dur_ns", s.dur_ns)
            })
            .collect();
        let doc = Json::object()
            .field("kind", "incident")
            .field("seq", self.seq.fetch_add(1, Ordering::Relaxed))
            .field("trigger", trigger)
            .field("t_ns", snap.taken_ns)
            .field("event", event.map(event_to_json))
            .field("detail", detail)
            .field("explanation", explanation.as_ref().map(explanation_to_json))
            .field(
                "overhead",
                Json::object()
                    .field("framework_nanos", overhead.framework_nanos)
                    .field("tracer_nanos", overhead.tracer_nanos)
                    .field("app_nanos", overhead.app_nanos)
                    .field("app_ops", overhead.app_ops)
                    .field("ratio", overhead.ratio())
                    .field("pipeline_ratio", overhead.pipeline_ratio()),
            )
            .field("spans", Json::Array(spans))
            .field("heap", heap_to_json(&cs_heap::process_account()))
            .field(
                "telemetry",
                match (&self.registry, self.config.include_telemetry) {
                    (Some(r), true) => r.snapshot().to_json(),
                    _ => Json::Null,
                },
            );
        // The live ring keeps the incident even if the sink's disk write
        // fails — an operator scraping /incidents should not go blind
        // because the JSONL file did.
        if self.config.ring_capacity > 0 {
            let mut ring = self.ring.lock();
            if ring.len() == self.config.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(doc.render());
        }
        if self.sink.write_json(&doc) {
            self.incidents.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The process heap account frozen into each incident record.
fn heap_to_json(a: &cs_heap::HeapAccount) -> Json {
    Json::object()
        .field("alloc_count", a.alloc_count)
        .field("alloc_bytes", a.alloc_bytes)
        .field("dealloc_count", a.dealloc_count)
        .field("dealloc_bytes", a.dealloc_bytes)
        .field("realloc_count", a.realloc_count)
        .field("realloc_bytes", a.realloc_bytes)
        .field("live_bytes", a.live_bytes())
}

impl EngineEventSink for FlightRecorder {
    fn on_event(&self, event: &EngineEvent) {
        let trigger = match event {
            EngineEvent::Rollback(_) => "rollback",
            EngineEvent::Quarantine(_) => "quarantine",
            // A switch the contention term decided: the incident preserves
            // the full explanation (ratio, contention costs per candidate)
            // that justified changing the locking discipline.
            EngineEvent::Selection(s)
                if s.outcome == cs_core::SelectionOutcome::Switched && s.contention_driven =>
            {
                "contention_switch"
            }
            // A switch the allocation dimension decided: the incident
            // preserves the alloc/energy cost columns and the measured
            // bytes-per-op that justified trading time for churn.
            EngineEvent::Selection(s)
                if s.outcome == cs_core::SelectionOutcome::Switched && s.alloc_driven =>
            {
                "alloc_switch"
            }
            // Corruption survived a restart: the snapshot loaded, but some
            // records were quarantined. The incident preserves the salvage
            // account alongside whatever the pipeline was doing.
            EngineEvent::WarmStart(w) if w.records_quarantined > 0 => "state_quarantine",
            // A snapshot site record failed per-site validation (stale
            // fingerprint / unknown variant) — that site cold-started.
            EngineEvent::WarmStartSite(s)
                if s.outcome != cs_core::WarmStartSiteOutcome::Applied =>
            {
                "warm_start_reject"
            }
            _ => return,
        };
        self.record_incident(trigger, Some(event));
    }

    fn on_analysis_pass(&self, _duration: Duration) {
        let overhead = cs_trace::snapshot().overhead();
        let was_over = self.over_budget.load(Ordering::Relaxed) == 1;
        // Only judge the ratio once application time has been credited:
        // before the first flush the denominator is empty and any recorded
        // span would push the ratio to 1.0, which is startup noise, not an
        // anomaly.
        let is_over =
            overhead.app_nanos > 0 && overhead.ratio() > self.config.overhead_budget;
        self.over_budget
            .store(u64::from(is_over), Ordering::Relaxed);
        if is_over && !was_over {
            self.record_incident("overhead_budget", None);
        }
        if let Some(engine) = self.engine.lock().upgrade() {
            let disconnects = engine.sink_disconnects();
            let before = self.last_disconnects.swap(disconnects, Ordering::Relaxed);
            if disconnects > before {
                self.record_incident("sink_disconnect", None);
            }
        }
        // Allocation-spike detection against the process-wide counting
        // ledger. Pass 0 establishes the byte baseline, pass 1 seeds the
        // trailing average with the first measured delta; judgment starts
        // at pass 2. The trailing EWMA folds the spike in *after* judging
        // it, so one burst cannot lift its own baseline — and the latch
        // releases only once a pass comes back under the ratio.
        let alloc_now = cs_heap::process_account().alloc_bytes;
        let prev = self.last_alloc_bytes.swap(alloc_now, Ordering::Relaxed);
        let passes = self.alloc_passes.fetch_add(1, Ordering::Relaxed);
        let delta = alloc_now.saturating_sub(prev);
        match passes {
            0 => {}
            1 => self.alloc_trailing.store(delta, Ordering::Relaxed),
            _ => {
                let trailing = self.alloc_trailing.load(Ordering::Relaxed);
                let spiking = delta >= self.config.alloc_spike_min_bytes
                    && delta as f64 > self.config.alloc_spike_ratio * (trailing as f64).max(1.0);
                let was = self.alloc_spiking.swap(u64::from(spiking), Ordering::Relaxed) == 1;
                if spiking && !was {
                    self.record_incident("alloc_spike", None);
                }
                let next = ((trailing as u128 * 7 + delta as u128) / 8) as u64;
                self.alloc_trailing.store(next, Ordering::Relaxed);
            }
        }
    }

    fn name(&self) -> &str {
        "flight-recorder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cs-flight-{tag}-{}.jsonl", std::process::id()))
    }

    fn recorder(path: &std::path::Path, config: FlightRecorderConfig) -> Arc<FlightRecorder> {
        let sink = Arc::new(JsonlSink::create(path, 1_000).unwrap());
        Arc::new(FlightRecorder::new(sink, MetricsRegistry::new(), config))
    }

    #[test]
    fn rollback_event_produces_parseable_incident() {
        let path = tmp("rollback");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: true,
                ..FlightRecorderConfig::default()
            },
        );
        rec.on_event(&EngineEvent::Rollback(cs_core::RollbackEvent {
            context_id: 9,
            context_name: "orders".into(),
            abstraction: cs_collections::Abstraction::Map,
            from: "hash".into(),
            to: "chained".into(),
            predicted_ratio: 0.7,
            realized_ratio: 1.9,
            round: 4,
        }));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let content = std::fs::read_to_string(&path).unwrap();
        let line = content.lines().next().expect("one incident line");
        let doc = Json::parse(line).expect("incident is valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("incident"));
        assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("rollback"));
        assert_eq!(
            doc.get("event")
                .and_then(|e| e.get("event"))
                .and_then(Json::as_str),
            Some("rollback")
        );
        assert!(doc.get("overhead").is_some());
        assert!(doc.get("spans").and_then(Json::as_array).is_some());
        // No engine attached: explanation degrades to null, nothing panics.
        assert_eq!(doc.get("explanation"), Some(&Json::Null));
        // Every incident freezes the heap account; this binary never
        // installed the counting allocator, so the ledgers read zero.
        let heap = doc.get("heap").expect("heap account attached");
        assert_eq!(heap.get("alloc_bytes").and_then(Json::as_u64), Some(0));
        assert_eq!(heap.get("live_bytes").and_then(Json::as_u64), Some(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incident_cap_holds_and_non_triggers_are_ignored() {
        let path = tmp("cap");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                max_incidents: 2,
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        rec.on_event(&EngineEvent::ModelFallback(cs_core::ModelFallbackEvent {
            file: "x".into(),
            reason: "y".into(),
        }));
        assert_eq!(rec.incidents_recorded(), 0, "fallback is not a trigger");
        for _ in 0..5 {
            rec.on_event(&EngineEvent::Quarantine(cs_core::QuarantineEvent {
                context_id: 1,
                context_name: "q".into(),
                abstraction: cs_collections::Abstraction::List,
                candidate: "array".into(),
                until_round: 9,
                strikes: 1,
                round: 2,
            }));
        }
        assert_eq!(rec.incidents_recorded(), 2, "capped at max_incidents");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_triggers_fire_only_on_anomalies() {
        let path = tmp("warm");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        // A clean warm start is not an incident.
        rec.on_event(&EngineEvent::WarmStart(cs_core::WarmStartEvent {
            source: "state.css".into(),
            sites_in_snapshot: 3,
            models_in_snapshot: 3,
            records_loaded: 7,
            records_quarantined: 0,
            duplicates_dropped: 0,
            note: String::new(),
        }));
        // Nor is a record applied successfully.
        rec.on_event(&EngineEvent::WarmStartSite(cs_core::WarmStartSiteEvent {
            context_id: 1,
            context_name: "orders".into(),
            abstraction: cs_collections::Abstraction::List,
            snapshot_kind: "hasharray".into(),
            outcome: cs_core::WarmStartSiteOutcome::Applied,
            detail: "resumed".into(),
        }));
        assert_eq!(rec.incidents_recorded(), 0);
        // Salvaged-with-quarantine and per-site rejection both are.
        rec.on_event(&EngineEvent::WarmStart(cs_core::WarmStartEvent {
            source: "state.css".into(),
            sites_in_snapshot: 3,
            models_in_snapshot: 3,
            records_loaded: 6,
            records_quarantined: 1,
            duplicates_dropped: 0,
            note: "1 corrupt record(s) quarantined".into(),
        }));
        rec.on_event(&EngineEvent::WarmStartSite(cs_core::WarmStartSiteEvent {
            context_id: 2,
            context_name: "sessions".into(),
            abstraction: cs_collections::Abstraction::Set,
            snapshot_kind: "array".into(),
            outcome: cs_core::WarmStartSiteOutcome::StaleFingerprint,
            detail: "default drifted".into(),
        }));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 2);
        let content = std::fs::read_to_string(&path).unwrap();
        let triggers: Vec<String> = content
            .lines()
            .map(|l| {
                Json::parse(l)
                    .expect("incident parses")
                    .get("trigger")
                    .and_then(Json::as_str)
                    .expect("trigger field")
                    .to_owned()
            })
            .collect();
        assert_eq!(triggers, ["state_quarantine", "warm_start_reject"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn contention_driven_switch_records_an_incident_with_the_explanation() {
        let path = tmp("contention");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        let explanation = cs_core::SelectionExplanation {
            context_id: 3,
            context_name: "hot-cache#strategy".into(),
            abstraction: cs_collections::Abstraction::Map,
            rule: "R_time".into(),
            round: 11,
            current: "lockstriped".into(),
            current_primary_cost: 65_000.0,
            current_contention_cost: 45_000.0,
            contention_ratio: 0.5,
            contention_driven: true,
            current_alloc_cost: 0.0,
            current_energy_cost: 0.0,
            alloc_bytes_per_op: 0.0,
            alloc_driven: false,
            candidates: vec![],
            winner: Some("lockfree".into()),
            winning_margin: 0.37,
            outcome: cs_core::SelectionOutcome::Switched,
        };
        // A contention-free switch is routine adaptation, not an incident.
        rec.on_event(&EngineEvent::Selection(cs_core::SelectionExplanation {
            contention_driven: false,
            ..explanation.clone()
        }));
        // An audited pass that keeps the variant is not one either.
        rec.on_event(&EngineEvent::Selection(cs_core::SelectionExplanation {
            outcome: cs_core::SelectionOutcome::NoCandidate,
            winner: None,
            ..explanation.clone()
        }));
        assert_eq!(rec.incidents_recorded(), 0);
        rec.on_event(&EngineEvent::Selection(explanation));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let content = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(content.lines().next().unwrap()).expect("valid incident");
        assert_eq!(
            doc.get("trigger").and_then(Json::as_str),
            Some("contention_switch")
        );
        let event = doc.get("event").expect("event attached");
        assert_eq!(
            event.get("contention_driven"),
            Some(&Json::Bool(true)),
            "the incident must preserve the contention inputs: {event:?}"
        );
        assert_eq!(event.get("contention_ratio"), Some(&Json::from(0.5)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alloc_driven_switch_records_an_alloc_switch_incident() {
        let path = tmp("allocswitch");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        let explanation = cs_core::SelectionExplanation {
            context_id: 5,
            context_name: "event-log#buffer".into(),
            abstraction: cs_collections::Abstraction::List,
            rule: "R_alloc_rate".into(),
            round: 7,
            current: "linked".into(),
            current_primary_cost: 40_000.0,
            current_contention_cost: 0.0,
            contention_ratio: 0.0,
            contention_driven: false,
            current_alloc_cost: 40_000.0,
            current_energy_cost: 52_000.0,
            alloc_bytes_per_op: 41.5,
            alloc_driven: true,
            candidates: vec![],
            winner: Some("array".into()),
            winning_margin: 0.7,
            outcome: cs_core::SelectionOutcome::Switched,
        };
        // A time-driven switch is routine adaptation.
        rec.on_event(&EngineEvent::Selection(cs_core::SelectionExplanation {
            alloc_driven: false,
            ..explanation.clone()
        }));
        assert_eq!(rec.incidents_recorded(), 0);
        rec.on_event(&EngineEvent::Selection(explanation));
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let content = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(content.lines().next().unwrap()).expect("valid incident");
        assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("alloc_switch"));
        let event = doc.get("event").expect("event attached");
        assert_eq!(event.get("alloc_driven"), Some(&Json::Bool(true)));
        assert_eq!(event.get("alloc_bytes_per_op").and_then(Json::as_f64), Some(41.5));
        assert_eq!(event.get("current_alloc_cost").and_then(Json::as_f64), Some(40_000.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alloc_spike_stays_quiet_without_a_counting_allocator() {
        // This binary has no counting allocator: every per-pass delta reads
        // zero, so no amount of polling may fire an alloc_spike (the real
        // firing path is exercised by the alloc_spike example binary).
        let path = tmp("allocspike");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                alloc_spike_min_bytes: 0,
                ..FlightRecorderConfig::default()
            },
        );
        for _ in 0..6 {
            rec.on_analysis_pass(Duration::from_micros(1));
        }
        assert_eq!(rec.incidents_recorded(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_phase_shift_incident_carries_detail_and_lands_in_the_ring() {
        let path = tmp("phase");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                ..FlightRecorderConfig::default()
            },
        );
        rec.record_external(
            "phase_shift",
            Json::object()
                .field("site", "session-cache")
                .field("dimension", "read_fraction")
                .field("value", 0.2)
                .field("mean", 0.9),
        );
        rec.sink().flush().unwrap();
        assert_eq!(rec.incidents_recorded(), 1);
        let ring = rec.recent_incidents();
        assert_eq!(ring.len(), 1);
        let doc = Json::parse(&ring[0]).expect("ring line is valid JSON");
        assert_eq!(doc.get("trigger").and_then(Json::as_str), Some("phase_shift"));
        let detail = doc.get("detail").expect("detail attached");
        assert_eq!(detail.get("site").and_then(Json::as_str), Some("session-cache"));
        assert_eq!(detail.get("value").and_then(Json::as_f64), Some(0.2));
        // The same record also reached the sink on disk.
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().next(), Some(ring[0].as_str()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incident_ring_is_bounded_and_evicts_oldest_first() {
        let path = tmp("ring");
        let rec = recorder(
            &path,
            FlightRecorderConfig {
                include_telemetry: false,
                max_incidents: 100,
                ring_capacity: 3,
                ..FlightRecorderConfig::default()
            },
        );
        for i in 0..5u64 {
            rec.record_external("phase_shift", Json::object().field("n", i));
        }
        let ring = rec.recent_incidents();
        assert_eq!(ring.len(), 3, "ring holds only the newest 3");
        let ns: Vec<u64> = ring
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("detail")
                    .and_then(|d| d.get("n"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(ns, [2, 3, 4], "oldest evicted first");
        // The external path honours the incident cap too.
        let capped = recorder(
            &tmp("ringcap"),
            FlightRecorderConfig {
                include_telemetry: false,
                max_incidents: 1,
                ..FlightRecorderConfig::default()
            },
        );
        capped.record_external("phase_shift", Json::object());
        capped.record_external("phase_shift", Json::object());
        assert_eq!(capped.incidents_recorded(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp("ringcap")).ok();
    }

    #[test]
    fn disconnect_poll_is_edge_detected() {
        let path = tmp("edge");
        let rec = recorder(&path, FlightRecorderConfig::default());
        let engine = cs_core::Switch::builder().build();
        rec.attach(&engine);
        // No disconnects yet: polling fires nothing.
        rec.on_analysis_pass(Duration::from_micros(1));
        rec.on_analysis_pass(Duration::from_micros(1));
        assert_eq!(rec.incidents_recorded(), 0);
        std::fs::remove_file(&path).ok();
    }
}
