//! Prometheus text exposition (format version 0.0.4) and a strict
//! validator for it.
//!
//! The renderer turns a [`TelemetrySnapshot`] into the plain-text format
//! every Prometheus-compatible scraper accepts: `# HELP` / `# TYPE`
//! comments followed by one sample per line, histograms expanded into
//! cumulative `_bucket{le=…}` series plus `_sum` and `_count`. The
//! validator re-parses that grammar from scratch — shared code would
//! let one bug hide another — and is wired into CI so a malformed
//! exposition fails the build, not the scrape. Metadata is mandatory:
//! every sampled family must carry both `# HELP` and `# TYPE`, so the
//! renderer emits a HELP line even for families registered with empty
//! help text.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::metrics::{FamilySnapshot, TelemetrySnapshot, ValueSnapshot};

fn write_help_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_label_value_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders `{k="v",…}`; `extra` appends one more pair (used for `le`).
fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        write_label_value_escaped(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        write_label_value_escaped(out, v);
        out.push('"');
    }
    out.push('}');
}

fn format_bound(bound: f64) -> String {
    format!("{bound}")
}

fn render_family(out: &mut String, family: &FamilySnapshot) {
    // HELP is unconditional: the validator requires metadata for every
    // sampled family, so a family registered with empty help still gets
    // its (bare) HELP line.
    out.push_str("# HELP ");
    out.push_str(&family.name);
    if !family.help.is_empty() {
        out.push(' ');
        write_help_escaped(out, &family.help);
    }
    out.push('\n');
    let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
    for series in &family.series {
        match &series.value {
            ValueSnapshot::Counter(v) => {
                out.push_str(&family.name);
                write_labels(out, &series.labels, None);
                let _ = writeln!(out, " {v}");
            }
            ValueSnapshot::Gauge(v) => {
                out.push_str(&family.name);
                write_labels(out, &series.labels, None);
                let _ = writeln!(out, " {v}");
            }
            ValueSnapshot::FloatGauge(v) => {
                out.push_str(&family.name);
                write_labels(out, &series.labels, None);
                let _ = writeln!(out, " {v}");
            }
            ValueSnapshot::Histogram(h) => {
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    out.push_str(&family.name);
                    out.push_str("_bucket");
                    write_labels(out, &series.labels, Some(("le", &format_bound(*bound))));
                    let _ = writeln!(out, " {cumulative}");
                }
                out.push_str(&family.name);
                out.push_str("_bucket");
                write_labels(out, &series.labels, Some(("le", "+Inf")));
                let _ = writeln!(out, " {}", h.count);
                out.push_str(&family.name);
                out.push_str("_sum");
                write_labels(out, &series.labels, None);
                let _ = writeln!(out, " {}", h.sum);
                out.push_str(&family.name);
                out.push_str("_count");
                write_labels(out, &series.labels, None);
                let _ = writeln!(out, " {}", h.count);
            }
        }
    }
}

impl TelemetrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). The output always passes
    /// [`validate_prometheus_text`].
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            render_family(&mut out, family);
        }
        out
    }
}

/// Validates a Prometheus text exposition: comment structure, metric and
/// label grammar, parseable sample values, `# TYPE` at most once per family
/// and before that family's samples, **required metadata** (every sampled
/// family must be declared with both `# TYPE` and `# HELP` — an untyped
/// exposition makes a scraper guess at rate semantics), no duplicate
/// `(name, labelset)` series, and — for every declared histogram that has
/// samples — complete child sets: each labelset must carry an
/// `le="+Inf"` bucket, a `_sum`, and a `_count` (a scraper quietly
/// computes garbage rates from a histogram missing any of them). Returns
/// every violation with its 1-based line number (metadata and completeness
/// violations, detectable only at end of input, carry the family instead).
///
/// # Errors
///
/// A `Vec` with one entry per violation (never empty on `Err`).
///
/// # Examples
///
/// ```
/// use cs_telemetry::validate_prometheus_text;
///
/// let text = concat!(
///     "# HELP cs_up Whether the engine is up.\n",
///     "# TYPE cs_up gauge\n",
///     "cs_up 1\n",
/// );
/// assert!(validate_prometheus_text(text).is_ok());
/// // Metadata is mandatory: a bare sample is rejected.
/// assert!(validate_prometheus_text("cs_up 1\n").is_err());
/// assert!(validate_prometheus_text("2bad_name 1\n").is_err());
/// ```
pub fn validate_prometheus_text(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let mut typed: HashSet<String> = HashSet::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut histogram_families: HashSet<String> = HashSet::new();
    // BTreeSet so the end-of-input metadata errors come out in
    // deterministic order.
    let mut sampled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // Histogram children observed so far, keyed by (family, labelset
    // without `le`): [saw +Inf bucket, saw _sum, saw _count]. BTreeMap so
    // the post-loop completeness errors come out in deterministic order.
    let mut hist_children: std::collections::BTreeMap<(String, String), [bool; 3]> =
        std::collections::BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !is_metric_name(name) {
                    errors.push(format!("line {lineno}: TYPE for invalid name {name:?}"));
                    continue;
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {lineno}: unknown TYPE {kind:?} for {name}"));
                }
                if !typed.insert(name.to_owned()) {
                    errors.push(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                if kind == "histogram" {
                    histogram_families.insert(name.to_owned());
                }
                if sampled.contains(name) {
                    errors.push(format!(
                        "line {lineno}: TYPE for {name} after its samples"
                    ));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !is_metric_name(name) {
                    errors.push(format!("line {lineno}: HELP for invalid name {name:?}"));
                } else {
                    helped.insert(name.to_owned());
                }
            }
            // Other comments are free-form and always legal.
            continue;
        }
        match parse_sample(line) {
            Ok((name, labelset)) => {
                let base = histogram_base(&name, &typed);
                sampled.insert(base.to_owned());
                let series_key = format!("{name}{{{labelset}}}");
                if !seen_series.insert(series_key) {
                    errors.push(format!(
                        "line {lineno}: duplicate series {name}{{{labelset}}}"
                    ));
                }
                if base != name && histogram_families.contains(base) {
                    let flags = hist_children
                        .entry((base.to_owned(), strip_le_label(&labelset)))
                        .or_default();
                    match &name[base.len()..] {
                        "_bucket" if labelset.split(',').any(|kv| kv == "le=\"+Inf\"") => {
                            flags[0] = true;
                        }
                        "_sum" => flags[1] = true,
                        "_count" => flags[2] = true,
                        _ => {}
                    }
                }
            }
            Err(why) => errors.push(format!("line {lineno}: {why}")),
        }
    }
    // Metadata requirement, judged at end of input: every family that had
    // samples must have declared both TYPE and HELP somewhere in the
    // exposition (TYPE placement relative to samples is checked above).
    for family in &sampled {
        if !typed.contains(family) {
            errors.push(format!("family {family} has samples but no # TYPE metadata"));
        }
        if !helped.contains(family) {
            errors.push(format!("family {family} has samples but no # HELP metadata"));
        }
    }
    for ((family, labels), &[saw_inf, saw_sum, saw_count]) in &hist_children {
        let at = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        if !saw_inf {
            errors.push(format!(
                "histogram {family}{at} has no le=\"+Inf\" bucket"
            ));
        }
        if !saw_sum {
            errors.push(format!("histogram {family}{at} is missing {family}_sum"));
        }
        if !saw_count {
            errors.push(format!("histogram {family}{at} is missing {family}_count"));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Drops the `le` pair from a canonical labelset, so bucket samples group
/// with their `_sum`/`_count` siblings.
fn strip_le_label(labelset: &str) -> String {
    labelset
        .split(',')
        .filter(|kv| !kv.starts_with("le="))
        .collect::<Vec<_>>()
        .join(",")
}

/// Maps `x_bucket`/`x_sum`/`x_count` back to the histogram family `x` when
/// `x` was declared via `# TYPE x histogram`; otherwise the sample name is
/// its own family.
fn histogram_base<'a>(name: &'a str, typed: &HashSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if typed.contains(base) {
                return base;
            }
        }
    }
    name
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one sample line; returns `(metric name, canonical labelset)`.
fn parse_sample(line: &str) -> Result<(String, String), String> {
    let mut rest = line;
    let name_end = rest
        .find(['{', ' '])
        .ok_or_else(|| format!("sample has no value: {line:?}"))?;
    let name = &rest[..name_end];
    if !is_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    rest = &rest[name_end..];
    let mut labels: Vec<(String, String)> = Vec::new();
    if let Some(after_brace) = rest.strip_prefix('{') {
        rest = after_brace;
        loop {
            rest = rest.trim_start_matches(',');
            if let Some(after) = rest.strip_prefix('}') {
                rest = after;
                break;
            }
            let eq = rest
                .find('=')
                .ok_or_else(|| format!("label without '=' in {line:?}"))?;
            let label = &rest[..eq];
            if !is_label_name(label) {
                return Err(format!("invalid label name {label:?}"));
            }
            rest = rest[eq + 1..]
                .strip_prefix('"')
                .ok_or_else(|| format!("label value for {label} not quoted"))?;
            let mut value = String::new();
            let mut chars = rest.char_indices();
            let mut consumed = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => {
                        consumed = Some(i + 1);
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        other => {
                            return Err(format!(
                                "bad escape {:?} in label value",
                                other.map(|(_, c)| c)
                            ))
                        }
                    },
                    c => value.push(c),
                }
            }
            let consumed =
                consumed.ok_or_else(|| format!("unterminated label value in {line:?}"))?;
            rest = &rest[consumed..];
            labels.push((label.to_owned(), value));
        }
    }
    let rest = rest.trim_start();
    let mut fields = rest.split_whitespace();
    let value = fields
        .next()
        .ok_or_else(|| format!("sample has no value: {line:?}"))?;
    let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !value_ok {
        return Err(format!("unparseable sample value {value:?}"));
    }
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparseable timestamp {ts:?}"));
        }
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage in {line:?}"));
    }
    let mut canonical: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    canonical.sort();
    Ok((name.to_owned(), canonical.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry
            .counter("cs_transitions_total", "Transitions.", &[("site", "a\"b")])
            .add(3);
        registry.gauge("cs_degraded", "Degraded flag.", &[]).set(0);
        let h = registry.histogram(
            "cs_pass_seconds",
            "Pass duration.",
            &[],
            &[0.001, 0.1],
        );
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(3.0);
        registry
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let text = sample_registry().snapshot().to_prometheus_text();
        assert!(
            validate_prometheus_text(&text).is_ok(),
            "invalid exposition:\n{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = sample_registry().snapshot().to_prometheus_text();
        assert!(text.contains("cs_pass_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("cs_pass_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("cs_pass_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cs_pass_seconds_count 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let text = sample_registry().snapshot().to_prometheus_text();
        assert!(text.contains(r#"cs_transitions_total{site="a\"b"} 3"#));
    }

    #[test]
    fn validator_rejects_duplicate_series() {
        let text = "# TYPE cs_x counter\ncs_x{a=\"1\"} 1\ncs_x{a=\"1\"} 2\n";
        let errors = validate_prometheus_text(text).unwrap_err();
        assert!(errors[0].contains("duplicate series"));
    }

    #[test]
    fn validator_rejects_type_after_samples() {
        let text = "cs_x 1\n# TYPE cs_x counter\n";
        let errors = validate_prometheus_text(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("after its samples")));
    }

    #[test]
    fn validator_rejects_bad_names_and_values() {
        assert!(validate_prometheus_text("2bad 1\n").is_err());
        assert!(validate_prometheus_text("ok one\n").is_err());
        assert!(validate_prometheus_text("ok{0l=\"x\"} 1\n").is_err());
        assert!(validate_prometheus_text("ok{l=\"x} 1\n").is_err());
    }

    #[test]
    fn validator_accepts_inf_and_timestamps() {
        let text = "# HELP x_bucket Raw bucket counter.\n\
                    # TYPE x_bucket counter\n\
                    x_bucket{le=\"+Inf\"} 4 1700000000\n";
        assert!(validate_prometheus_text(text).is_ok());
    }

    #[test]
    fn validator_requires_type_and_help_metadata() {
        // A bare sample is no longer a legal exposition.
        let errors = validate_prometheus_text("cs_x 1\n").unwrap_err();
        assert!(errors.iter().any(|e| e.contains("no # TYPE")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no # HELP")), "{errors:?}");
        // TYPE alone is not enough...
        let errors = validate_prometheus_text("# TYPE cs_x counter\ncs_x 1\n").unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("no # HELP"), "{errors:?}");
        // ...nor is HELP alone...
        let errors = validate_prometheus_text("# HELP cs_x X.\ncs_x 1\n").unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("no # TYPE"), "{errors:?}");
        // ...but both together are.
        let ok = "# HELP cs_x X.\n# TYPE cs_x counter\ncs_x 1\n";
        assert!(validate_prometheus_text(ok).is_ok());
        // A declared-but-never-sampled family needs no metadata pairing.
        let declared_only = "# TYPE cs_idle gauge\n# HELP cs_x X.\n# TYPE cs_x counter\ncs_x 1\n";
        assert!(validate_prometheus_text(declared_only).is_ok());
    }

    #[test]
    fn empty_help_still_renders_a_help_line() {
        let registry = MetricsRegistry::new();
        registry.counter("cs_bare_total", "", &[]).inc();
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("# HELP cs_bare_total\n"), "{text}");
        validate_prometheus_text(&text).expect("valid exposition");
    }

    #[test]
    fn validator_rejects_histogram_missing_inf_bucket() {
        let text = "# HELP h H.\n\
                    # TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 1\n\
                    h_sum 0.05\n\
                    h_count 1\n";
        let errors = validate_prometheus_text(text).unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("no le=\"+Inf\" bucket"), "{errors:?}");
    }

    #[test]
    fn validator_rejects_histogram_missing_sum_or_count() {
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\n";
        let errors = validate_prometheus_text(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("missing h_sum")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("missing h_count")), "{errors:?}");

        let no_count = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\n";
        let errors = validate_prometheus_text(no_count).unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("missing h_count"));
    }

    #[test]
    fn histogram_completeness_is_per_labelset() {
        // The "a" labelset is complete; "b" lacks its +Inf bucket and
        // must be called out on its own.
        let text = "# HELP h H.\n\
                    # TYPE h histogram\n\
                    h_bucket{site=\"a\",le=\"+Inf\"} 2\n\
                    h_sum{site=\"a\"} 1.0\n\
                    h_count{site=\"a\"} 2\n\
                    h_bucket{site=\"b\",le=\"0.1\"} 1\n\
                    h_sum{site=\"b\"} 0.5\n\
                    h_count{site=\"b\"} 1\n";
        let errors = validate_prometheus_text(text).unwrap_err();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("site=\"b\""), "{errors:?}");
        assert!(errors[0].contains("+Inf"), "{errors:?}");
    }

    #[test]
    fn undeclared_bucket_samples_are_not_histogram_children() {
        // Without a `# TYPE x histogram` declaration the suffix match is
        // meaningless — `x_bucket` is just a metric with an odd name, and
        // no histogram-completeness demand applies.
        let text = "# HELP x_bucket X.\n# TYPE x_bucket gauge\nx_bucket{le=\"0.5\"} 1\n";
        assert!(validate_prometheus_text(text).is_ok());
        assert!(validate_prometheus_text(
            "# HELP x_sum X.\n# TYPE x_sum counter\nx_sum 3\n"
        )
        .is_ok());
    }

    #[test]
    fn histogram_children_do_not_collide_with_family_type() {
        // _bucket/_sum/_count of a declared histogram must not be flagged
        // as samples preceding their own TYPE line.
        let text = sample_registry().snapshot().to_prometheus_text();
        let doubled = format!("{text}{text}");
        let errors = validate_prometheus_text(&doubled).unwrap_err();
        assert!(
            errors
                .iter()
                .all(|e| e.contains("duplicate") || e.contains("after its samples")),
            "only duplication errors expected, got {errors:?}"
        );
    }
}
