//! Scrape-under-load: the operational plane serving raw-TCP scrapes while
//! a 4-thread workload hammers the runtime it observes.
//!
//! Three invariants, checked end to end:
//! 1. every `/metrics` response passes the workspace's exposition
//!    validator (metadata and histogram grammar included),
//! 2. the `cs_runtime_site_ops_total` sum is monotone across consecutive
//!    scrapes (counters never step backwards mid-load), and
//! 3. zero ops are lost: after the workload joins and flushes, the scraped
//!    totals equal the workload's own exact per-op accounting.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use cs_collections::MapKind;
use cs_core::Switch;
use cs_obs::RuntimeObsExt;
use cs_runtime::Runtime;
use cs_telemetry::validate_prometheus_text;
use cs_workloads::{run_concurrent_load, ConcurrentLoad};

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: load-test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Sum of every `cs_runtime_site_ops_total` sample in an exposition page.
fn scraped_ops_total(body: &str) -> u64 {
    body.lines()
        .filter(|l| l.starts_with("cs_runtime_site_ops_total{"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn scrapes_stay_valid_and_monotone_under_concurrent_load() {
    let rt = Runtime::new(Switch::builder().build());
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "load-map");
    let obs = rt.serve_obs("127.0.0.1:0").expect("bind obs server");
    let addr = obs.local_addr().expect("server address");

    let load = ConcurrentLoad {
        threads: 4,
        ops_per_thread: 50_000,
        ..ConcurrentLoad::default()
    };

    // Drive the workload on a helper thread while this thread scrapes.
    let loader = std::thread::spawn({
        let map = map.clone();
        move || run_concurrent_load(&map, load)
    });

    let mut last_total = 0u64;
    let mut scrapes = 0u32;
    while !loader.is_finished() {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200, "scrape failed mid-load:\n{body}");
        validate_prometheus_text(&body)
            .unwrap_or_else(|e| panic!("mid-load exposition invalid: {e:?}"));
        let total = scraped_ops_total(&body);
        assert!(
            total >= last_total,
            "ops total went backwards: {last_total} -> {total}"
        );
        last_total = total;
        scrapes += 1;
        // The /health endpoint must answer under the same load.
        let (status, _) = get(addr, "/health");
        assert_eq!(status, 200, "healthy engine answered 503 under load");
    }
    let report = loader.join().expect("workload thread");

    // Final accounting: flush everything, scrape once more, compare exact.
    rt.flush_thread();
    rt.analyze_now();
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    validate_prometheus_text(&body).expect("final exposition validates");
    let final_total = scraped_ops_total(&body);
    assert!(final_total >= last_total, "final scrape is the newest");
    assert_eq!(
        final_total, report.total_ops,
        "scraped op total must equal the workload's exact accounting \
         (zero lost ops); {scrapes} mid-load scrapes"
    );
    let expected: u64 = report.per_op_totals.iter().sum();
    assert_eq!(report.total_ops, expected, "report self-consistent");

    // The plane's self-metrics saw this scrape traffic.
    assert!(
        body.contains("cs_obs_scrapes_total{endpoint=\"metrics\"}"),
        "self-metrics on the page:\n{body}"
    );
    obs.shutdown();
}

#[test]
fn backlog_overflow_sheds_with_503_not_memory() {
    // One worker, backlog of one: a slow-to-connect burst must produce
    // some 503s (shed at the accept thread) but every accepted request
    // still answers correctly.
    let rt = Runtime::new(Switch::builder().build());
    let obs = cs_obs::ObsBuilder::new()
        .addr("127.0.0.1:0")
        .workers(1)
        .backlog(1)
        .manual_sampler()
        .spawn_runtime(&rt)
        .expect("bind");
    let addr = obs.local_addr().expect("addr");

    let mut oks = 0u32;
    let mut sheds = 0u32;
    let handles: Vec<_> = (0..16)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, _) = get(addr, "/health");
                status
            })
        })
        .collect();
    for h in handles {
        match h.join().expect("client thread") {
            200 => oks += 1,
            503 => sheds += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(oks + sheds, 16);
    assert!(oks > 0, "at least some requests served");
    obs.shutdown();
}
