//! The phase-shift detector: EWMA bands over each site's op-mix and
//! allocation rate, fired as `phase_shift` incidents.
//!
//! The paper's core premise is that workloads have *phases* — the
//! collection that wins during a load phase loses during a lookup phase —
//! and the engine re-selects when the observed profile moves. This module
//! is the operational mirror of that premise: it watches the same
//! observables the selector consumes (op-mix fractions and allocation
//! bytes per op, per site) and raises an incident the moment a site's
//! behaviour breaks out of its recent band, so an operator sees the phase
//! change at the same time the engine does — or sees one the engine's
//! round cadence has not reacted to yet.
//!
//! Mechanics, per site and per dimension: an EWMA of the value and an EWMA
//! of its absolute deviation. A frame whose value lands further than
//! `max(band_k × deviation, floor)` from the mean fires once
//! (edge-latched); while breached the band keeps absorbing observations,
//! so it re-converges onto the new regime and re-arms — a second genuine
//! shift can fire again, but a sustained new normal cannot ring forever.
//! Frames with fewer than `min_frame_ops` new ops are accumulated rather
//! than scored, so idle sites neither fire nor decay their bands.
//!
//! This module is on the sampler path and is covered by the analyzer's
//! `no-blocking-io-in-sampler-path` lint: no filesystem or socket tokens
//! may appear here.

use std::collections::HashMap;

use crate::window::{trend_point, SiteSample};

/// The banded dimensions, in reporting order: the four op-mix fractions
/// (`OpKind::index()` order) then the allocation rate.
pub const DRIFT_DIMENSIONS: [&str; 5] = [
    "populate_fraction",
    "contains_fraction",
    "iterate_fraction",
    "middle_fraction",
    "alloc_bytes_per_op",
];

/// Tuning for the [`DriftDetector`].
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Scored frames a site must accumulate before its bands arm. Below
    /// this the detector only learns.
    pub warmup_frames: u32,
    /// Band half-width as a multiple of the EWMA mean absolute deviation.
    pub band_k: f64,
    /// Minimum new ops for a frame to be scored; smaller deltas accumulate
    /// into the next frame instead.
    pub min_frame_ops: u64,
    /// Absolute band floor for the op-mix fractions, so a near-constant
    /// mix (deviation ~0) does not fire on measurement jitter.
    pub min_band: f64,
    /// Absolute band floor for `alloc_bytes_per_op`, in bytes.
    pub alloc_min_band: f64,
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    pub alpha: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            warmup_frames: 8,
            band_k: 6.0,
            min_frame_ops: 64,
            min_band: 0.10,
            alloc_min_band: 32.0,
            alpha: 0.2,
        }
    }
}

/// One fired drift: site, dimension, and the evidence (observed value vs
/// the band it escaped). This is the `detail` payload of the
/// `phase_shift` flight-recorder incident.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// Engine-assigned site id.
    pub site_id: u64,
    /// Site label.
    pub site: String,
    /// Which dimension broke band (one of [`DRIFT_DIMENSIONS`]).
    pub dimension: &'static str,
    /// The value that escaped.
    pub observed: f64,
    /// The band centre at firing time.
    pub mean: f64,
    /// The band half-width at firing time.
    pub band: f64,
    /// Ops in the scored frame.
    pub ops_in_frame: u64,
}

/// EWMA mean + EWMA mean-absolute-deviation with an edge latch.
#[derive(Debug, Clone, Default)]
struct Band {
    mean: f64,
    dev: f64,
    scored: u32,
    breached: bool,
}

impl Band {
    /// Scores one observation; returns `Some((mean, half_width))` exactly
    /// when the value *newly* crosses out of band.
    fn observe(&mut self, x: f64, cfg: &DriftConfig, floor: f64) -> Option<(f64, f64)> {
        if self.scored == 0 {
            self.mean = x;
        }
        let fired = if self.scored >= cfg.warmup_frames {
            let half = (cfg.band_k * self.dev).max(floor);
            let out = (x - self.mean).abs() > half;
            let newly = out && !self.breached;
            self.breached = out;
            newly.then_some((self.mean, half))
        } else {
            None
        };
        // Absorb after scoring, so the band fired against is the one the
        // value actually escaped; absorbing while breached re-converges
        // the band onto the new regime and re-arms the latch.
        self.dev = (1.0 - cfg.alpha) * self.dev + cfg.alpha * (x - self.mean).abs();
        self.mean = (1.0 - cfg.alpha) * self.mean + cfg.alpha * x;
        self.scored += 1;
        fired
    }
}

#[derive(Debug, Default)]
struct SiteState {
    /// The cumulative sample the next scored frame deltas against. Only
    /// replaced when a frame is scored, so sub-threshold deltas accumulate.
    basis: Option<SiteSample>,
    bands: [Band; 5],
    name: String,
}

/// Per-site, per-dimension drift detection over cumulative site samples.
#[derive(Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    sites: HashMap<u64, SiteState>,
    fired_total: u64,
}

impl DriftDetector {
    /// Creates a detector with the given tuning.
    pub fn new(cfg: DriftConfig) -> DriftDetector {
        DriftDetector {
            cfg,
            sites: HashMap::new(),
            fired_total: 0,
        }
    }

    /// Drift events fired over this detector's lifetime.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Scores one sampler tick's worth of cumulative site samples and
    /// returns every newly fired drift.
    pub fn observe(&mut self, samples: &[SiteSample]) -> Vec<DriftEvent> {
        let mut events = Vec::new();
        for sample in samples {
            let state = self.sites.entry(sample.id).or_default();
            state.name = sample.name.clone();
            let Some(basis) = &state.basis else {
                state.basis = Some(sample.clone());
                continue;
            };
            let point = trend_point(0, basis, sample);
            if point.ops_in_frame < self.cfg.min_frame_ops {
                continue;
            }
            let values = [
                point.mix[0],
                point.mix[1],
                point.mix[2],
                point.mix[3],
                point.alloc_bytes_per_op,
            ];
            for (dim, (band, value)) in state.bands.iter_mut().zip(values).enumerate() {
                let floor = if dim < 4 {
                    self.cfg.min_band
                } else {
                    self.cfg.alloc_min_band
                };
                if let Some((mean, half)) = band.observe(value, &self.cfg, floor) {
                    events.push(DriftEvent {
                        site_id: sample.id,
                        site: state.name.clone(),
                        dimension: DRIFT_DIMENSIONS[dim],
                        observed: value,
                        mean,
                        band: half,
                        ops_in_frame: point.ops_in_frame,
                    });
                }
            }
            state.basis = Some(sample.clone());
        }
        self.fired_total += events.len() as u64;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, ops: [u64; 4], alloc_bytes: u64) -> SiteSample {
        SiteSample {
            id,
            name: format!("s{id}"),
            ops,
            total_ops: ops.iter().sum(),
            alloc_bytes,
        }
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            warmup_frames: 4,
            min_frame_ops: 10,
            ..DriftConfig::default()
        }
    }

    /// Feeds `n` frames of a steady 90/10 populate/contains mix.
    fn warm_up(d: &mut DriftDetector, n: u32, start: &mut [u64; 4]) {
        for _ in 0..n {
            start[0] += 90;
            start[1] += 10;
            let fired = d.observe(&[sample(1, *start, 0)]);
            assert!(fired.is_empty(), "steady mix must not fire: {fired:?}");
        }
    }

    #[test]
    fn op_mix_flip_fires_once_and_relatches() {
        let mut d = DriftDetector::new(cfg());
        let mut ops = [0u64; 4];
        warm_up(&mut d, 8, &mut ops);

        // Phase flip: the same site goes read-heavy.
        ops[0] += 10;
        ops[1] += 90;
        let fired = d.observe(&[sample(1, ops, 0)]);
        let dims: Vec<&str> = fired.iter().map(|e| e.dimension).collect();
        assert!(
            dims.contains(&"populate_fraction") && dims.contains(&"contains_fraction"),
            "flip breaks both mix bands: {fired:?}"
        );
        assert_eq!(fired[0].site, "s1");
        assert!(fired[0].observed < fired[0].mean, "populate fraction fell");

        // Sustained new regime: latched, no re-fire while out of band.
        ops[0] += 10;
        ops[1] += 90;
        assert!(d.observe(&[sample(1, ops, 0)]).is_empty(), "latched");
        assert_eq!(d.fired_total(), dims.len() as u64);
    }

    #[test]
    fn detector_rearms_after_reconverging_then_fires_on_next_shift() {
        let mut d = DriftDetector::new(cfg());
        let mut ops = [0u64; 4];
        warm_up(&mut d, 8, &mut ops);
        ops[0] += 10;
        ops[1] += 90;
        assert!(!d.observe(&[sample(1, ops, 0)]).is_empty(), "first shift");
        // Hold the new regime long enough for the EWMA to re-centre.
        for _ in 0..30 {
            ops[0] += 10;
            ops[1] += 90;
            d.observe(&[sample(1, ops, 0)]);
        }
        // Shift back: must fire again (the latch re-armed in between).
        ops[0] += 90;
        ops[1] += 10;
        let fired = d.observe(&[sample(1, ops, 0)]);
        assert!(!fired.is_empty(), "re-armed detector fires on the way back");
    }

    #[test]
    fn alloc_rate_spike_fires_the_alloc_dimension() {
        let mut d = DriftDetector::new(cfg());
        let mut ops = [0u64; 4];
        let mut bytes = 0u64;
        for _ in 0..8 {
            ops[0] += 100;
            bytes += 800; // steady 8 B/op
            assert!(d.observe(&[sample(1, ops, bytes)]).is_empty());
        }
        ops[0] += 100;
        bytes += 80_000; // 800 B/op
        let fired = d.observe(&[sample(1, ops, bytes)]);
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].dimension, "alloc_bytes_per_op");
        assert!((fired[0].observed - 800.0).abs() < 1e-9);
    }

    #[test]
    fn sub_threshold_frames_accumulate_instead_of_scoring() {
        let mut d = DriftDetector::new(cfg());
        let mut ops = [0u64; 4];
        warm_up(&mut d, 8, &mut ops);
        // Nine tiny flipped frames: each below min_frame_ops, none scored…
        for _ in 0..9 {
            ops[1] += 1;
            assert!(d.observe(&[sample(1, ops, 0)]).is_empty());
        }
        // …until the accumulated delta crosses the threshold and the
        // flipped mix (10 contains, 0 populate) is scored at once.
        ops[1] += 1;
        let fired = d.observe(&[sample(1, ops, 0)]);
        assert!(!fired.is_empty(), "accumulated flip scored: {fired:?}");
    }

    #[test]
    fn sites_are_banded_independently() {
        let mut d = DriftDetector::new(cfg());
        let mut a = [0u64; 4];
        let mut b = [0u64; 4];
        for _ in 0..8 {
            a[0] += 100;
            b[1] += 100;
            assert!(d.observe(&[sample(1, a, 0), sample(2, b, 0)]).is_empty());
        }
        // Only site 2 flips.
        a[0] += 100;
        b[0] += 100;
        let fired = d.observe(&[sample(1, a, 0), sample(2, b, 0)]);
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|e| e.site_id == 2), "{fired:?}");
    }
}
