//! The windowed time-series: a fixed ring of cumulative frames the sampler
//! fills and the query API reads deltas/rates out of.
//!
//! Each [`Frame`] is a point-in-time copy of every *cumulative* observable
//! the sampler can reach without I/O: the counter series of the telemetry
//! registry (flattened to `name{label="value",…}` keys, exactly the
//! Prometheus series identity) plus the raw per-site samples the drift
//! detector consumes. Because frames store cumulative totals, any pair of
//! frames yields an exact delta — the window never loses precision to
//! pre-aggregation, and evicting old frames only narrows the horizon.
//!
//! This module is on the sampler path and is covered by the analyzer's
//! `no-blocking-io-in-sampler-path` lint: no filesystem or socket tokens
//! may appear here.

use std::collections::VecDeque;

/// One per-site cumulative sample, the drift detector's unit of input.
/// Copied out of the runtime's [`SiteStats`](cs_runtime::SiteStats)
/// atomics; all fields are lifetime totals, not deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSample {
    /// Engine-assigned site id.
    pub id: u64,
    /// Site label.
    pub name: String,
    /// Exact flushed op totals, indexed by `OpKind::index()`.
    pub ops: [u64; 4],
    /// Sum of `ops`.
    pub total_ops: u64,
    /// Attributed allocation bytes (sampled-and-scaled).
    pub alloc_bytes: u64,
}

/// One sampler tick: a timestamp plus every cumulative observable.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Nanoseconds since the observation plane started (monotone).
    pub t_ns: u64,
    /// Flattened counter series, sorted by key. Keys are the Prometheus
    /// series identity: `name` for unlabelled series,
    /// `name{k="v",…}` for labelled ones.
    pub counters: Vec<(String, u64)>,
    /// Per-site cumulative samples at this tick.
    pub sites: Vec<SiteSample>,
}

impl Frame {
    /// The cumulative value of `key` in this frame, if sampled.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    fn site(&self, id: u64) -> Option<&SiteSample> {
        self.sites.iter().find(|s| s.id == id)
    }
}

/// One point of a per-site trend: the frame-over-frame delta expressed as
/// an op-mix distribution plus the allocation rate, i.e. exactly the
/// dimensions the drift detector bands.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Timestamp of the later frame of the delta pair.
    pub t_ns: u64,
    /// Ops executed between the two frames.
    pub ops_in_frame: u64,
    /// Fraction of `ops_in_frame` per op kind (`OpKind::index()` order);
    /// all zero when no ops ran in the interval.
    pub mix: [f64; 4],
    /// Attributed allocation bytes per op over the interval.
    pub alloc_bytes_per_op: f64,
}

/// A fixed-capacity ring of [`Frame`]s with delta/rate queries. Bounded by
/// construction: the ring allocates its full capacity up front and evicts
/// oldest-first.
#[derive(Debug)]
pub struct Window {
    frames: VecDeque<Frame>,
    capacity: usize,
}

impl Window {
    /// Creates an empty window holding at most `capacity` frames
    /// (minimum 2 — a single frame can answer no delta query).
    pub fn new(capacity: usize) -> Window {
        let capacity = capacity.max(2);
        Window {
            frames: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a frame, evicting the oldest when full.
    pub fn push(&mut self, frame: Frame) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The window's time span in nanoseconds (oldest frame to newest).
    pub fn span_ns(&self) -> u64 {
        match (self.frames.front(), self.frames.back()) {
            (Some(first), Some(last)) => last.t_ns.saturating_sub(first.t_ns),
            _ => 0,
        }
    }

    /// The newest frame, if any.
    pub fn latest(&self) -> Option<&Frame> {
        self.frames.back()
    }

    /// Counter increase across the window: newest cumulative value minus
    /// oldest. `None` until two frames carry the key. Saturating, so a
    /// counter reset (process restart behind the same window) reads as 0
    /// rather than wrapping.
    pub fn delta(&self, key: &str) -> Option<u64> {
        let first = self.first_with(key)?;
        let last = self.last_with(key)?;
        Some(last.1.saturating_sub(first.1))
    }

    /// Counter rate over the window in events per second, from the same
    /// frame pair as [`Window::delta`]. `None` until two frames carry the
    /// key or when they carry identical timestamps.
    pub fn rate(&self, key: &str) -> Option<f64> {
        let first = self.first_with(key)?;
        let last = self.last_with(key)?;
        let dt_ns = last.0.saturating_sub(first.0);
        if dt_ns == 0 {
            return None;
        }
        let d = last.1.saturating_sub(first.1);
        Some(d as f64 / (dt_ns as f64 / 1e9))
    }

    /// Every counter key present in the newest frame.
    pub fn keys(&self) -> Vec<String> {
        self.frames
            .back()
            .map(|f| f.counters.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default()
    }

    /// The per-frame trend of site `id`: one [`TrendPoint`] per adjacent
    /// frame pair in which the site appears. Empty until the site shows up
    /// in at least two frames.
    pub fn site_trend(&self, id: u64) -> Vec<TrendPoint> {
        let mut points = Vec::with_capacity(self.frames.len().saturating_sub(1));
        let mut prev: Option<&SiteSample> = None;
        for frame in &self.frames {
            let Some(cur) = frame.site(id) else { continue };
            if let Some(p) = prev {
                points.push(trend_point(frame.t_ns, p, cur));
            }
            prev = Some(cur);
        }
        points
    }

    fn first_with(&self, key: &str) -> Option<(u64, u64)> {
        self.frames
            .iter()
            .find_map(|f| f.counter(key).map(|v| (f.t_ns, v)))
    }

    fn last_with(&self, key: &str) -> Option<(u64, u64)> {
        let first = self.first_with(key)?;
        let last = self
            .frames
            .iter()
            .rev()
            .find_map(|f| f.counter(key).map(|v| (f.t_ns, v)))?;
        // A single matching frame answers nothing: delta needs a pair.
        if first.0 == last.0 && self.frames.iter().filter(|f| f.counter(key).is_some()).count() < 2
        {
            return None;
        }
        Some(last)
    }
}

/// The delta between two cumulative samples of one site, normalised to the
/// drift detector's dimensions.
pub(crate) fn trend_point(t_ns: u64, prev: &SiteSample, cur: &SiteSample) -> TrendPoint {
    let ops_in_frame = cur.total_ops.saturating_sub(prev.total_ops);
    let mut mix = [0.0f64; 4];
    if ops_in_frame > 0 {
        for (i, m) in mix.iter_mut().enumerate() {
            *m = cur.ops[i].saturating_sub(prev.ops[i]) as f64 / ops_in_frame as f64;
        }
    }
    let alloc = cur.alloc_bytes.saturating_sub(prev.alloc_bytes);
    let alloc_bytes_per_op = if ops_in_frame > 0 {
        alloc as f64 / ops_in_frame as f64
    } else {
        0.0
    };
    TrendPoint {
        t_ns,
        ops_in_frame,
        mix,
        alloc_bytes_per_op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t_ns: u64, counters: &[(&str, u64)], sites: Vec<SiteSample>) -> Frame {
        let mut counters: Vec<(String, u64)> = counters
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        counters.sort();
        Frame { t_ns, counters, sites }
    }

    fn site(id: u64, ops: [u64; 4], alloc_bytes: u64) -> SiteSample {
        SiteSample {
            id,
            name: format!("site-{id}"),
            ops,
            total_ops: ops.iter().sum(),
            alloc_bytes,
        }
    }

    #[test]
    fn delta_and_rate_use_first_and_last_carrying_frames() {
        let mut w = Window::new(8);
        w.push(frame(0, &[("a", 100)], vec![]));
        w.push(frame(1_000_000_000, &[("a", 160), ("b", 5)], vec![]));
        w.push(frame(2_000_000_000, &[("a", 220), ("b", 9)], vec![]));
        assert_eq!(w.delta("a"), Some(120));
        assert_eq!(w.rate("a"), Some(60.0));
        // `b` appears only in the last two frames: its window is shorter.
        assert_eq!(w.delta("b"), Some(4));
        assert_eq!(w.rate("b"), Some(4.0));
        assert_eq!(w.delta("missing"), None);
        assert_eq!(w.span_ns(), 2_000_000_000);
    }

    #[test]
    fn single_frame_answers_no_delta() {
        let mut w = Window::new(4);
        w.push(frame(0, &[("a", 7)], vec![]));
        assert_eq!(w.delta("a"), None);
        assert_eq!(w.rate("a"), None);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let mut w = Window::new(3);
        for i in 0..10u64 {
            w.push(frame(i * 1_000, &[("a", i * 10)], vec![]));
        }
        assert_eq!(w.len(), 3);
        // Oldest surviving frame is i=7: delta spans 7..9.
        assert_eq!(w.delta("a"), Some(20));
    }

    #[test]
    fn counter_reset_saturates_to_zero() {
        let mut w = Window::new(4);
        w.push(frame(0, &[("a", 500)], vec![]));
        w.push(frame(1_000, &[("a", 20)], vec![]));
        assert_eq!(w.delta("a"), Some(0));
    }

    #[test]
    fn site_trend_yields_mix_and_alloc_rate_per_adjacent_pair() {
        let mut w = Window::new(8);
        w.push(frame(0, &[], vec![site(1, [90, 10, 0, 0], 0)]));
        w.push(frame(1_000, &[], vec![site(1, [180, 20, 0, 0], 800)]));
        w.push(frame(2_000, &[], vec![site(1, [190, 110, 0, 0], 1000)]));
        let trend = w.site_trend(1);
        assert_eq!(trend.len(), 2);
        assert_eq!(trend[0].ops_in_frame, 100);
        assert!((trend[0].mix[0] - 0.9).abs() < 1e-12);
        assert!((trend[0].alloc_bytes_per_op - 8.0).abs() < 1e-12);
        // Second interval flips toward reads.
        assert!((trend[1].mix[1] - 0.9).abs() < 1e-12);
        assert!((trend[1].alloc_bytes_per_op - 2.0).abs() < 1e-12);
        assert!(w.site_trend(99).is_empty());
    }

    #[test]
    fn idle_interval_is_all_zero_not_nan() {
        let mut w = Window::new(4);
        w.push(frame(0, &[], vec![site(1, [10, 0, 0, 0], 100)]));
        w.push(frame(1_000, &[], vec![site(1, [10, 0, 0, 0], 100)]));
        let trend = w.site_trend(1);
        assert_eq!(trend.len(), 1);
        assert_eq!(trend[0].ops_in_frame, 0);
        assert_eq!(trend[0].mix, [0.0; 4]);
        assert_eq!(trend[0].alloc_bytes_per_op, 0.0);
    }
}
