//! The sampler: a low-duty-cycle thread (or a manual [`tick`] in tests)
//! that snapshots the in-memory observables into the window and feeds the
//! drift detector.
//!
//! Every tick does exactly four in-memory things: mirror the source's
//! counters into the registry, freeze a [`Frame`](crate::window::Frame)
//! into the window ring, score the per-site samples against the drift
//! bands, and update the sampler's own self-metrics (ticks, busy nanos,
//! overhead ratio). The process-level gauges that read procfs are
//! deliberately *not* refreshed here — they belong to the scrape path
//! (`GET /metrics`), where an operator is already paying for a syscall
//! round-trip. The analyzer's `no-blocking-io-in-sampler-path` lint pins
//! this invariant: no filesystem or socket tokens may appear in this
//! module. The single cold exception is a fired drift event, which is
//! handed to the flight recorder (and thence its JSONL sink) — incidents
//! are rare by construction and recording them is the point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cs_telemetry::{Json, ValueSnapshot};

use crate::drift::DriftEvent;
use crate::window::Frame;
use crate::ObsCore;

/// Takes one sample: export → frame → drift → self-metrics. Returns the
/// drift events fired, already recorded as incidents and counted on
/// `cs_obs_phase_shifts_total`. Public so tests and examples can drive
/// the plane deterministically instead of racing a timer thread.
pub(crate) fn tick(core: &ObsCore) -> Vec<DriftEvent> {
    let busy = Instant::now();
    core.source.sample_into(&core.registry);
    let t_ns = core.started.elapsed().as_nanos() as u64;
    let counters = flatten_counters(core);
    let sites = core.source.site_samples();

    let events = {
        let mut window = core.window.lock();
        window.push(Frame {
            t_ns,
            counters,
            sites: sites.clone(),
        });
        core.metrics.window_frames.set(window.len() as i64);
        drop(window);
        core.drift.lock().observe(&sites)
    };

    for event in &events {
        core.registry
            .counter(
                "cs_obs_phase_shifts_total",
                "Drift-detector firings: a site's op-mix or allocation \
                 rate broke out of its EWMA band.",
                &[("site", &event.site), ("dimension", event.dimension)],
            )
            .inc();
        if let Some(flight) = &core.flight {
            flight.record_external("phase_shift", drift_detail(event, t_ns));
        }
    }

    core.metrics.sampler_ticks.inc();
    let busy_ns = busy.elapsed().as_nanos() as u64;
    core.metrics.sampler_busy_nanos.add(busy_ns);
    let wall_ns = core.started.elapsed().as_nanos() as u64;
    if wall_ns > 0 {
        let busy_total = core.metrics.sampler_busy_nanos.get();
        core.metrics
            .sampler_overhead_ratio
            .set(busy_total as f64 / wall_ns as f64);
    }
    events
}

/// Flattens the registry's counter series into sorted
/// `(series-identity, total)` pairs for the frame.
fn flatten_counters(core: &ObsCore) -> Vec<(String, u64)> {
    let snapshot = core.registry.snapshot();
    let mut out = Vec::new();
    for family in &snapshot.families {
        for series in &family.series {
            let ValueSnapshot::Counter(total) = series.value else {
                continue;
            };
            out.push((series_key(&family.name, &series.labels), total));
        }
    }
    out.sort();
    out
}

/// The Prometheus series identity: `name` or `name{k="v",…}`.
pub(crate) fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

/// The incident `detail` payload for a fired drift.
fn drift_detail(event: &DriftEvent, t_ns: u64) -> Json {
    Json::object()
        .field("site_id", event.site_id)
        .field("site", event.site.as_str())
        .field("dimension", event.dimension)
        .field("observed", event.observed)
        .field("mean", event.mean)
        .field("band", event.band)
        .field("ops_in_frame", event.ops_in_frame)
        .field("t_ns", t_ns)
}

/// The periodic sampler thread: ticks every `interval` until stopped.
#[derive(Debug)]
pub(crate) struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

pub(crate) fn spawn(core: Arc<ObsCore>, interval: Duration) -> SamplerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("cs-obs-sampler".to_owned())
        .spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                tick(&core);
                std::thread::park_timeout(interval);
            }
        })
        .expect("spawn cs-obs sampler thread");
    SamplerHandle {
        stop,
        thread: Some(thread),
    }
}

impl SamplerHandle {
    /// Signals the thread and joins it; idempotent.
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keys_match_prometheus_identity() {
        assert_eq!(series_key("cs_x_total", &[]), "cs_x_total");
        let labels = vec![
            ("site".to_owned(), "hot-map".to_owned()),
            ("op".to_owned(), "contains".to_owned()),
        ];
        assert_eq!(
            series_key("cs_runtime_site_ops_total", &labels),
            "cs_runtime_site_ops_total{site=\"hot-map\",op=\"contains\"}"
        );
    }
}
