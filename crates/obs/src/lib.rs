//! # cs-obs
//!
//! The live operational plane for a CollectionSwitch process: an embedded,
//! dependency-free scrape/debug HTTP server plus a windowed time-series
//! with drift detection, wired to a running [`Switch`] or [`Runtime`].
//!
//! The paper's §4.4 answer to "a switch made things worse and nobody can
//! explain why" is detailed decision logging; the telemetry crate renders
//! those logs, but until this crate nothing could *serve* them from inside
//! the process while the incident is still happening. cs-obs closes that
//! gap with three pieces:
//!
//! * **An embedded HTTP server** ([`ObsBuilder`] / `serve_obs`) over
//!   `std::net` — no framework, bounded worker threads, panic-isolated
//!   connections — serving `GET /metrics` (Prometheus text, self-validated
//!   before every response), `/health` (engine health, `503` when
//!   degraded), `/sites` (the site manifest), `/explain/<site_id>` (the
//!   live [`SelectionExplanation`](cs_core::SelectionExplanation)), and
//!   `/incidents` (the flight recorder's ring as JSONL).
//! * **A windowed time-series** ([`Window`]): a sampler thread (or manual
//!   [`ObsHandle::tick`]) freezes the registry's counters and each site's
//!   op totals into a fixed ring of frames, answering
//!   [`delta`](ObsHandle::delta)/[`rate`](ObsHandle::rate) per counter and
//!   [`site_trend`](ObsHandle::site_trend) per site without a metrics
//!   backend in sight.
//! * **A drift detector** ([`DriftDetector`]): EWMA bands over each
//!   site's op-mix fractions and allocation rate; a site breaking band
//!   fires a `phase_shift` incident into the flight recorder and a
//!   `cs_obs_phase_shifts_total` counter — the operational mirror of the
//!   paper's phase-change premise.
//!
//! ## Quickstart
//!
//! ```no_run
//! use cs_core::Switch;
//! use cs_runtime::Runtime;
//! use cs_obs::RuntimeObsExt;
//!
//! let rt = Runtime::new(Switch::builder().build());
//! let obs = rt.serve_obs("127.0.0.1:0").expect("bind");
//! println!("scrape me at http://{}/metrics", obs.local_addr().unwrap());
//! // … run the workload …
//! obs.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drift;
mod http;
mod sampler;
mod window;

pub use drift::{DriftConfig, DriftDetector, DriftEvent, DRIFT_DIMENSIONS};
pub use window::{Frame, SiteSample, TrendPoint, Window};

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cs_core::Switch;
use cs_runtime::Runtime;
use cs_telemetry::{
    export_engine, export_process, Counter, FlightRecorder, FloatGauge, Gauge, Histogram,
    MetricsRegistry,
};
use parking_lot::Mutex;

/// What the plane observes: a bare engine or a full runtime. The runtime
/// variant adds per-site counters (and therefore site trends and drift);
/// the engine variant still serves every endpoint.
#[derive(Debug, Clone)]
pub(crate) enum Source {
    Engine(Switch),
    Runtime(Runtime),
}

impl Source {
    pub(crate) fn engine(&self) -> &Switch {
        match self {
            Source::Engine(engine) => engine,
            Source::Runtime(rt) => rt.engine(),
        }
    }

    /// The full scrape-path export, procfs gauges included.
    pub(crate) fn export(&self, registry: &MetricsRegistry) {
        match self {
            Source::Engine(engine) => {
                export_engine(registry, engine);
                export_process(registry);
            }
            Source::Runtime(rt) => rt.export_metrics(registry),
        }
    }

    /// The in-memory sampler-path export: counters only, no syscalls.
    pub(crate) fn sample_into(&self, registry: &MetricsRegistry) {
        match self {
            Source::Engine(engine) => export_engine(registry, engine),
            Source::Runtime(rt) => {
                rt.export_site_metrics(registry);
                export_engine(registry, rt.engine());
            }
        }
    }

    pub(crate) fn site_samples(&self) -> Vec<SiteSample> {
        match self {
            Source::Engine(_) => Vec::new(),
            Source::Runtime(rt) => rt
                .sites()
                .into_iter()
                .map(|s| SiteSample {
                    id: s.id,
                    name: s.name,
                    ops: s.ops,
                    total_ops: s.total_ops,
                    alloc_bytes: s.alloc_bytes,
                })
                .collect(),
        }
    }

    pub(crate) fn manifest(&self) -> Vec<cs_core::SiteManifestEntry> {
        match self {
            Source::Engine(engine) => engine.site_manifest(),
            Source::Runtime(rt) => rt.site_manifest(),
        }
    }
}

/// Pre-registered handles for the plane's own `cs_obs_*` families, so the
/// sampler and handlers touch a single atomic each instead of re-entering
/// the registry lock per event.
#[derive(Debug)]
pub(crate) struct SelfMetrics {
    pub(crate) sampler_ticks: Counter,
    pub(crate) sampler_busy_nanos: Counter,
    pub(crate) sampler_overhead_ratio: FloatGauge,
    pub(crate) window_frames: Gauge,
    pub(crate) handler_busy_nanos: Counter,
    pub(crate) scrape_duration: Histogram,
    pub(crate) scrape_errors: Counter,
    pub(crate) worker_panics: Counter,
    pub(crate) http_rejected: Counter,
}

/// Sub-millisecond through one-second buckets: a scrape is an in-memory
/// render, so anything beyond 1 s is pathological and lands in `+Inf`.
const SCRAPE_DURATION_BUCKETS: [f64; 8] =
    [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1.0];

impl SelfMetrics {
    fn register(registry: &MetricsRegistry) -> SelfMetrics {
        SelfMetrics {
            sampler_ticks: registry.counter(
                "cs_obs_sampler_ticks_total",
                "Sampler ticks taken (thread or manual).",
                &[],
            ),
            sampler_busy_nanos: registry.counter(
                "cs_obs_sampler_busy_nanos_total",
                "Wall nanoseconds the sampler spent inside ticks.",
                &[],
            ),
            sampler_overhead_ratio: registry.float_gauge(
                "cs_obs_sampler_overhead_ratio",
                "Sampler busy time over the plane's lifetime wall time.",
                &[],
            ),
            window_frames: registry.gauge(
                "cs_obs_window_frames",
                "Frames currently held in the time-series ring.",
                &[],
            ),
            handler_busy_nanos: registry.counter(
                "cs_obs_handler_busy_nanos_total",
                "Wall nanoseconds HTTP workers spent building responses.",
                &[],
            ),
            scrape_duration: registry.histogram(
                "cs_obs_scrape_duration_seconds",
                "Time to parse, build, and stage one HTTP response.",
                &[],
                &SCRAPE_DURATION_BUCKETS,
            ),
            scrape_errors: registry.counter(
                "cs_obs_scrape_errors_total",
                "Scrapes that failed exposition self-validation (served as 500).",
                &[],
            ),
            worker_panics: registry.counter(
                "cs_obs_worker_panics_total",
                "HTTP worker panics caught and survived.",
                &[],
            ),
            http_rejected: registry.counter(
                "cs_obs_http_rejected_total",
                "Connections shed with 503 because the hand-off backlog was full.",
                &[],
            ),
        }
    }

    /// The per-endpoint request counter (labelled, so created on demand —
    /// the registry dedups to the same cell per endpoint).
    pub(crate) fn scrape_for(&self, registry: &MetricsRegistry, endpoint: &str) -> Counter {
        registry.counter(
            "cs_obs_scrapes_total",
            "HTTP requests served, by endpoint.",
            &[("endpoint", endpoint)],
        )
    }
}

/// Everything the server, sampler, and handle share.
#[derive(Debug)]
pub(crate) struct ObsCore {
    pub(crate) registry: MetricsRegistry,
    pub(crate) source: Source,
    pub(crate) flight: Option<Arc<FlightRecorder>>,
    pub(crate) window: Mutex<Window>,
    pub(crate) drift: Mutex<DriftDetector>,
    pub(crate) metrics: SelfMetrics,
    pub(crate) started: Instant,
}

/// Configures and launches an observation plane. Defaults: 2 HTTP
/// workers, a 16-connection backlog, a 250 ms sampler, a 64-frame window,
/// [`DriftConfig::default`], and a fresh registry.
#[derive(Debug)]
pub struct ObsBuilder {
    addr: Option<String>,
    workers: usize,
    backlog: usize,
    sampler_interval: Option<Duration>,
    window_frames: usize,
    drift: DriftConfig,
    registry: Option<MetricsRegistry>,
    flight: Option<Arc<FlightRecorder>>,
}

impl Default for ObsBuilder {
    fn default() -> ObsBuilder {
        ObsBuilder {
            addr: None,
            workers: 2,
            backlog: 16,
            sampler_interval: Some(Duration::from_millis(250)),
            window_frames: 64,
            drift: DriftConfig::default(),
            registry: None,
            flight: None,
        }
    }
}

impl ObsBuilder {
    /// Starts a default configuration.
    pub fn new() -> ObsBuilder {
        ObsBuilder::default()
    }

    /// Serve HTTP on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    /// Without an address no server starts — the window/drift plane still
    /// runs, which is the headless-test configuration.
    pub fn addr(mut self, addr: impl Into<String>) -> ObsBuilder {
        self.addr = Some(addr.into());
        self
    }

    /// HTTP worker threads (minimum 1).
    pub fn workers(mut self, workers: usize) -> ObsBuilder {
        self.workers = workers;
        self
    }

    /// Bounded accept→worker hand-off; connections beyond it get `503`.
    pub fn backlog(mut self, backlog: usize) -> ObsBuilder {
        self.backlog = backlog;
        self
    }

    /// Sampler tick interval.
    pub fn sample_every(mut self, interval: Duration) -> ObsBuilder {
        self.sampler_interval = Some(interval);
        self
    }

    /// No sampler thread: ticks happen only via [`ObsHandle::tick`].
    /// Deterministic by construction — what the drift tests and the
    /// `obs_server` example use.
    pub fn manual_sampler(mut self) -> ObsBuilder {
        self.sampler_interval = None;
        self
    }

    /// Frames held by the time-series ring (minimum 2).
    pub fn window_frames(mut self, frames: usize) -> ObsBuilder {
        self.window_frames = frames;
        self
    }

    /// Drift-detector tuning.
    pub fn drift(mut self, config: DriftConfig) -> ObsBuilder {
        self.drift = config;
        self
    }

    /// Export into (and serve) an existing registry instead of a fresh
    /// one — so the scrape page includes families other subsystems
    /// already maintain there.
    pub fn registry(mut self, registry: MetricsRegistry) -> ObsBuilder {
        self.registry = Some(registry);
        self
    }

    /// Wire a flight recorder: `/incidents` serves its ring, and fired
    /// drifts are recorded through it as `phase_shift` incidents.
    pub fn flight(mut self, flight: Arc<FlightRecorder>) -> ObsBuilder {
        self.flight = Some(flight);
        self
    }

    /// Launches the plane over a full runtime (per-site trends + drift).
    pub fn spawn_runtime(self, rt: &Runtime) -> std::io::Result<ObsHandle> {
        self.spawn(Source::Runtime(rt.clone()))
    }

    /// Launches the plane over a bare engine (no per-site runtime
    /// counters, so no site trends or drift — every endpoint still works).
    pub fn spawn_engine(self, engine: &Switch) -> std::io::Result<ObsHandle> {
        self.spawn(Source::Engine(engine.clone()))
    }

    fn spawn(self, source: Source) -> std::io::Result<ObsHandle> {
        let registry = self.registry.unwrap_or_default();
        let metrics = SelfMetrics::register(&registry);
        let core = Arc::new(ObsCore {
            registry,
            source,
            flight: self.flight,
            window: Mutex::new(Window::new(self.window_frames)),
            drift: Mutex::new(DriftDetector::new(self.drift)),
            metrics,
            started: Instant::now(),
        });
        let server = match &self.addr {
            Some(addr) => Some(http::spawn(
                Arc::clone(&core),
                addr.as_str(),
                self.workers,
                self.backlog,
            )?),
            None => None,
        };
        let sampler_thread = self
            .sampler_interval
            .map(|interval| sampler::spawn(Arc::clone(&core), interval));
        Ok(ObsHandle {
            core,
            server,
            sampler: sampler_thread,
        })
    }
}

/// A running observation plane: the server (if an address was given), the
/// sampler (unless manual), and the query API over the window. Dropping
/// the handle shuts everything down and joins every thread.
#[derive(Debug)]
pub struct ObsHandle {
    core: Arc<ObsCore>,
    server: Option<http::ServerHandle>,
    sampler: Option<sampler::SamplerHandle>,
}

impl ObsHandle {
    /// The server's bound address (`None` when running headless).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }

    /// The registry the plane exports into and serves.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.core.registry
    }

    /// Takes one sampler tick right now (works with or without the
    /// sampler thread) and returns any drift events it fired — already
    /// recorded as incidents and counted on `cs_obs_phase_shifts_total`.
    pub fn tick(&self) -> Vec<DriftEvent> {
        sampler::tick(&self.core)
    }

    /// Frames currently in the window.
    pub fn window_len(&self) -> usize {
        self.core.window.lock().len()
    }

    /// Counter increase across the window; see [`Window::delta`].
    pub fn delta(&self, series_key: &str) -> Option<u64> {
        self.core.window.lock().delta(series_key)
    }

    /// Counter rate (events/second) across the window; see
    /// [`Window::rate`].
    pub fn rate(&self, series_key: &str) -> Option<f64> {
        self.core.window.lock().rate(series_key)
    }

    /// Every counter series key in the newest frame.
    pub fn series_keys(&self) -> Vec<String> {
        self.core.window.lock().keys()
    }

    /// Per-frame op-mix/alloc trend for one site; see
    /// [`Window::site_trend`].
    pub fn site_trend(&self, site_id: u64) -> Vec<TrendPoint> {
        self.core.window.lock().site_trend(site_id)
    }

    /// Total drift events fired since launch.
    pub fn phase_shifts(&self) -> u64 {
        self.core.drift.lock().fired_total()
    }

    /// Stops the server and sampler and joins their threads. Also runs on
    /// drop; call explicitly when you want the join to happen *now*.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(mut sampler) = self.sampler.take() {
            sampler.stop();
        }
        if let Some(mut server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ObsHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// `serve_obs` for [`Runtime`]: the one-liner wiring for the common case.
pub trait RuntimeObsExt {
    /// Serves the operational plane for this runtime on `addr` with
    /// default settings ([`ObsBuilder::default`]); `"host:0"` binds an
    /// ephemeral port, readable back via [`ObsHandle::local_addr`].
    fn serve_obs(&self, addr: &str) -> std::io::Result<ObsHandle>;
}

impl RuntimeObsExt for Runtime {
    fn serve_obs(&self, addr: &str) -> std::io::Result<ObsHandle> {
        ObsBuilder::new().addr(addr).spawn_runtime(self)
    }
}

/// `serve_obs` for a bare [`Switch`] (no runtime tier).
pub trait SwitchObsExt {
    /// Serves the operational plane for this engine on `addr` with
    /// default settings.
    fn serve_obs(&self, addr: &str) -> std::io::Result<ObsHandle>;
}

impl SwitchObsExt for Switch {
    fn serve_obs(&self, addr: &str) -> std::io::Result<ObsHandle> {
        ObsBuilder::new().addr(addr).spawn_engine(self)
    }
}

// The core crosses the accept/worker/sampler thread boundary.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ObsCore>();
    assert_send_sync::<ObsHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: obs\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        (status, head.to_owned(), body.to_owned())
    }

    #[test]
    fn engine_plane_serves_all_endpoints() {
        use cs_collections::ListKind;
        let engine = Switch::builder().build();
        let ctx = engine.list_context::<i64>(ListKind::Array);
        for _ in 0..50 {
            let mut list = ctx.create_list();
            for v in 0..120 {
                list.push(v);
            }
        }
        engine.analyze_now();

        let obs = engine.serve_obs("127.0.0.1:0").expect("bind");
        let addr = obs.local_addr().expect("server address");

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200, "{body}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE cs_engine_contexts gauge"), "{body}");
        assert!(body.contains("cs_process_uptime_seconds"), "{body}");
        cs_telemetry::validate_prometheus_text(&body).expect("served page validates");

        let (status, _, body) = get(addr, "/health");
        assert_eq!(status, 200);
        let health = cs_telemetry::Json::parse(&body).expect("health is JSON");
        assert_eq!(
            health.get("degraded").and_then(|j| j.as_bool()),
            Some(false)
        );
        assert!(
            health.get("uptime_seconds").and_then(|j| j.as_f64()) > Some(0.0),
            "{body}"
        );

        let (status, _, body) = get(addr, "/sites");
        assert_eq!(status, 200);
        let sites = cs_telemetry::Json::parse(&body).expect("sites are JSON");
        let entries = sites.as_array().expect("array");
        assert_eq!(entries.len(), 1);
        let site_id = entries[0].get("id").and_then(|j| j.as_u64()).expect("id");

        let (status, _, body) = get(addr, &format!("/explain/{site_id}"));
        assert_eq!(status, 200, "{body}");
        let explain = cs_telemetry::Json::parse(&body).expect("explanation is JSON");
        assert!(explain.get("current").is_some(), "{body}");
        assert!(explain.get("candidates").is_some(), "{body}");

        let (status, _, _) = get(addr, "/explain/999999");
        assert_eq!(status, 404);
        let (status, _, _) = get(addr, "/explain/not-a-number");
        assert_eq!(status, 400);

        let (status, head, body) = get(addr, "/incidents");
        assert_eq!(status, 200);
        assert!(head.contains("application/x-ndjson"));
        assert!(body.is_empty(), "no recorder wired: {body}");

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, body) = get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"), "{body}");

        // Self-metrics counted the traffic.
        let snap = obs.registry().snapshot();
        assert!(
            snap.counter_total("cs_obs_scrapes_total").unwrap_or(0) >= 8,
            "all requests counted"
        );
        obs.shutdown();
    }

    #[test]
    fn post_and_garbage_get_clean_errors() {
        let engine = Switch::builder().build();
        let obs = engine.serve_obs("127.0.0.1:0").expect("bind");
        let addr = obs.local_addr().expect("addr");

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 405 "), "{raw}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"%%%\r\n\r\n").expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
        obs.shutdown();
    }

    #[test]
    fn headless_plane_ticks_manually_and_answers_window_queries() {
        use cs_collections::MapKind;
        let rt = Runtime::new(Switch::builder().build());
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "obs-map");
        let obs = ObsBuilder::new()
            .manual_sampler()
            .window_frames(8)
            .spawn_runtime(&rt)
            .expect("headless spawn");
        assert!(obs.local_addr().is_none());

        for i in 0..100u64 {
            map.insert(i, i);
        }
        rt.flush_thread();
        obs.tick();
        for i in 0..50u64 {
            map.get(&i);
        }
        rt.flush_thread();
        obs.tick();

        assert_eq!(obs.window_len(), 2);
        let key = "cs_runtime_site_ops_total{site=\"obs-map\",op=\"contains\"}";
        assert_eq!(obs.delta(key), Some(50), "keys: {:?}", obs.series_keys());
        assert!(obs.rate(key).expect("two frames span time") > 0.0);

        let trend = obs.site_trend(map.id());
        assert_eq!(trend.len(), 1, "one adjacent frame pair");
        assert_eq!(trend[0].ops_in_frame, 50);
        assert!((trend[0].mix[1] - 1.0).abs() < 1e-12, "all contains");
        obs.shutdown();
    }

    #[test]
    fn sampler_thread_fills_the_window_without_a_server() {
        let rt = Runtime::new(Switch::builder().build());
        let obs = ObsBuilder::new()
            .sample_every(Duration::from_millis(5))
            .spawn_runtime(&rt)
            .expect("spawn");
        let deadline = Instant::now() + Duration::from_secs(5);
        while obs.window_len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(obs.window_len() >= 3, "sampler thread ticked");
        let snap = obs.registry().snapshot();
        assert!(snap.counter_total("cs_obs_sampler_ticks_total").unwrap_or(0) >= 3);
        obs.shutdown();
    }
}
