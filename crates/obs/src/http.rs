//! The embedded scrape/debug server: a dependency-free HTTP/1.1 endpoint
//! over `std::net`, serving the five operational routes.
//!
//! Topology: one accept thread plus a small fixed pool of worker threads
//! fed through a bounded channel. Every connection is handled behind
//! `catch_unwind`, so a panic in a handler (or in an exporter it calls)
//! burns one response, increments `cs_obs_worker_panics_total`, and leaves
//! the server serving. When the hand-off channel is full the accept thread
//! answers `503` inline rather than queueing unboundedly — scrape traffic
//! is lossy by design, never a memory hazard. Shutdown is graceful: a
//! latch flips, a self-connection unblocks `accept`, the channel closes,
//! and every thread is joined.
//!
//! This module is the designated home of all socket I/O in the crate; the
//! sampler-path modules (`sampler.rs`, `window.rs`, `drift.rs`) are held
//! I/O-free by the analyzer's `no-blocking-io-in-sampler-path` lint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cs_telemetry::{
    health_to_json, manifest_entry_to_json, validate_prometheus_text, Json,
};

use parking_lot::Mutex;

use crate::ObsCore;

/// Largest request head the parser will buffer before answering `431`.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout: a stalled scraper may cost one worker
/// this long, never a wedge.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// A running server: its bound address plus everything `shutdown` joins.
#[derive(Debug)]
pub(crate) struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, joins every thread. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection; if connect fails
        // the listener is already gone, which is just as final.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and spawns the accept thread and `workers` handlers.
pub(crate) fn spawn<A: ToSocketAddrs>(
    core: Arc<ObsCore>,
    addr: A,
    workers: usize,
    backlog: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);

    let (tx, rx) = sync_channel::<TcpStream>(backlog.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        let thread = std::thread::Builder::new()
            .name(format!("cs-obs-http-{i}"))
            .spawn(move || worker_loop(&core, &rx))
            .expect("spawn cs-obs http worker");
        worker_threads.push(thread);
    }

    let accept_core = Arc::clone(&core);
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("cs-obs-http-accept".to_owned())
        .spawn(move || accept_loop(&accept_core, &listener, &tx, &accept_stop))
        .expect("spawn cs-obs http accept thread");

    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        workers: worker_threads,
    })
}

fn accept_loop(
    core: &ObsCore,
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Bounded hand-off: shed load at the door instead of
                // queueing. Drain the (tiny) request first — closing a
                // socket with unread data makes the kernel RST it and the
                // client would see a reset instead of the 503.
                core.metrics.http_rejected.inc();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                let mut sink = [0u8; 1024];
                let _ = stream.read(&mut sink);
                let _ = stream.write_all(render_response(
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "scrape backlog full\n",
                )
                .as_bytes());
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` (by returning) closes the channel; workers drain what
    // was already queued and exit.
}

fn worker_loop(core: &ObsCore, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Holding the lock across `recv` is deliberate: exactly one idle
        // worker camps on the channel, the rest queue on the mutex, and
        // the guard drops before the (slow) handler runs.
        let next = rx.lock().recv();
        let Ok(stream) = next else { break };
        let result = catch_unwind(AssertUnwindSafe(|| handle_connection(core, stream)));
        if result.is_err() {
            core.metrics.worker_panics.inc();
        }
    }
}

fn handle_connection(core: &ObsCore, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let started = Instant::now();

    let response = match read_request_head(&mut stream) {
        Ok(head) => match parse_request_line(&head) {
            Some(("GET", path)) => route(core, path),
            Some((_, _)) => plain(405, "Method Not Allowed", "only GET is served\n"),
            None => plain(400, "Bad Request", "unparseable request line\n"),
        },
        Err(RequestError::TooLarge) => plain(
            431,
            "Request Header Fields Too Large",
            "request head exceeds 8 KiB\n",
        ),
        Err(RequestError::Io) => return, // peer vanished; nothing to say
    };

    core.metrics
        .scrape_duration
        .observe(started.elapsed().as_secs_f64());
    core.metrics
        .handler_busy_nanos
        .add(started.elapsed().as_nanos() as u64);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

enum RequestError {
    TooLarge,
    Io,
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size cap.
fn read_request_head(stream: &mut TcpStream) -> Result<String, RequestError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return Err(RequestError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(RequestError::Io),
        }
    }
    String::from_utf8(buf).map_err(|_| RequestError::Io)
}

/// `GET /path HTTP/1.1` → `("GET", "/path")`. Strips any query string.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// Dispatches one parsed GET to its endpoint handler.
fn route(core: &ObsCore, path: &str) -> String {
    let endpoint = match path {
        "/metrics" => "metrics",
        "/health" => "health",
        "/sites" => "sites",
        "/incidents" => "incidents",
        "/" => "index",
        p if p.starts_with("/explain/") => "explain",
        _ => "other",
    };
    core.metrics
        .scrape_for(&core.registry, endpoint)
        .inc();
    match endpoint {
        "metrics" => serve_metrics(core),
        "health" => serve_health(core),
        "sites" => serve_sites(core),
        "incidents" => serve_incidents(core),
        "explain" => serve_explain(core, &path["/explain/".len()..]),
        "index" => plain(200, "OK", INDEX_BODY),
        _ => plain(404, "Not Found", "unknown path\n"),
    }
}

const INDEX_BODY: &str = "cs-obs operational plane\n\
    /metrics    Prometheus exposition (validated before serving)\n\
    /health     engine health as JSON (503 when degraded)\n\
    /sites      site manifest as JSON\n\
    /explain/N  selection explanation for site N as JSON\n\
    /incidents  flight-recorder ring as JSONL\n";

/// `GET /metrics`: full export (including the procfs-backed process
/// gauges), rendered and then **validated** — an exposition the workspace
/// validator rejects is served as a `500` carrying the errors, because a
/// silently malformed scrape page is worse than a loud one.
fn serve_metrics(core: &ObsCore) -> String {
    core.source.export(&core.registry);
    let text = core.registry.snapshot().to_prometheus_text();
    match validate_prometheus_text(&text) {
        Ok(()) => render_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8", &text),
        Err(errors) => {
            core.metrics.scrape_errors.inc();
            let body = format!(
                "exposition failed self-validation:\n{}\n",
                errors.join("\n")
            );
            plain(500, "Internal Server Error", &body)
        }
    }
}

/// `GET /health`: [`cs_core::Switch::health`] plus uptime, as JSON. The
/// status code mirrors the degraded latch so load balancers and probes
/// need no JSON parsing: `503` exactly when adaptation is frozen.
fn serve_health(core: &ObsCore) -> String {
    let engine = core.source.engine();
    let health = engine.health();
    let degraded = health.degraded;
    let body = health_to_json(&health)
        .field("uptime_seconds", engine.uptime().as_secs_f64())
        .field(
            "analysis_time_seconds",
            engine.analysis_time_total().as_secs_f64(),
        )
        .render_pretty();
    if degraded {
        json_response(503, "Service Unavailable", &body)
    } else {
        json_response(200, "OK", &body)
    }
}

/// `GET /sites`: the site manifest as a JSON array.
fn serve_sites(core: &ObsCore) -> String {
    let entries: Vec<Json> = core
        .source
        .manifest()
        .iter()
        .map(manifest_entry_to_json)
        .collect();
    json_response(200, "OK", &Json::Array(entries).render_pretty())
}

/// `GET /explain/<site_id>`: the engine's selection explanation for one
/// site — the paper's §4.4 "explain the switch" requirement, live.
fn serve_explain(core: &ObsCore, raw_id: &str) -> String {
    let Ok(id) = raw_id.parse::<u64>() else {
        let body = Json::object()
            .field("error", "site id must be an integer")
            .field("got", raw_id)
            .render();
        return json_response(400, "Bad Request", &body);
    };
    match core.source.engine().explain(id) {
        Some(explanation) => json_response(
            200,
            "OK",
            &cs_telemetry::explanation_to_json(&explanation).render_pretty(),
        ),
        None => {
            let body = Json::object()
                .field("error", "no such site (or no analysis round has scored it yet)")
                .field("site_id", id)
                .render();
            json_response(404, "Not Found", &body)
        }
    }
}

/// `GET /incidents`: the flight recorder's in-memory ring, oldest first,
/// one JSON document per line. Empty (but `200`) when no recorder is
/// wired or nothing has fired.
fn serve_incidents(core: &ObsCore) -> String {
    let mut body = String::new();
    if let Some(flight) = &core.flight {
        for line in flight.recent_incidents() {
            body.push_str(&line);
            body.push('\n');
        }
    }
    render_response(200, "OK", "application/x-ndjson", &body)
}

fn plain(status: u16, reason: &str, body: &str) -> String {
    render_response(status, reason, "text/plain; charset=utf-8", body)
}

fn json_response(status: u16, reason: &str, body: &str) -> String {
    render_response(status, reason, "application/json", body)
}

fn render_response(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing_strips_query_and_rejects_garbage() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /explain/3?verbose=1 HTTP/1.1\r\n\r\n"),
            Some(("GET", "/explain/3"))
        );
        assert_eq!(
            parse_request_line("POST /metrics HTTP/1.1\r\n\r\n"),
            Some(("POST", "/metrics"))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET"), None);
    }

    #[test]
    fn responses_carry_exact_content_length_and_close() {
        let r = render_response(200, "OK", "text/plain", "hello\n");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 6\r\n"));
        assert!(r.contains("Connection: close\r\n"));
        assert!(r.ends_with("\r\n\r\nhello\n"));
    }
}
