//! The counting fast path: per-thread, cache-padded heap counters.
//!
//! Every allocator event lands on a [`ThreadCounters`] block owned by the
//! calling thread. The block's fields are atomics only so *other* threads
//! may read them (the process account, a snapshot); the owner is the sole
//! writer and uses plain relaxed load+store pairs — the cache line stays in
//! the owner's cache and the hot path performs zero shared writes, the same
//! owner-only idiom as the cs-trace span rings.
//!
//! Registration (the once-per-thread cold path) is the only place a lock is
//! taken or memory is allocated. Because registration itself allocates
//! (an `Arc`, a `Vec` push) *inside* the allocator, a thread-local re-entry
//! flag routes those nested events — and any event arriving while the
//! thread's TLS is being torn down — to a process-global [`ORPHAN`] block,
//! so the process account stays exact: it is, by construction, the sum of
//! every thread block plus the orphan block.
//!
//! The `no-alloc-in-heap-count-path` analyzer lint pins the fast-path items
//! in this file (and the guards in [`guard`](crate::guard)) allocation- and
//! lock-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One thread's heap counters, padded to a cache line so two threads'
/// blocks never share one (the "zero shared writes" guarantee is physical,
/// not just logical).
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct ThreadCounters {
    pub alloc_count: AtomicU64,
    pub alloc_bytes: AtomicU64,
    pub dealloc_count: AtomicU64,
    pub dealloc_bytes: AtomicU64,
    pub realloc_count: AtomicU64,
    pub realloc_bytes: AtomicU64,
    /// Set when the owning thread exits; the block stays registered (its
    /// counts must keep contributing to the process account) but the
    /// live-thread gauge stops counting it.
    pub retired: AtomicBool,
}

impl ThreadCounters {
    /// Owner-only add: plain load+store, no RMW instruction. Safe because
    /// each block has exactly one writer (its owning thread, or — for the
    /// orphan block — writers serialized per event by the x86/ARM store
    /// itself being a single count that may race only against other orphan
    /// writers, see [`orphan_add`]).
    #[inline]
    fn add(&self, counter: &AtomicU64, n: u64) {
        let _ = self;
        counter.store(counter.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
    }
}

/// Registry of every thread block ever created. Blocks are never removed:
/// an exited thread's history is part of the process account.
fn registry() -> &'static Mutex<Vec<Arc<ThreadCounters>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadCounters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Catch-all for events that cannot reach a thread block: nested events
/// fired by registration itself, and events during TLS teardown. Unlike
/// thread blocks this one *is* shared, so it uses real `fetch_add`s —
/// acceptable because it only sees cold-path traffic.
static ORPHAN: ThreadCounters = ThreadCounters {
    alloc_count: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
    dealloc_count: AtomicU64::new(0),
    dealloc_bytes: AtomicU64::new(0),
    realloc_count: AtomicU64::new(0),
    realloc_bytes: AtomicU64::new(0),
    retired: AtomicBool::new(false),
};

/// Whether any [`CountingAlloc`](crate::CountingAlloc) traffic has ever
/// been observed (set once, on the first thread registration).
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct Registered(Arc<ThreadCounters>);

impl Drop for Registered {
    fn drop(&mut self) {
        self.0.retired.store(true, Ordering::Relaxed);
    }
}

thread_local! {
    /// This thread's block, once registered. `Option` + manual init (not
    /// `LazyCell`) so the fast path is a plain borrow check.
    static LOCAL: std::cell::RefCell<Option<Registered>> = const { std::cell::RefCell::new(None) };
    /// Re-entry flag: true while this thread is inside registration, so the
    /// allocations registration performs route to [`ORPHAN`] instead of
    /// recursing forever.
    static REGISTERING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[derive(Clone, Copy)]
pub(crate) enum Event {
    Alloc,
    Dealloc,
    Realloc,
}

/// Records one allocator event of `bytes` for the calling thread. This is
/// THE fast path: one TLS access and one relaxed load+store pair per
/// counter when the thread is registered.
#[inline]
pub(crate) fn note(event: Event, bytes: u64) {
    let hit = LOCAL.try_with(|slot| {
        if let Ok(borrow) = slot.try_borrow() {
            if let Some(reg) = borrow.as_ref() {
                apply(&reg.0, event, bytes);
                return true;
            }
        }
        false
    });
    if hit == Ok(true) {
        return;
    }
    note_slow(event, bytes);
}

#[inline]
fn apply(c: &ThreadCounters, event: Event, bytes: u64) {
    match event {
        Event::Alloc => {
            c.add(&c.alloc_count, 1);
            c.add(&c.alloc_bytes, bytes);
        }
        Event::Dealloc => {
            c.add(&c.dealloc_count, 1);
            c.add(&c.dealloc_bytes, bytes);
        }
        Event::Realloc => {
            c.add(&c.realloc_count, 1);
            c.add(&c.realloc_bytes, bytes);
        }
    }
}

/// Registers a counter block for the calling thread. Must run with the
/// `LOCAL` key alive; returns `false` when re-entered (registration's own
/// allocations) so the caller falls back to the orphan block.
fn register(slot: &std::cell::RefCell<Option<Registered>>) -> bool {
    if slot.borrow().is_some() {
        return true;
    }
    if REGISTERING.with(|r| r.get()) {
        return false;
    }
    REGISTERING.with(|r| r.set(true));
    // These two allocations recurse into `note`, hit the flag above, and
    // land on ORPHAN — bounded, by construction.
    let block = Arc::new(ThreadCounters::default());
    registry().lock().expect("heap registry poisoned").push(Arc::clone(&block));
    *slot.borrow_mut() = Some(Registered(block));
    REGISTERING.with(|r| r.set(false));
    true
}

/// Cold path: first event on a thread (register a block, then count on
/// it), an event fired *by* registration, or an event after TLS teardown.
#[cold]
fn note_slow(event: Event, bytes: u64) {
    // Reaching any note path at all means a CountingAlloc is installed and
    // routing traffic here (`register` alone — via `pin_thread` — does not
    // flip this, so an uncounted process stays inactive).
    ACTIVE.store(true, Ordering::Relaxed);
    let registered = LOCAL.try_with(register);
    match registered {
        Ok(true) => {
            // Registration succeeded; the triggering event counts on the
            // fresh block.
            let _ = LOCAL.try_with(|slot| {
                if let Some(reg) = slot.borrow().as_ref() {
                    apply(&reg.0, event, bytes);
                }
            });
        }
        _ => orphan_add(event, bytes),
    }
}

fn orphan_add(event: Event, bytes: u64) {
    match event {
        Event::Alloc => {
            ORPHAN.alloc_count.fetch_add(1, Ordering::Relaxed);
            ORPHAN.alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        Event::Dealloc => {
            ORPHAN.dealloc_count.fetch_add(1, Ordering::Relaxed);
            ORPHAN.dealloc_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        Event::Realloc => {
            ORPHAN.realloc_count.fetch_add(1, Ordering::Relaxed);
            ORPHAN.realloc_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one heap ledger — a thread's, the orphan
/// block's, or the whole process's (see [`HeapAccount::delta_since`]).
///
/// The ledger convention: `alloc_*` counts every allocation event
/// *including* the allocating half of a `realloc`; `dealloc_*` counts every
/// free including the freeing half of a `realloc`; `realloc_*` counts
/// realloc events separately (bytes = requested new sizes) as an
/// informational churn measure. `alloc_bytes - dealloc_bytes` is therefore
/// exactly the live heap delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapAccount {
    /// Allocation events (alloc, alloc_zeroed, and realloc's new block).
    pub alloc_count: u64,
    /// Bytes requested by those allocation events.
    pub alloc_bytes: u64,
    /// Free events (dealloc, and realloc's old block).
    pub dealloc_count: u64,
    /// Bytes released by those free events.
    pub dealloc_bytes: u64,
    /// Realloc events (also counted in `alloc_*`/`dealloc_*`).
    pub realloc_count: u64,
    /// Bytes requested as realloc new sizes.
    pub realloc_bytes: u64,
}

impl HeapAccount {
    fn read(c: &ThreadCounters) -> HeapAccount {
        HeapAccount {
            alloc_count: c.alloc_count.load(Ordering::Relaxed),
            alloc_bytes: c.alloc_bytes.load(Ordering::Relaxed),
            dealloc_count: c.dealloc_count.load(Ordering::Relaxed),
            dealloc_bytes: c.dealloc_bytes.load(Ordering::Relaxed),
            realloc_count: c.realloc_count.load(Ordering::Relaxed),
            realloc_bytes: c.realloc_bytes.load(Ordering::Relaxed),
        }
    }

    fn add(&mut self, other: &HeapAccount) {
        self.alloc_count = self.alloc_count.wrapping_add(other.alloc_count);
        self.alloc_bytes = self.alloc_bytes.wrapping_add(other.alloc_bytes);
        self.dealloc_count = self.dealloc_count.wrapping_add(other.dealloc_count);
        self.dealloc_bytes = self.dealloc_bytes.wrapping_add(other.dealloc_bytes);
        self.realloc_count = self.realloc_count.wrapping_add(other.realloc_count);
        self.realloc_bytes = self.realloc_bytes.wrapping_add(other.realloc_bytes);
    }

    /// Bytes currently live according to this ledger
    /// (`alloc_bytes - dealloc_bytes`, saturating: a windowed delta may
    /// free more than it allocated).
    pub fn live_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.dealloc_bytes)
    }

    /// The ledger's growth since an earlier snapshot of the same ledger.
    pub fn delta_since(&self, earlier: &HeapAccount) -> HeapAccount {
        HeapAccount {
            alloc_count: self.alloc_count.wrapping_sub(earlier.alloc_count),
            alloc_bytes: self.alloc_bytes.wrapping_sub(earlier.alloc_bytes),
            dealloc_count: self.dealloc_count.wrapping_sub(earlier.dealloc_count),
            dealloc_bytes: self.dealloc_bytes.wrapping_sub(earlier.dealloc_bytes),
            realloc_count: self.realloc_count.wrapping_sub(earlier.realloc_count),
            realloc_bytes: self.realloc_bytes.wrapping_sub(earlier.realloc_bytes),
        }
    }
}

/// The process-wide heap account: the exact sum of every thread block ever
/// registered plus the orphan block. Identity the exactness tests lean on:
/// this is literally the same counters the per-thread snapshots read, so
/// `process = Σ threads + orphan` holds bit-for-bit at any quiescent point.
pub fn process_account() -> HeapAccount {
    let mut total = HeapAccount::read(&ORPHAN);
    for block in registry().lock().expect("heap registry poisoned").iter() {
        total.add(&HeapAccount::read(block));
    }
    total
}

/// The orphan ledger alone: events that could not be attributed to a
/// registered thread (registration's own allocations, TLS-teardown
/// stragglers). Exactness harnesses subtract this from the process delta.
pub fn orphan_account() -> HeapAccount {
    HeapAccount::read(&ORPHAN)
}

/// The calling thread's own ledger (zeros before its first counted event).
/// This is the read the attribution guards build deltas from, so it must
/// stay allocation-free.
pub fn thread_account() -> HeapAccount {
    LOCAL
        .try_with(|slot| match slot.try_borrow().ok().as_deref() {
            Some(Some(reg)) => HeapAccount::read(&reg.0),
            _ => HeapAccount::default(),
        })
        .unwrap_or_default()
}

/// Number of thread blocks ever registered (exited threads included) and
/// how many belong to still-live threads, as `(total, live)`.
pub fn thread_blocks() -> (usize, usize) {
    let reg = registry().lock().expect("heap registry poisoned");
    let live = reg.iter().filter(|b| !b.retired.load(Ordering::Relaxed)).count();
    (reg.len(), live)
}

/// Whether a [`CountingAlloc`](crate::CountingAlloc) has observed any
/// traffic in this process. `false` means every counter and guard delta
/// will read zero — callers can skip exporting dead metrics.
pub fn counting_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Ensures the calling thread's counter block exists, so a measurement
/// window opened right after never has this thread's registration bytes
/// counted as workload (they land on the orphan ledger either way, but
/// pinning up front keeps them out of the window entirely). Harmless and
/// cheap when already registered; registers nothing when no
/// [`CountingAlloc`](crate::CountingAlloc) is installed — the block would
/// simply stay at zero, which is also fine.
pub fn pin_thread() {
    let _ = LOCAL.try_with(register);
}
