//! Allocation observability for CollectionSwitch (cs-heap).
//!
//! The paper selects collections on time and memory footprint; the
//! workspace's models also price *allocation churn* — but until this crate
//! nothing ever **observed** it. cs-heap closes the loop with three pieces,
//! all dependency-free:
//!
//! 1. [`CountingAlloc`] — a `#[global_allocator]` wrapper around
//!    [`std::alloc::System`] that counts every alloc/dealloc/realloc
//!    (events and bytes) on per-thread, cache-padded counters. The hot path
//!    performs zero shared writes; the process account is the exact sum of
//!    the per-thread ledgers (plus a cold-path orphan ledger). Opt-in:
//!    only binaries that *install* it pay for it — the library crates
//!    merely read counters, which are all zero otherwise.
//! 2. [`AllocGuard`] — scoped per-site attribution: the cs-runtime op path
//!    and the cs-core handle path bracket each monitored op so its
//!    `alloc_count`/`alloc_bytes` delta rides the flushed
//!    `WorkloadProfile` exactly like sampled wall time. Guards nest
//!    without double-counting (see the exclusion-ledger notes on
//!    [`AllocGuard`]).
//! 3. [`process_account`] / [`peak_rss_bytes`] — the process-level heap
//!    and RSS observables exported as `cs_heap_*` metrics and stamped onto
//!    bench artifacts.
//!
//! ## Installing the allocator (bench/test binaries only)
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cs_heap::CountingAlloc = cs_heap::CountingAlloc::new();
//! ```
//!
//! ## Attribution exactness (the documented sampling model)
//!
//! With the allocator installed and `sample_mask == 0` (every op sampled),
//! the sum of per-site attributed bytes over any quiescent window equals
//! the sum of the participating threads' ledger deltas, provided all
//! allocation on those threads happens inside guards; and the process
//! account equals Σ thread ledgers + orphan ledger bit-for-bit at any
//! quiescent point. With `sample_mask > 0` the runtime attributes sampled
//! deltas scaled by `sample_mask + 1` — an unbiased estimate, not an exact
//! partition. `BENCH_alloc.json`'s CI gate asserts the exact case;
//! `tests/exactness.rs` stresses it under 4 threads.

#![deny(missing_docs)]

mod counters;
mod guard;

pub use counters::{
    counting_active, orphan_account, pin_thread, process_account, thread_account,
    thread_blocks, HeapAccount,
};
pub use guard::{AllocDelta, AllocGuard};

use std::alloc::{GlobalAlloc, Layout, System};

use counters::Event;

/// A counting wrapper around the system allocator. Install it with
/// `#[global_allocator]` in binaries that want heap observability; see the
/// crate docs. Zero-sized; all state lives in the per-thread ledgers.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const, for `static` installation).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

// SAFETY: delegates every operation verbatim to `System` and only adds
// counter bookkeeping after the fact; layout contracts are untouched.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            counters::note(Event::Alloc, layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            counters::note(Event::Alloc, layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        counters::note(Event::Dealloc, layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Ledger convention (see HeapAccount): a realloc is a free of
            // the old block plus an allocation of the new one, and is
            // additionally counted on the realloc ledger.
            counters::note(Event::Dealloc, layout.size() as u64);
            counters::note(Event::Alloc, new_size as u64);
            counters::note(Event::Realloc, new_size as u64);
        }
        new_ptr
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `0` where unavailable (non-Linux, restricted
/// procfs). A coarse, kernel-truth complement to the allocator ledgers:
/// RSS sees mapping reuse and fragmentation the byte counters cannot.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// How long this process has been alive.
///
/// On Linux this is kernel truth: the process start time from field 22 of
/// `/proc/self/stat` (clock ticks since boot) subtracted from
/// `/proc/uptime` — correct even for code that loads this crate long after
/// `main` started. Elsewhere (or under restricted procfs) it degrades to
/// time since this function was first called, which still yields a
/// monotone, strictly increasing uptime gauge.
pub fn process_uptime() -> std::time::Duration {
    #[cfg(target_os = "linux")]
    {
        if let Some(d) = proc_uptime() {
            return d;
        }
    }
    fallback_uptime()
}

#[cfg(target_os = "linux")]
fn proc_uptime() -> Option<std::time::Duration> {
    // /proc/uptime: "<seconds since boot> <idle seconds>".
    let boot_secs: f64 = std::fs::read_to_string("/proc/uptime")
        .ok()?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    // /proc/self/stat field 22 (1-based) is starttime in clock ticks since
    // boot. The comm field (2) can contain spaces but is parenthesized, so
    // split after the last ')': field 22 overall is index 19 of the tail.
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let tail = &stat[stat.rfind(')')? + 1..];
    let start_ticks: f64 = tail.split_whitespace().nth(19)?.parse().ok()?;
    // USER_HZ is fixed at 100 on every Linux ABI this repo targets; reading
    // it portably needs sysconf, which would drag in libc for one constant.
    let start_secs = start_ticks / 100.0;
    let up = boot_secs - start_secs;
    if up.is_finite() && up >= 0.0 {
        Some(std::time::Duration::from_secs_f64(up))
    } else {
        None
    }
}

fn fallback_uptime() -> std::time::Duration {
    use std::sync::OnceLock;
    static FIRST_SEEN: OnceLock<std::time::Instant> = OnceLock::new();
    FIRST_SEEN.get_or_init(std::time::Instant::now).elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_uptime_is_positive_and_monotone() {
        // Both /proc sources tick at 10ms granularity, so a freshly
        // started process can legitimately read zero — sample, wait past
        // a tick, and require the clock to have advanced.
        let a = process_uptime();
        std::thread::sleep(std::time::Duration::from_millis(25));
        let b = process_uptime();
        assert!(b > std::time::Duration::ZERO, "uptime must be positive");
        assert!(b > a, "uptime must advance: {a:?} -> {b:?}");
    }

    #[test]
    fn accounts_default_to_zero_without_installation() {
        // This test binary does NOT install CountingAlloc, so every ledger
        // read must degrade to zeros, never panic.
        assert_eq!(thread_account(), HeapAccount::default());
        assert!(!counting_active());
        let p = process_account();
        assert_eq!(p.alloc_bytes, 0);
        assert_eq!(p.live_bytes(), 0);
    }

    #[test]
    fn pin_thread_registers_a_block() {
        pin_thread();
        let (total, live) = thread_blocks();
        assert!(total >= 1, "pin registered a block");
        assert!(live >= 1);
        // Still zero traffic: registration does not invent events on the
        // thread ledger.
        assert_eq!(thread_account(), HeapAccount::default());
    }

    #[test]
    fn delta_arithmetic() {
        let a = HeapAccount {
            alloc_count: 10,
            alloc_bytes: 1000,
            dealloc_count: 4,
            dealloc_bytes: 400,
            realloc_count: 1,
            realloc_bytes: 64,
        };
        let b = HeapAccount {
            alloc_count: 4,
            alloc_bytes: 300,
            dealloc_count: 1,
            dealloc_bytes: 100,
            realloc_count: 0,
            realloc_bytes: 0,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.alloc_count, 6);
        assert_eq!(d.alloc_bytes, 700);
        assert_eq!(d.live_bytes(), 700 - 300);
        assert_eq!(a.live_bytes(), 600);
    }

    #[test]
    fn peak_rss_is_sane() {
        let rss = peak_rss_bytes();
        // On Linux this process certainly maps more than a megabyte; on
        // other platforms the helper degrades to 0.
        if cfg!(target_os = "linux") {
            assert!(rss > 1 << 20, "VmHWM parsed: {rss}");
        }
    }
}
