//! Scoped per-site allocation attribution.
//!
//! An [`AllocGuard`] brackets one monitored operation: it snapshots the
//! calling thread's heap ledger on [`begin`](AllocGuard::begin) and returns
//! the allocation delta on [`finish`](AllocGuard::finish). Guards nest
//! correctly: a finished inner guard's attribution is *excluded* from every
//! enclosing guard, so when sites call each other (a user `Hash` impl
//! touching another monitored collection) no byte is ever attributed
//! twice.
//!
//! ## The exclusion ledger
//!
//! A second thread-local monotonic pair `(count, bytes)` accumulates the
//! *net* attribution of every finished guard. A guard's delta is
//!
//! ```text
//! net = (ledger_now - ledger_at_begin) - (excluded_now - excluded_at_begin)
//! ```
//!
//! and on finish the guard adds its own `net` to the exclusion ledger. By
//! induction the exclusion growth inside any window equals the gross ledger
//! growth of all *finished* inner guards, which yields the partition
//! identity the attribution-exactness tests assert: over any sequence of
//! non-overlapping outermost guards that cover all allocation, the sum of
//! net deltas equals the thread's gross ledger delta exactly.
//!
//! Everything here is a handful of `Cell` reads and writes — the
//! `no-alloc-in-heap-count-path` lint keeps both `begin` and `finish`
//! allocation- and lock-free.

use std::cell::Cell;

use crate::counters::{counting_active, thread_account};

thread_local! {
    /// Monotonic (count, bytes) attributed by finished guards on this
    /// thread — the exclusion ledger.
    static EXCLUDED: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// The allocation delta one guard attributed to its site: allocation
/// events and bytes that occurred inside the guard's window but not inside
/// any nested guard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocation events attributed (alloc + alloc_zeroed + realloc).
    pub count: u64,
    /// Bytes attributed (requested sizes, the churn measure).
    pub bytes: u64,
}

/// A scoped attribution window over the calling thread's heap ledger.
/// Not `Clone`/`Copy`: each guard must be finished exactly once for the
/// exclusion ledger to stay consistent. Dropping a guard without calling
/// [`finish`](AllocGuard::finish) attributes nothing and excludes nothing —
/// its window simply dissolves into the enclosing guard's.
#[derive(Debug)]
#[must_use = "an unfinished guard attributes nothing"]
pub struct AllocGuard {
    /// Whether the process was counting when the window opened. An inert
    /// guard (no [`CountingAlloc`](crate::CountingAlloc) traffic yet) costs
    /// one relaxed atomic load per end and never touches the thread-local
    /// ledgers — monitored op paths pay for attribution only in processes
    /// that opted in.
    active: bool,
    start_count: u64,
    start_bytes: u64,
    excluded_count: u64,
    excluded_bytes: u64,
}

impl AllocGuard {
    /// Opens an attribution window at the thread's current ledger
    /// position. Costs two thread-local reads; allocation-free. When no
    /// counting allocator has observed traffic, the guard is inert: one
    /// atomic load, no thread-local access, zero delta on finish.
    #[inline]
    pub fn begin() -> AllocGuard {
        if !counting_active() {
            return AllocGuard {
                active: false,
                start_count: 0,
                start_bytes: 0,
                excluded_count: 0,
                excluded_bytes: 0,
            };
        }
        let ledger = thread_account();
        let (excluded_count, excluded_bytes) = EXCLUDED.with(Cell::get);
        AllocGuard {
            active: true,
            // Churn convention: allocation events only. The allocator's
            // ledger already folds a realloc's allocating half into
            // `alloc_*`, and dealloc traffic is deliberately not attributed
            // — freeing is the consequence of an earlier allocation, and
            // charging both ends would overstate churn by 2x.
            start_count: ledger.alloc_count,
            start_bytes: ledger.alloc_bytes,
            excluded_count,
            excluded_bytes,
        }
    }

    /// Closes the window, returning the net attribution and excluding it
    /// from every enclosing guard. Allocation-free.
    ///
    /// A guard that began inert stays inert even if counting started
    /// inside its window (only possible for the process's very first
    /// allocation): it neither attributes nor excludes, so the ledger
    /// arithmetic of any guards opened after activation is untouched.
    #[inline]
    pub fn finish(self) -> AllocDelta {
        if !self.active {
            return AllocDelta::default();
        }
        let ledger = thread_account();
        let gross_count = ledger.alloc_count.wrapping_sub(self.start_count);
        let gross_bytes = ledger.alloc_bytes.wrapping_sub(self.start_bytes);
        let (excl_count_now, excl_bytes_now) = EXCLUDED.with(Cell::get);
        let inner_count = excl_count_now.wrapping_sub(self.excluded_count);
        let inner_bytes = excl_bytes_now.wrapping_sub(self.excluded_bytes);
        // Saturating, not wrapping: a guard that (incorrectly) outlives an
        // overlapping sibling could otherwise underflow. Well-nested guards
        // never hit the clamp.
        let net = AllocDelta {
            count: gross_count.saturating_sub(inner_count),
            bytes: gross_bytes.saturating_sub(inner_bytes),
        };
        EXCLUDED.with(|e| {
            let (c, b) = e.get();
            e.set((c.wrapping_add(net.count), b.wrapping_add(net.bytes)));
        });
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: no #[global_allocator] in unit tests (the library must never
    // install one); deltas read zero here, and the arithmetic is what's
    // under test. Real counting is exercised in tests/exactness.rs, which
    // installs CountingAlloc for its own binary.

    #[test]
    fn uncounted_process_yields_zero_deltas() {
        let g = AllocGuard::begin();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        let d = g.finish();
        assert_eq!(d, AllocDelta::default());
    }

    #[test]
    fn nesting_arithmetic_is_consistent_without_traffic() {
        let outer = AllocGuard::begin();
        let inner = AllocGuard::begin();
        let di = inner.finish();
        let do_ = outer.finish();
        assert_eq!(di, AllocDelta::default());
        assert_eq!(do_, AllocDelta::default());
    }
}
