//! Guard-nesting property test (ISSUE 8 satellite): inner site attribution
//! never leaks into the outer site, at any nesting shape.
//!
//! Installs [`CountingAlloc`] and generates random guard trees; each node
//! allocates a known payload at its own level — `boxes` 64-byte boxes plus
//! one `boxes * 8`-byte holding buffer, both of *exactly known* requested
//! size, so every node's net attribution is asserted with equality: its own
//! payload, no more (no child leaked outward), no less (nothing of its own
//! was stolen by a child). The root's subtree gross must also partition the
//! thread's ledger delta exactly.

use cs_heap::{pin_thread, AllocDelta, AllocGuard, CountingAlloc};
use proptest::{proptest, Strategy};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A guard tree: each node allocates its payload at its own level, with
/// `children` evaluated between the two halves of the payload.
#[derive(Debug, Clone)]
struct Node {
    boxes: usize,
    children: Vec<Node>,
}

fn node_strategy(depth: u32) -> proptest::BoxedStrategy<Node> {
    if depth == 0 {
        (1usize..6)
            .prop_map(|boxes| Node {
                boxes,
                children: Vec::new(),
            })
            .boxed()
    } else {
        (1usize..6, 0usize..4)
            .prop_map(move |(boxes, n_children)| Node {
                boxes,
                children: (0..n_children)
                    .map(|i| Node {
                        boxes: 1 + (boxes + i) % 5,
                        children: if depth > 1 && i % 2 == 0 {
                            vec![Node {
                                boxes: 1 + i,
                                children: Vec::new(),
                            }]
                        } else {
                            Vec::new()
                        },
                    })
                    .collect(),
            })
            .boxed()
    }
}

const BOX_BYTES: u64 = 64;
const PTR_BYTES: u64 = 8;

/// Runs the tree under guards, appending `(boxes, net)` per node in
/// post-order, and returns the gross bytes of this subtree's window.
/// `nets` is pre-allocated by the caller so its pushes never allocate
/// inside a guard window.
fn run(node: &Node, nets: &mut Vec<(usize, AllocDelta)>) -> u64 {
    let g = AllocGuard::begin();
    // Half the payload before the children, half after: leakage in either
    // direction would show up.
    let head = node.boxes / 2;
    let mut held: Vec<Box<[u8; 64]>> = Vec::with_capacity(node.boxes);
    for _ in 0..head {
        held.push(Box::new([0u8; 64]));
    }
    let mut inner_gross = 0u64;
    for child in &node.children {
        inner_gross += run(child, nets);
    }
    for _ in head..node.boxes {
        held.push(Box::new([0u8; 64]));
    }
    std::hint::black_box(&held);
    drop(held);
    let net = g.finish();
    nets.push((node.boxes, net));
    net.bytes + inner_gross
}

proptest! {
    #[test]
    fn inner_attribution_never_leaks_outward(tree in node_strategy(2)) {
        pin_thread();
        // Pre-size the harness's own bookkeeping so nothing it does
        // allocates during the measurement window.
        let mut nets: Vec<(usize, AllocDelta)> = Vec::with_capacity(256);
        let before = cs_heap::thread_account();
        let gross_claim = run(&tree, &mut nets);
        let delta = cs_heap::thread_account().delta_since(&before);

        // Partition identity: the nets of all guards sum to the thread's
        // gross churn over the window — nothing lost, nothing counted
        // twice, at any nesting shape.
        assert_eq!(
            gross_claim, delta.alloc_bytes,
            "sum of nets must partition the thread's gross churn"
        );

        // Per-node exactness: each node attributes precisely its own
        // payload — `boxes` 64-byte boxes plus its one `boxes * 8`-byte
        // holding buffer — and precisely `boxes + 1` allocation events.
        for (boxes, net) in &nets {
            let b = *boxes as u64;
            let own_bytes = b * BOX_BYTES + b * PTR_BYTES;
            assert_eq!(
                net.bytes, own_bytes,
                "node with {boxes} boxes attributed {} bytes, own payload is {own_bytes}",
                net.bytes
            );
            assert_eq!(
                net.count,
                b + 1,
                "node with {boxes} boxes attributed {} events",
                net.count
            );
        }
    }
}
