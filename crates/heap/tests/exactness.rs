//! Multi-thread attribution exactness (ISSUE 8 satellite).
//!
//! Installs [`CountingAlloc`] for this test binary and stresses the
//! documented exactness identity under 4 threads: per-site guard deltas,
//! per-thread ledger deltas, and the process-global account must agree
//! exactly when all workload allocation happens inside guards.
//!
//! No libtest harness (`harness = false` in Cargo.toml): the identity
//! partitions the *entire* process account across threads this binary
//! spawned, and libtest's harness threads allocate at unpredictable
//! times inside the measurement window. A plain `main` owns every
//! thread in the process; a failed assertion still exits nonzero.

use std::sync::{Arc, Barrier};

use cs_heap::{
    orphan_account, pin_thread, process_account, thread_account, AllocGuard, CountingAlloc,
    HeapAccount,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const THREADS: usize = 4;
const SITES: usize = 3;
const ROUNDS: usize = 200;

/// Per-thread workload: ROUNDS rounds, each attributing a known-shape
/// allocation burst to each of SITES sites. Returns (per-site deltas,
/// thread gross churn delta).
///
/// After self-snapshotting, the worker parks on `measured` and stays
/// parked until `release`: thread teardown allocates (TLS destructors,
/// std exit machinery) into this thread's still-live block, so the main
/// thread must take its process-wide snapshot while every worker is
/// quiescent — barrier waits are allocation-free, a returning thread is
/// not.
fn worker(
    id: usize,
    measured: &Barrier,
    release: &Barrier,
) -> ([cs_heap::AllocDelta; SITES], HeapAccount) {
    pin_thread();
    let before = thread_account();
    let mut per_site = [cs_heap::AllocDelta::default(); SITES];
    for round in 0..ROUNDS {
        for (site, acc) in per_site.iter_mut().enumerate() {
            let g = AllocGuard::begin();
            // Deterministic churn, different per site/thread/round so no
            // two sites could pass by symmetric accident.
            let n = 16 + (site * 8) + (id * 4) + (round % 7);
            let v: Vec<u64> = (0..n as u64).collect();
            let s = format!("site-{site}-{id}-{}", v.len());
            std::hint::black_box((&v, &s));
            drop((v, s));
            let d = g.finish();
            acc.count += d.count;
            acc.bytes += d.bytes;
        }
    }
    let delta = thread_account().delta_since(&before);
    measured.wait();
    release.wait();
    (per_site, delta)
}

fn main() {
    // Quiesce: pin the main thread and snapshot the world.
    pin_thread();
    let process_before = process_account();
    let main_before = thread_account();
    let orphan_before = orphan_account();

    let barrier = Arc::new(Barrier::new(THREADS));
    // +1: the main thread participates, so it can snapshot the process
    // while every worker is parked between `measured` and `release` —
    // worker-exit allocations land outside the measurement window.
    let measured = Arc::new(Barrier::new(THREADS + 1));
    let release = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|id| {
            let barrier = Arc::clone(&barrier);
            let measured = Arc::clone(&measured);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                barrier.wait();
                worker(id, &measured, &release)
            })
        })
        .collect();
    measured.wait();

    let process_delta = process_account().delta_since(&process_before);
    let main_delta = thread_account().delta_since(&main_before);
    let orphan_delta = orphan_account().delta_since(&orphan_before);

    release.wait();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Identity 1 — per-thread partition: every thread's site-attributed
    // sum equals its gross ledger churn exactly (all workload allocation
    // happened inside guards, nothing leaked, nothing double-counted).
    let mut sites_total_bytes = 0u64;
    let mut sites_total_count = 0u64;
    let mut threads_churn_bytes = 0u64;
    let mut threads_churn_count = 0u64;
    for (id, (per_site, delta)) in results.iter().enumerate() {
        let site_bytes: u64 = per_site.iter().map(|d| d.bytes).sum();
        let site_count: u64 = per_site.iter().map(|d| d.count).sum();
        let churn_bytes = delta.alloc_bytes;
        let churn_count = delta.alloc_count;
        assert_eq!(
            site_bytes, churn_bytes,
            "thread {id}: attributed bytes != thread ledger churn"
        );
        assert_eq!(
            site_count, churn_count,
            "thread {id}: attributed events != thread ledger churn"
        );
        assert!(site_bytes > 0, "thread {id} must have allocated");
        sites_total_bytes += site_bytes;
        sites_total_count += site_count;
        threads_churn_bytes += churn_bytes;
        threads_churn_count += churn_count;
    }
    assert_eq!(sites_total_bytes, threads_churn_bytes);
    assert_eq!(sites_total_count, threads_churn_count);

    // Identity 2 — the process account is the sum of its parts: worker
    // ledgers + the main thread (spawn/join machinery allocates here) +
    // the orphan ledger (worker TLS registration, teardown stragglers).
    // Nothing else allocates in this single-test binary between the two
    // quiescent snapshots.
    let accounted_alloc_bytes = results
        .iter()
        .map(|(_, d)| d.alloc_bytes)
        .sum::<u64>()
        + main_delta.alloc_bytes
        + orphan_delta.alloc_bytes;
    assert_eq!(
        process_delta.alloc_bytes, accounted_alloc_bytes,
        "process alloc bytes must equal workers + main + orphan exactly"
    );
    let accounted_alloc_count = results
        .iter()
        .map(|(_, d)| d.alloc_count)
        .sum::<u64>()
        + main_delta.alloc_count
        + orphan_delta.alloc_count;
    assert_eq!(
        process_delta.alloc_count, accounted_alloc_count,
        "process alloc events must equal workers + main + orphan exactly"
    );

    // And the ledger is self-consistent: everything the workload allocated
    // and dropped was also freed somewhere in the process.
    assert!(process_delta.dealloc_count > 0);
}
