//! Guard-level churn shapes under a real counting allocator: a per-node
//! boxed workload must attribute many more allocation events than an
//! amortized-array workload of the same element count — the observable the
//! LinkedList→ArrayList switch in `BENCH_alloc.json` rides on.
//!
//! Own test binary (not in `exactness.rs`): that test needs a quiescent
//! process-account window, which a concurrently running sibling test would
//! pollute.

use cs_heap::{pin_thread, AllocGuard, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn guards_measure_real_churn_shapes() {
    pin_thread();
    let g = AllocGuard::begin();
    let mut boxed: Vec<Box<u64>> = Vec::new();
    for i in 0..256u64 {
        boxed.push(Box::new(i));
    }
    let node_like = g.finish();

    let g = AllocGuard::begin();
    let mut arr: Vec<u64> = Vec::new();
    for i in 0..256u64 {
        arr.push(i);
    }
    let array_like = g.finish();

    std::hint::black_box((&boxed, &arr));
    assert!(
        node_like.count > array_like.count * 4,
        "per-node boxes ({}) vs amortized array ({}) events",
        node_like.count,
        array_like.count
    );
    assert!(node_like.bytes > 0 && array_like.bytes > 0);
    assert!(
        node_like.bytes > array_like.bytes,
        "nodes carry pointer overhead: {} vs {}",
        node_like.bytes,
        array_like.bytes
    );
}
