//! The torn-write chaos harness (ISSUE 6 tentpole).
//!
//! Injects every fault class the durability story promises to survive —
//! prefix truncation, single-bit flips, torn in-place mixes of two
//! snapshot generations, duplicated/reordered records, and a simulated
//! kill during the atomic write protocol — and checks the loader's
//! contract exactly:
//!
//! * load always succeeds (no panic, no `Err` for corrupt content),
//! * every intact record is salvaged (maximal salvage),
//! * every salvaged record is bit-identical to a record some writer
//!   produced (decode-what-you-salvage),
//! * the quarantine counters account for exactly the damaged records.
//!
//! The workloads here use ASCII site names and small counters, so record
//! payloads cannot contain the sync marker — which makes the *exact*
//! quarantine accounting assertions deterministic (a flipped byte damages
//! exactly one frame, and resynchronization always lands on a true frame
//! boundary).

use cs_state::writer::{FRAME_OVERHEAD, HEADER_LEN, SYNC};
use cs_state::{
    decode_lenient, encode_snapshot, load_lenient, sweep_stale_temps, write_atomic,
    CorruptionReason, MetaRecord, ModelBlobRecord, ProfileSummaryRecord, Record, SiteRecord,
    Snapshot,
};

fn sample_snapshot() -> Snapshot {
    Snapshot {
        meta: Some(MetaRecord {
            seq: 11,
            created_unix_nanos: 1_000,
            rule: "R_time".into(),
            site_count: 4,
        }),
        sites: vec![
            site("cursor", "list", "array", "hasharray", 12, 1, 240),
            site("queue", "list", "linked", "array", 9, 1, 180),
            site("dedup", "set", "chained", "array", 7, 1, 140),
            site("index", "map", "chained", "open-koloboke", 15, 2, 300),
        ],
        models: vec![ModelBlobRecord {
            family: "lists".into(),
            text: "# collectionswitch model v1\nabstraction list\n".into(),
        }],
        profiles: vec![ProfileSummaryRecord {
            site: "cursor".into(),
            entries: vec![("profiles_ingested".into(), 240), ("ops".into(), 48_000)],
        }],
    }
}

fn site(
    name: &str,
    abstraction: &str,
    default_kind: &str,
    current_kind: &str,
    rounds: u64,
    switches: u64,
    history: u64,
) -> SiteRecord {
    SiteRecord {
        name: name.into(),
        abstraction: abstraction.into(),
        default_kind: default_kind.into(),
        current_kind: current_kind.into(),
        rounds,
        switches,
        history_instances: history,
    }
}

/// Byte ranges `[start, end)` of every frame in an encoded image, found
/// by scanning for the sync marker (valid for payloads that cannot
/// contain it, which holds for this harness's ASCII/small-integer data).
fn frame_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut starts: Vec<usize> = Vec::new();
    let mut i = HEADER_LEN;
    while i + SYNC.len() <= bytes.len() {
        if bytes[i..i + SYNC.len()] == SYNC {
            starts.push(i);
            let plen =
                u32::from_le_bytes(bytes[i + 5..i + 9].try_into().unwrap()) as usize;
            i += FRAME_OVERHEAD + plen;
        } else {
            i += 1;
        }
    }
    let mut ranges = Vec::with_capacity(starts.len());
    for (idx, &start) in starts.iter().enumerate() {
        let end = starts.get(idx + 1).copied().unwrap_or(bytes.len());
        ranges.push((start, end));
    }
    ranges
}

/// Asserts every salvaged record is bit-identical to one of `originals`.
fn assert_salvaged_subset(salvaged: &Snapshot, originals: &[Record]) {
    for record in salvaged.records() {
        assert!(
            originals.contains(&record),
            "salvaged record not among originals: {record:?}"
        );
    }
}

#[test]
fn truncation_at_every_byte_salvages_the_intact_prefix() {
    let snapshot = sample_snapshot();
    let bytes = encode_snapshot(&snapshot);
    let originals = snapshot.records();
    let ranges = frame_ranges(&bytes);
    assert_eq!(ranges.len(), originals.len());

    for cut in 0..=bytes.len() {
        let report = decode_lenient(&bytes[..cut]);
        let expected_loaded = ranges.iter().filter(|&&(_, end)| end <= cut).count() as u64;
        assert_eq!(
            report.stats.records_loaded, expected_loaded,
            "cut at {cut}: every fully contained record must be salvaged"
        );
        assert_salvaged_subset(&report.snapshot, &originals);
        // Exact accounting: a cut strictly inside a frame quarantines
        // exactly that frame; a cut on a boundary (or inside the header)
        // quarantines nothing.
        let inside_frame = ranges
            .iter()
            .any(|&(start, end)| cut > start && cut < end);
        let expected_quarantined = u64::from(inside_frame);
        assert_eq!(
            report.stats.records_quarantined(),
            expected_quarantined,
            "cut at {cut}"
        );
        assert_eq!(report.stats.header_ok, cut >= HEADER_LEN, "cut at {cut}");
    }
}

#[test]
fn single_bit_flip_quarantines_exactly_one_record() {
    let snapshot = sample_snapshot();
    let bytes = encode_snapshot(&snapshot);
    let originals = snapshot.records();
    let total = originals.len() as u64;

    for i in 0..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            let report = decode_lenient(&corrupt);
            assert_salvaged_subset(&report.snapshot, &originals);
            if i < HEADER_LEN {
                // Header damage costs the header, never a record.
                assert!(!report.stats.header_ok, "flip at header byte {i}");
                assert_eq!(report.stats.records_loaded, total, "flip at {i}");
                assert_eq!(report.stats.records_quarantined(), 0, "flip at {i}");
            } else {
                assert_eq!(
                    report.stats.records_loaded,
                    total - 1,
                    "flip at byte {i} bit {bit}: exactly one record lost"
                );
                assert_eq!(
                    report.stats.records_quarantined(),
                    1,
                    "flip at byte {i} bit {bit}: exactly one record quarantined"
                );
                assert!(report.stats.header_ok);
                assert_eq!(report.incidents.len(), 1, "flip at byte {i} bit {bit}");
            }
        }
    }
}

#[test]
fn torn_mix_of_two_generations_salvages_only_real_records() {
    let old = sample_snapshot();
    let mut new = sample_snapshot();
    new.meta.as_mut().unwrap().seq = 12;
    new.sites[0].current_kind = "adaptive".into();
    new.sites[2].current_kind = "open-fastutil".into();
    new.profiles.clear(); // generations may differ in length
    let old_bytes = encode_snapshot(&old);
    let new_bytes = encode_snapshot(&new);
    let mut union = old.records();
    union.extend(new.records());

    let limit = old_bytes.len().min(new_bytes.len());
    for k in 0..=limit {
        // An unsafe in-place writer dying mid-overwrite: new prefix, old
        // suffix. (The atomic writer makes this impossible at the file
        // level; the loader must survive it anyway.)
        let mut torn = Vec::with_capacity(old_bytes.len());
        torn.extend_from_slice(&new_bytes[..k]);
        torn.extend_from_slice(&old_bytes[k..]);
        let report = decode_lenient(&torn);
        assert_salvaged_subset(&report.snapshot, &union);
        // The seam destroys at most a bounded window of records; the
        // stream before and after it must still be salvaged.
        let lost = report.stats.records_quarantined();
        assert!(lost <= 2, "seam at {k} lost {lost} records");
    }
}

#[test]
fn duplicated_and_reordered_records_dedupe_last_wins() {
    let snapshot = sample_snapshot();
    let bytes = encode_snapshot(&snapshot);
    let ranges = frame_ranges(&bytes);
    let originals = snapshot.records();

    // Rebuild the image with the frames reversed and two of them
    // duplicated (the replay shape a torn append-log would produce).
    let mut shuffled = bytes[..HEADER_LEN].to_vec();
    for &(start, end) in ranges.iter().rev() {
        shuffled.extend_from_slice(&bytes[start..end]);
    }
    shuffled.extend_from_slice(&bytes[ranges[0].0..ranges[0].1]);
    shuffled.extend_from_slice(&bytes[ranges[2].0..ranges[2].1]);

    let report = decode_lenient(&shuffled);
    assert!(report.stats.header_ok);
    assert_eq!(report.stats.records_loaded, originals.len() as u64 + 2);
    assert_eq!(report.stats.records_quarantined(), 0);
    assert_eq!(report.stats.duplicates_dropped, 2);
    assert_salvaged_subset(&report.snapshot, &originals);
    assert_eq!(report.snapshot.record_count(), originals.len());
    // Same content regardless of record order.
    assert_eq!(report.snapshot.sites.len(), snapshot.sites.len());
    for site in &snapshot.sites {
        assert!(report.snapshot.sites.contains(site), "missing {site:?}");
    }
}

#[test]
fn kill_during_snapshot_leaves_previous_generation_intact() {
    let dir = std::env::temp_dir().join(format!("cs-state-chaos-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.css");

    let old = sample_snapshot();
    write_atomic(&path, &old).unwrap();

    // A process killed mid-save leaves a partial temp next to the target;
    // the target itself is never touched until the rename.
    let mut new = sample_snapshot();
    new.meta.as_mut().unwrap().seq = 12;
    let new_bytes = encode_snapshot(&new);
    std::fs::write(dir.join("state.css.tmp-99999-7"), &new_bytes[..new_bytes.len() / 2])
        .unwrap();

    let report = load_lenient(&path).unwrap();
    assert!(report.stats.is_clean(), "{:?}", report.stats);
    assert_eq!(report.snapshot, old, "previous generation must load intact");

    // Next start reclaims the garbage, then saves normally.
    assert_eq!(sweep_stale_temps(&path).unwrap(), 1);
    write_atomic(&path, &new).unwrap();
    let report = load_lenient(&path).unwrap();
    assert!(report.stats.is_clean());
    assert_eq!(report.snapshot.meta.as_ref().unwrap().seq, 12);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_region_corruption_is_accounted_per_region() {
    let snapshot = sample_snapshot();
    let bytes = encode_snapshot(&snapshot);
    let ranges = frame_ranges(&bytes);
    let originals = snapshot.records();

    // Damage the payloads of two non-adjacent frames.
    let mut corrupt = bytes.clone();
    corrupt[ranges[1].0 + FRAME_OVERHEAD] ^= 0xFF;
    corrupt[ranges[4].0 + FRAME_OVERHEAD] ^= 0xFF;
    let report = decode_lenient(&corrupt);
    assert_eq!(report.stats.records_loaded, originals.len() as u64 - 2);
    assert_eq!(report.stats.records_quarantined(), 2);
    assert_eq!(report.stats.crc_failures, 2);
    assert_eq!(report.incidents.len(), 2);
    for incident in &report.incidents {
        assert_eq!(incident.reason, CorruptionReason::CrcMismatch);
    }
    assert_salvaged_subset(&report.snapshot, &originals);
}
