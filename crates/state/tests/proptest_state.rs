//! Property tests for the decode-what-you-salvage invariant (ISSUE 6
//! satellite): round-tripping an arbitrary snapshot through arbitrary
//! prefix truncation or single-byte corruption never panics, and every
//! record the loader yields verified its checksum — i.e. is bit-identical
//! to a record the writer produced.
//!
//! Unlike the chaos harness (which uses sync-free payloads to assert
//! *exact* quarantine accounting), these inputs are adversarial: random
//! u64 counters can embed bytes that look like sync markers, so the
//! loader may attempt false frames mid-payload. The invariant under test
//! is that such attempts can only ever *fail* (and be quarantined), never
//! fabricate a record.

use proptest::prelude::*;
use proptest::collection;

use cs_state::{
    decode_lenient, encode_snapshot, MetaRecord, ModelBlobRecord, ProfileSummaryRecord, Record,
    SiteRecord, Snapshot,
};

fn name_strategy() -> BoxedStrategy<String> {
    collection::vec(0usize..36, 1..12)
        .prop_map(|idxs| {
            idxs.into_iter()
                .map(|i| b"abcdefghijklmnopqrstuvwxyz0123456789"[i] as char)
                .collect()
        })
        .boxed()
}

fn site_strategy() -> BoxedStrategy<SiteRecord> {
    (
        name_strategy(),
        0usize..3,
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    )
        .prop_map(|(name, abs, (rounds, switches, history))| SiteRecord {
            name,
            abstraction: ["list", "set", "map"][abs].to_owned(),
            default_kind: "array".into(),
            current_kind: "hasharray".into(),
            rounds,
            switches,
            history_instances: history,
        })
        .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<Snapshot> {
    (
        (0u64..u64::MAX, 0u64..u64::MAX),
        // Indexed names keep site keys unique, so last-wins dedup cannot
        // silently drop a generated record and break the count checks.
        collection::vec(site_strategy(), 0..8).prop_map(|mut sites| {
            for (i, site) in sites.iter_mut().enumerate() {
                site.name = format!("{}-{i}", site.name);
            }
            sites
        }),
        collection::vec((name_strategy(), 0u64..u64::MAX), 0..4),
    )
        .prop_map(|((seq, created), sites, counters)| Snapshot {
            meta: Some(MetaRecord {
                seq,
                created_unix_nanos: created,
                rule: "R_time".into(),
                site_count: sites.len() as u32,
            }),
            sites,
            models: vec![ModelBlobRecord {
                family: "lists".into(),
                text: "# collectionswitch model v1\n".into(),
            }],
            profiles: vec![ProfileSummaryRecord {
                site: "p".into(),
                entries: counters,
            }],
        })
        .boxed()
}

/// Every record the loader yields must be bit-identical to a written one.
fn assert_salvage_invariant(salvaged: &Snapshot, originals: &[Record]) {
    for record in salvaged.records() {
        assert!(
            originals.contains(&record),
            "loader fabricated a record: {record:?}"
        );
    }
}

proptest! {
    #[test]
    fn truncated_prefix_never_panics_and_never_fabricates(
        snapshot in snapshot_strategy(),
        cut_seed in 0usize..usize::MAX,
    ) {
        let bytes = encode_snapshot(&snapshot);
        let originals = snapshot.records();
        let cut = cut_seed % (bytes.len() + 1);
        let report = decode_lenient(&bytes[..cut]);
        assert_salvage_invariant(&report.snapshot, &originals);
        // Loss is accounted: what was written is either loaded,
        // quarantined, or beyond the cut.
        prop_assert!(report.stats.records_loaded <= originals.len() as u64);
        prop_assert!(report.stats.bytes_total == cut as u64);
    }

    #[test]
    fn single_byte_corruption_never_panics_and_never_fabricates(
        snapshot in snapshot_strategy(),
        position_seed in 0usize..usize::MAX,
        xor in 1u64..256,
    ) {
        let mut bytes = encode_snapshot(&snapshot);
        let originals = snapshot.records();
        let position = position_seed % bytes.len();
        bytes[position] ^= xor as u8;
        let report = decode_lenient(&bytes);
        assert_salvage_invariant(&report.snapshot, &originals);
        // A single damaged byte costs at most one real record; false frames
        // inside random payloads may add quarantine counts but never
        // loaded records.
        prop_assert!(report.stats.records_loaded + 1 >= originals.len() as u64);
    }

    #[test]
    fn clean_round_trip_is_lossless(snapshot in snapshot_strategy()) {
        let bytes = encode_snapshot(&snapshot);
        let report = decode_lenient(&bytes);
        prop_assert!(report.stats.is_clean());
        prop_assert_eq!(report.stats.records_loaded, snapshot.records().len() as u64);
        prop_assert_eq!(&report.snapshot.sites, &snapshot.sites);
        prop_assert_eq!(&report.snapshot.meta, &snapshot.meta);
    }
}
