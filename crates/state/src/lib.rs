//! # cs-state
//!
//! Crash-safe persistence for learned CollectionSwitch selection state —
//! the durability layer behind fleet-mode warm start.
//!
//! The paper's value proposition is *amortized* learning: monitoring cost
//! is paid once, better collection choices keep paying off. That breaks at
//! every process restart unless the learned state (per-site decisions,
//! calibrated model coefficients, profile summaries) survives the restart
//! — and it only *safely* survives if a half-written or bit-flipped
//! snapshot can never poison the next process. This crate provides that
//! guarantee with three pieces:
//!
//! * **A framed record format** ([`record`]): a 16-byte checksummed
//!   header, then one independently framed record per unit of state, each
//!   carrying a sync marker and its own CRC-32. Damage is contained to the
//!   records it touches.
//! * **An atomic writer** ([`writer`]): temp file + `fsync` + rename +
//!   parent-directory `fsync`. The target path always holds a complete
//!   old or complete new snapshot, never a mix; stale temps are swept on
//!   the next start.
//! * **A lenient loader** ([`reader`]): salvages every record that frames,
//!   checksums and decodes cleanly; **quarantines** everything else with
//!   per-reason counters and localized [`CorruptionIncident`]s — and never
//!   panics, whatever the input bytes.
//!
//! `cs-state` sits at the bottom of the workspace: it has no dependencies,
//! and both `cs-model` (atomic model-file saves) and `cs-core` (snapshot
//! export, warm-start import) build on it. The engine-facing surface —
//! *when* to snapshot, how to validate a warm-start record against the
//! live site manifest — lives in `cs-core`; this crate only guarantees
//! that whatever was written is either recovered intact or accounted as
//! lost.
//!
//! ## Quickstart
//!
//! ```
//! use cs_state::{load_lenient, write_atomic, MetaRecord, SiteRecord, Snapshot};
//!
//! let dir = std::env::temp_dir().join(format!("cs-state-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("selection.css");
//!
//! let snapshot = Snapshot {
//!     meta: Some(MetaRecord {
//!         seq: 1,
//!         created_unix_nanos: 0,
//!         rule: "R_time".into(),
//!         site_count: 1,
//!     }),
//!     sites: vec![SiteRecord {
//!         name: "IndexCursor:70".into(),
//!         abstraction: "list".into(),
//!         default_kind: "array".into(),
//!         current_kind: "hasharray".into(),
//!         rounds: 12,
//!         switches: 1,
//!         history_instances: 480,
//!     }],
//!     models: Vec::new(),
//!     profiles: Vec::new(),
//! };
//! write_atomic(&path, &snapshot).unwrap();
//!
//! let report = load_lenient(&path).unwrap();
//! assert!(report.stats.is_clean());
//! assert_eq!(report.snapshot.sites[0].current_kind, "hasharray");
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crc;
pub mod reader;
pub mod record;
pub mod writer;

pub use crc::{crc32, Crc32};
pub use reader::{
    decode_lenient, load_lenient, CorruptionIncident, CorruptionReason, LoadReport, SalvageStats,
    MAX_INCIDENTS,
};
pub use record::{
    MetaRecord, ModelBlobRecord, ProfileSummaryRecord, Record, SiteRecord, Snapshot,
};
pub use writer::{
    encode_snapshot, sweep_stale_temps, write_atomic, write_atomic_bytes, WriteReport,
    FORMAT_VERSION, MAX_PAYLOAD,
};

// Snapshots and load reports cross threads (the engine's persister sink
// runs on the analyzer thread); keep them Send + Sync by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<LoadReport>();
    assert_send_sync::<WriteReport>();
};
