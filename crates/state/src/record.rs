//! The snapshot record vocabulary and its binary payload encoding.
//!
//! A snapshot is a flat sequence of independently framed records (framing
//! lives in [`crate::writer`] / [`crate::reader`]); this module defines
//! what goes *inside* a frame. Payloads use a tiny fixed-endian cursor
//! format — little-endian integers and length-prefixed UTF-8 strings — so
//! decoding is bounds-checked at every step and a corrupt payload can
//! fail cleanly without panicking.
//!
//! Everything here is stringly typed on purpose: the store persists
//! variant *names* (`"hasharray"`, `"open-koloboke"`), not enum indices,
//! so a snapshot written by one build loads under another even if the
//! kind enums were reordered — the engine validates names against its
//! live site manifest at import time and degrades to cold start on
//! mismatch, instead of silently installing the wrong variant.

use std::fmt;

/// Upper bound on any single string field, in bytes. A length prefix
/// beyond this is treated as corruption, not an allocation request.
pub const MAX_STRING_LEN: usize = 4096;

/// Upper bound on the entries of a profile-summary record.
pub const MAX_PROFILE_ENTRIES: usize = 4096;

/// Snapshot-level metadata: one per snapshot, written first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaRecord {
    /// Writer-assigned snapshot sequence number (monotone per process).
    pub seq: u64,
    /// Wall-clock write time, nanoseconds since the Unix epoch.
    pub created_unix_nanos: u64,
    /// Name of the selection rule the writing engine ran.
    pub rule: String,
    /// Site records the writer intended to persist (a load that salvages
    /// fewer knows it lost some).
    pub site_count: u32,
}

/// Learned per-site selection state: the decision the engine reached for
/// one allocation context, plus enough counters to judge its maturity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRecord {
    /// Allocation-site name (the engine's context name).
    pub name: String,
    /// Abstraction name: `"list"`, `"set"` or `"map"`.
    pub abstraction: String,
    /// Developer-declared default variant at the time of the snapshot —
    /// the site's *fingerprint*: import refuses to apply the record when
    /// the live site declares a different default.
    pub default_kind: String,
    /// The variant the engine had selected.
    pub current_kind: String,
    /// Analysis rounds the site had completed.
    pub rounds: u64,
    /// Switches the site had performed.
    pub switches: u64,
    /// Instances aggregated into the site's workload history.
    pub history_instances: u64,
}

/// A calibrated cost model, carried as an opaque `cs-model` text blob.
///
/// `cs-state` deliberately does not parse the blob: model validation
/// (coefficient magnitude, NaN rejection) belongs to
/// `cs_model::persist::from_text`, which the engine invokes at import
/// with its own lenient fallback path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelBlobRecord {
    /// Model family: `"lists"`, `"sets"` or `"maps"`.
    pub family: String,
    /// The `cs-model` text format, verbatim.
    pub text: String,
}

/// Aggregate workload counters for one site, for warm-start diagnostics
/// and fleet dashboards (the engine does not feed these back into
/// selection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSummaryRecord {
    /// Allocation-site name.
    pub site: String,
    /// Named counters, e.g. `("profiles_ingested", 1024)`.
    pub entries: Vec<(String, u64)>,
}

/// Any record a snapshot can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Snapshot metadata.
    Meta(MetaRecord),
    /// Per-site selection state.
    Site(SiteRecord),
    /// A calibrated model blob.
    Model(ModelBlobRecord),
    /// Per-site workload counters.
    Profile(ProfileSummaryRecord),
}

/// Wire tags. Unknown tags are quarantined by the reader (forward
/// compatibility), so these values are append-only: never reuse one.
pub(crate) const KIND_META: u8 = 1;
pub(crate) const KIND_SITE: u8 = 2;
pub(crate) const KIND_MODEL: u8 = 3;
pub(crate) const KIND_PROFILE: u8 = 4;

impl Record {
    /// The record's wire tag.
    pub(crate) fn kind(&self) -> u8 {
        match self {
            Record::Meta(_) => KIND_META,
            Record::Site(_) => KIND_SITE,
            Record::Model(_) => KIND_MODEL,
            Record::Profile(_) => KIND_PROFILE,
        }
    }

    /// Stable name of the record type, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::Meta(_) => "meta",
            Record::Site(_) => "site",
            Record::Model(_) => "model",
            Record::Profile(_) => "profile",
        }
    }

    /// Encodes the payload (frame excluded).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Record::Meta(m) => {
                put_u64(&mut out, m.seq);
                put_u64(&mut out, m.created_unix_nanos);
                put_str(&mut out, &m.rule);
                put_u32(&mut out, m.site_count);
            }
            Record::Site(s) => {
                put_str(&mut out, &s.name);
                put_str(&mut out, &s.abstraction);
                put_str(&mut out, &s.default_kind);
                put_str(&mut out, &s.current_kind);
                put_u64(&mut out, s.rounds);
                put_u64(&mut out, s.switches);
                put_u64(&mut out, s.history_instances);
            }
            Record::Model(m) => {
                put_str(&mut out, &m.family);
                put_str(&mut out, &m.text);
            }
            Record::Profile(p) => {
                put_str(&mut out, &p.site);
                put_u32(&mut out, p.entries.len() as u32);
                for (key, value) in &p.entries {
                    put_str(&mut out, key);
                    put_u64(&mut out, *value);
                }
            }
        }
        out
    }

    /// Decodes a payload for `kind`.
    pub(crate) fn decode(kind: u8, payload: &[u8]) -> Result<Record, DecodeError> {
        let mut c = Cursor::new(payload);
        let record = match kind {
            KIND_META => Record::Meta(MetaRecord {
                seq: c.u64()?,
                created_unix_nanos: c.u64()?,
                rule: c.str(MAX_STRING_LEN)?,
                site_count: c.u32()?,
            }),
            KIND_SITE => Record::Site(SiteRecord {
                name: c.str(MAX_STRING_LEN)?,
                abstraction: c.str(MAX_STRING_LEN)?,
                default_kind: c.str(MAX_STRING_LEN)?,
                current_kind: c.str(MAX_STRING_LEN)?,
                rounds: c.u64()?,
                switches: c.u64()?,
                history_instances: c.u64()?,
            }),
            KIND_MODEL => Record::Model(ModelBlobRecord {
                family: c.str(MAX_STRING_LEN)?,
                // Model text can exceed the field cap: allow the full
                // payload (already bounded by the frame's MAX_PAYLOAD).
                text: c.str(usize::MAX)?,
            }),
            KIND_PROFILE => {
                let site = c.str(MAX_STRING_LEN)?;
                let n = c.u32()? as usize;
                if n > MAX_PROFILE_ENTRIES {
                    return Err(DecodeError::new(format!(
                        "profile entry count {n} exceeds cap {MAX_PROFILE_ENTRIES}"
                    )));
                }
                let mut entries = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    entries.push((c.str(MAX_STRING_LEN)?, c.u64()?));
                }
                Record::Profile(ProfileSummaryRecord { site, entries })
            }
            other => {
                return Err(DecodeError::new(format!("unknown record kind {other}")));
            }
        };
        c.finish()?;
        Ok(record)
    }
}

/// Why a checksum-valid payload still failed to decode (wrong field
/// layout, oversized string, trailing bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> DecodeError {
        DecodeError { message: message.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader: every accessor either yields a value or
/// a [`DecodeError`] — no indexing, no panics, regardless of input.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| {
                DecodeError::new(format!(
                    "payload truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.data.len().saturating_sub(self.pos)
                ))
            })?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self, cap: usize) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(DecodeError::new(format!(
                "string length {len} exceeds cap {cap}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new("string field is not valid UTF-8"))
    }

    /// Rejects trailing bytes: a payload that decodes but is longer than
    /// its fields is corrupt (or from an incompatible future layout).
    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.data.len() {
            return Err(DecodeError::new(format!(
                "{} trailing bytes after last field",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// The assembled, deduplicated content of a snapshot.
///
/// Built either directly (by the engine, for writing) or from a salvaged
/// record stream (by [`Snapshot::assemble`], which applies last-wins
/// deduplication so replayed or reordered records cannot double-apply).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Snapshot metadata, when a meta record survived.
    pub meta: Option<MetaRecord>,
    /// Per-site selection state, in first-seen order.
    pub sites: Vec<SiteRecord>,
    /// Calibrated model blobs, in first-seen order.
    pub models: Vec<ModelBlobRecord>,
    /// Per-site workload counters, in first-seen order.
    pub profiles: Vec<ProfileSummaryRecord>,
}

impl Snapshot {
    /// Flattens the snapshot back into its record stream, meta first —
    /// the write order, so early truncation loses the least-important
    /// records last (sites before profiles).
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(
            usize::from(self.meta.is_some())
                + self.sites.len()
                + self.models.len()
                + self.profiles.len(),
        );
        if let Some(meta) = &self.meta {
            out.push(Record::Meta(meta.clone()));
        }
        out.extend(self.sites.iter().cloned().map(Record::Site));
        out.extend(self.models.iter().cloned().map(Record::Model));
        out.extend(self.profiles.iter().cloned().map(Record::Profile));
        out
    }

    /// Assembles a snapshot from a salvaged record stream, deduplicating
    /// with last-wins semantics: sites key on `(abstraction, name)`,
    /// models on `family`, profiles on `site`, meta on itself. Returns
    /// the snapshot and the number of duplicate records dropped.
    ///
    /// Last-wins matches the append-oriented write path: if a writer ever
    /// emits a revised record for the same key later in the stream, the
    /// revision is the one that counts — and a *duplicated* record (the
    /// torn-write chaos case) collapses to one copy either way.
    pub fn assemble(records: Vec<Record>) -> (Snapshot, u64) {
        let mut snapshot = Snapshot::default();
        let mut duplicates = 0u64;
        for record in records {
            match record {
                Record::Meta(meta) => {
                    if snapshot.meta.replace(meta).is_some() {
                        duplicates += 1;
                    }
                }
                Record::Site(site) => {
                    let key = (site.abstraction.clone(), site.name.clone());
                    if let Some(existing) = snapshot
                        .sites
                        .iter_mut()
                        .find(|s| (s.abstraction.as_str(), s.name.as_str()) == (key.0.as_str(), key.1.as_str()))
                    {
                        *existing = site;
                        duplicates += 1;
                    } else {
                        snapshot.sites.push(site);
                    }
                }
                Record::Model(model) => {
                    if let Some(existing) =
                        snapshot.models.iter_mut().find(|m| m.family == model.family)
                    {
                        *existing = model;
                        duplicates += 1;
                    } else {
                        snapshot.models.push(model);
                    }
                }
                Record::Profile(profile) => {
                    if let Some(existing) =
                        snapshot.profiles.iter_mut().find(|p| p.site == profile.site)
                    {
                        *existing = profile;
                        duplicates += 1;
                    } else {
                        snapshot.profiles.push(profile);
                    }
                }
            }
        }
        (snapshot, duplicates)
    }

    /// Total records the snapshot would serialize to.
    pub fn record_count(&self) -> usize {
        usize::from(self.meta.is_some()) + self.sites.len() + self.models.len() + self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta(MetaRecord {
                seq: 7,
                created_unix_nanos: 123_456,
                rule: "R_time".into(),
                site_count: 2,
            }),
            Record::Site(SiteRecord {
                name: "IndexCursor:70".into(),
                abstraction: "list".into(),
                default_kind: "array".into(),
                current_kind: "hasharray".into(),
                rounds: 12,
                switches: 1,
                history_instances: 480,
            }),
            Record::Model(ModelBlobRecord {
                family: "lists".into(),
                text: "# collectionswitch model v1\n".into(),
            }),
            Record::Profile(ProfileSummaryRecord {
                site: "IndexCursor:70".into(),
                entries: vec![("profiles_ingested".into(), 480), ("ops".into(), 96_000)],
            }),
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for record in sample_records() {
            let payload = record.encode_payload();
            let decoded = Record::decode(record.kind(), &payload).expect("round trip");
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn truncated_payload_errors_without_panicking() {
        for record in sample_records() {
            let payload = record.encode_payload();
            for cut in 0..payload.len() {
                assert!(
                    Record::decode(record.kind(), &payload[..cut]).is_err(),
                    "{} truncated at {cut} must fail",
                    record.kind_name()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let record = &sample_records()[1];
        let mut payload = record.encode_payload();
        payload.push(0);
        assert!(Record::decode(record.kind(), &payload).is_err());
    }

    #[test]
    fn oversized_string_prefix_is_rejected_not_allocated() {
        // A length prefix of ~4 GiB must fail the cap check, not try to
        // allocate.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Record::decode(KIND_SITE, &payload).is_err());
    }

    #[test]
    fn unknown_kind_is_a_decode_error() {
        assert!(Record::decode(250, &[]).is_err());
    }

    #[test]
    fn assemble_dedupes_last_wins() {
        let mut records = sample_records();
        let mut revised = match &records[1] {
            Record::Site(s) => s.clone(),
            _ => unreachable!(),
        };
        revised.current_kind = "adaptive".into();
        records.push(Record::Site(revised.clone()));
        records.push(records[2].clone()); // duplicate model blob
        let (snapshot, duplicates) = Snapshot::assemble(records);
        assert_eq!(duplicates, 2);
        assert_eq!(snapshot.sites.len(), 1);
        assert_eq!(snapshot.sites[0].current_kind, "adaptive");
        assert_eq!(snapshot.models.len(), 1);
        assert_eq!(snapshot.record_count(), 4);
    }
}
