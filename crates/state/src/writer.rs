//! Snapshot encoding and the atomic (crash-safe) write protocol.
//!
//! The writer never modifies a snapshot file in place. Every save:
//!
//! 1. encodes the full snapshot into memory,
//! 2. writes it to a fresh uniquely named temp file *next to* the target
//!    (same filesystem, so the rename below cannot cross devices),
//! 3. `fsync`s the temp file (data reaches the disk before the name does),
//! 4. atomically renames it over the target,
//! 5. `fsync`s the parent directory (the rename itself is durable).
//!
//! A crash at any step leaves either the complete old file or the
//! complete new file at the target path — never a mix — plus at most a
//! stale temp file, which [`sweep_stale_temps`] reclaims on the next
//! start. Torn *content* (a partially flushed temp renamed by a buggy
//! kernel, bit rot, manual tampering) is the reader's problem: every
//! record is independently checksummed, so the loader salvages whatever
//! is intact (see [`crate::reader`]).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::crc::{crc32, Crc32};
use crate::record::{Record, Snapshot};

/// File magic: `CSSTATE` plus a format byte.
pub const MAGIC: [u8; 8] = *b"CSSTATE\x01";

/// Current format version, stored in the header.
pub const FORMAT_VERSION: u32 = 1;

/// Per-record sync marker. The reader scans for this to re-frame after
/// corruption; it was chosen to not collide with ASCII text or small
/// little-endian integers.
pub const SYNC: [u8; 4] = [0xC5, 0xA1, 0x1E, 0x57];

/// Total bytes of the file header: magic + version + header CRC.
pub const HEADER_LEN: usize = 16;

/// Bytes of record framing around a payload: sync + kind + length + CRC.
pub const FRAME_OVERHEAD: usize = 13;

/// Hard cap on a record payload. A frame whose length field exceeds this
/// is corruption by definition; the reader quarantines it instead of
/// trusting a 4 GiB allocation request.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Serializes `snapshot` into the framed on-disk format (header + one
/// frame per record).
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let mut out = Vec::with_capacity(HEADER_LEN + records.len() * 96);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let header_crc = crc32(&out[..12]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for record in &records {
        append_record(&mut out, record);
    }
    out
}

/// Appends one framed record to `buf`:
/// `SYNC | kind:u8 | len:u32 | payload | crc32(kind+len+payload):u32`.
pub fn append_record(buf: &mut Vec<u8>, record: &Record) {
    let payload = record.encode_payload();
    debug_assert!(payload.len() <= MAX_PAYLOAD, "oversized record payload");
    buf.extend_from_slice(&SYNC);
    let kind = record.kind();
    let len = (payload.len() as u32).to_le_bytes();
    buf.push(kind);
    buf.extend_from_slice(&len);
    buf.extend_from_slice(&payload);
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len);
    crc.update(&payload);
    buf.extend_from_slice(&crc.finish().to_le_bytes());
}

/// What one atomic save did, for latency accounting and telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    /// Final path of the snapshot.
    pub path: PathBuf,
    /// Encoded size, in bytes.
    pub bytes: u64,
    /// Records written.
    pub records: u64,
    /// Wall-clock time of the full protocol (encode excluded), in
    /// nanoseconds.
    pub elapsed_nanos: u64,
}

/// Monotone counter making temp names unique within a process, so
/// concurrent savers (or a save racing a crashed predecessor's leftovers)
/// never collide.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(path: &Path) -> PathBuf {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_owned());
    let unique = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(
        "{file_name}.tmp-{}-{unique}",
        std::process::id()
    ))
}

/// Atomically replaces `path` with the encoding of `snapshot` using the
/// temp + fsync + rename protocol described in the module docs.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing or renaming the temp
/// file. On error the target file is untouched; a temp file may remain
/// and will be collected by [`sweep_stale_temps`].
pub fn write_atomic(path: impl AsRef<Path>, snapshot: &Snapshot) -> std::io::Result<WriteReport> {
    let records = snapshot.record_count() as u64;
    let bytes = encode_snapshot(snapshot);
    write_atomic_bytes_inner(path.as_ref(), &bytes, records)
}

/// Atomically replaces `path` with raw `bytes` using the same protocol —
/// for persistence paths that own their own format (e.g. `cs-model` text
/// files) but must not be left half-written by a crash.
pub fn write_atomic_bytes(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<WriteReport> {
    write_atomic_bytes_inner(path.as_ref(), bytes, 0)
}

fn write_atomic_bytes_inner(
    path: &Path,
    bytes: &[u8],
    records: u64,
) -> std::io::Result<WriteReport> {
    let started = Instant::now();
    let tmp = temp_path_for(path);
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Data must be durable before the rename publishes the name.
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // And the rename must be durable before we report success.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if let Err(e) = result {
        // Best-effort cleanup; the sweep catches what this misses.
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(WriteReport {
        path: path.to_path_buf(),
        bytes: bytes.len() as u64,
        records,
        elapsed_nanos: started.elapsed().as_nanos() as u64,
    })
}

/// Removes temp files a crashed predecessor left next to `path` (any
/// sibling named `<file>.tmp-<pid>-<n>`). Returns how many were removed.
///
/// Call once at startup, *before* the first save: a temp file from the
/// current process is never older than the sweep, so everything matching
/// the prefix is garbage from a previous incarnation.
pub fn sweep_stale_temps(path: impl AsRef<Path>) -> std::io::Result<u64> {
    let path = path.as_ref();
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(0);
    };
    let Some(file_name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Ok(0);
    };
    let prefix = format!("{file_name}.tmp-");
    let mut removed = 0;
    let entries = match fs::read_dir(parent) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().starts_with(&prefix) && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetaRecord, SiteRecord};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cs-state-writer-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            meta: Some(MetaRecord {
                seq: 1,
                created_unix_nanos: 42,
                rule: "R_time".into(),
                site_count: 1,
            }),
            sites: vec![SiteRecord {
                name: "s".into(),
                abstraction: "list".into(),
                default_kind: "array".into(),
                current_kind: "hasharray".into(),
                rounds: 3,
                switches: 1,
                history_instances: 60,
            }],
            models: Vec::new(),
            profiles: Vec::new(),
        }
    }

    #[test]
    fn encoding_starts_with_magic_and_checksummed_header() {
        let bytes = encode_snapshot(&sample_snapshot());
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(&bytes[8..12], &FORMAT_VERSION.to_le_bytes());
        let stored = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        assert_eq!(stored, crc32(&bytes[..12]));
        assert_eq!(&bytes[16..20], &SYNC);
    }

    #[test]
    fn atomic_write_replaces_and_survives_reload() {
        let dir = temp_dir("replace");
        let path = dir.join("state.css");
        let report = write_atomic(&path, &sample_snapshot()).unwrap();
        assert_eq!(report.records, 2);
        assert!(report.bytes > HEADER_LEN as u64);
        let mut second = sample_snapshot();
        second.meta.as_mut().unwrap().seq = 2;
        write_atomic(&path, &second).unwrap();
        let loaded = crate::load_lenient(&path).unwrap();
        assert_eq!(loaded.snapshot.meta.unwrap().seq, 2);
        assert_eq!(loaded.stats.records_quarantined(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_files_remain_after_a_clean_write() {
        let dir = temp_dir("clean");
        let path = dir.join("state.css");
        write_atomic(&path, &sample_snapshot()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temps: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_removes_only_matching_temps() {
        let dir = temp_dir("sweep");
        let path = dir.join("state.css");
        write_atomic(&path, &sample_snapshot()).unwrap();
        fs::write(dir.join("state.css.tmp-999-0"), b"partial").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let removed = sweep_stale_temps(&path).unwrap();
        assert_eq!(removed, 1);
        assert!(path.exists());
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(sweep_stale_temps(&path).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_of_missing_directory_is_ok() {
        assert_eq!(
            sweep_stale_temps("/nonexistent/cs-state/state.css").unwrap(),
            0
        );
    }
}
