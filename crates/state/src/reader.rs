//! The lenient snapshot loader: salvage everything intact, quarantine the
//! rest, never panic.
//!
//! The loader's contract is the inverse of a strict parser's: *any* byte
//! string is a valid input. Corruption — a truncated tail, a flipped bit,
//! a torn in-place overwrite, duplicated or reordered records — costs
//! exactly the records it damaged. Each frame carries a sync marker and
//! its own CRC, so after bad bytes the loader scans forward to the next
//! sync marker and resumes framing; every salvaged record re-verified its
//! checksum, so a salvaged record is bit-identical to one the writer
//! produced.
//!
//! Nothing here returns `Err` for corruption (only for the file being
//! missing or unreadable), and nothing panics: the damage is *accounted*
//! instead, in [`SalvageStats`] (counters) and [`CorruptionIncident`]s
//! (one localized description per damaged region, for the flight
//! recorder).

use std::fmt;
use std::path::Path;

use crate::crc::Crc32;
use crate::record::{Record, Snapshot};
use crate::writer::{FORMAT_VERSION, FRAME_OVERHEAD, HEADER_LEN, MAGIC, MAX_PAYLOAD, SYNC};

/// Loss counters for one load. All zero (and `header_ok`) for a clean
/// file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageStats {
    /// Whether the file header (magic, version, header CRC) verified.
    pub header_ok: bool,
    /// Total bytes in the file.
    pub bytes_total: u64,
    /// Bytes discarded while scanning for the next sync marker.
    pub bytes_skipped: u64,
    /// Records that framed, checksummed and decoded cleanly.
    pub records_loaded: u64,
    /// Frames whose stored CRC did not match their content.
    pub crc_failures: u64,
    /// Frames cut off by the end of the file (or by a length field
    /// pointing past it).
    pub truncated_frames: u64,
    /// Frames whose length field exceeded [`MAX_PAYLOAD`].
    pub oversized_frames: u64,
    /// Checksum-valid payloads that still failed to decode (unknown
    /// record kind, bad field layout) — forward-compatibility quarantine.
    pub decode_failures: u64,
    /// Gaps where the loader lost framing entirely and had to scan to the
    /// next sync marker (each gap is at least one destroyed record).
    pub resync_gaps: u64,
    /// Well-formed records dropped by last-wins deduplication.
    pub duplicates_dropped: u64,
}

impl SalvageStats {
    /// Total records quarantined: every counted way a record can be lost
    /// short of deduplication.
    pub fn records_quarantined(&self) -> u64 {
        self.crc_failures
            + self.truncated_frames
            + self.oversized_frames
            + self.decode_failures
            + self.resync_gaps
    }

    /// True when the file loaded with no loss of any kind.
    pub fn is_clean(&self) -> bool {
        self.header_ok && self.records_quarantined() == 0 && self.bytes_skipped == 0
    }
}

/// Why a region of the file was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionReason {
    /// The 16-byte file header failed verification.
    BadHeader,
    /// Framing was lost; bytes were skipped scanning for the next sync.
    ResyncGap,
    /// A frame's stored CRC did not match its content.
    CrcMismatch,
    /// A frame ran past the end of the file.
    TruncatedFrame,
    /// A frame declared a payload larger than [`MAX_PAYLOAD`].
    OversizedFrame,
    /// A checksum-valid payload failed to decode.
    DecodeFailure,
}

impl CorruptionReason {
    /// Stable snake_case tag, for telemetry labels and incident logs.
    pub fn name(self) -> &'static str {
        match self {
            CorruptionReason::BadHeader => "bad_header",
            CorruptionReason::ResyncGap => "resync_gap",
            CorruptionReason::CrcMismatch => "crc_mismatch",
            CorruptionReason::TruncatedFrame => "truncated_frame",
            CorruptionReason::OversizedFrame => "oversized_frame",
            CorruptionReason::DecodeFailure => "decode_failure",
        }
    }
}

impl fmt::Display for CorruptionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One localized description of damage found during a load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionIncident {
    /// Byte offset where the damaged region starts.
    pub offset: u64,
    /// What kind of damage.
    pub reason: CorruptionReason,
    /// Human-readable detail (decode error message, bytes skipped, …).
    pub detail: String,
}

impl fmt::Display for CorruptionIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}: {}", self.reason, self.offset, self.detail)
    }
}

/// Incidents past this count are still *counted* in [`SalvageStats`] but
/// not individually described, bounding memory on pathological input.
pub const MAX_INCIDENTS: usize = 1024;

/// The result of a lenient load: the maximal salvageable snapshot plus a
/// full loss account.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    /// Everything that survived, deduplicated last-wins.
    pub snapshot: Snapshot,
    /// Loss counters.
    pub stats: SalvageStats,
    /// Localized damage descriptions (capped at [`MAX_INCIDENTS`]).
    pub incidents: Vec<CorruptionIncident>,
}

/// Loads `path` leniently.
///
/// # Errors
///
/// Only for the file being missing or unreadable. Corrupt *content* never
/// errors: it is salvaged and accounted in the returned [`LoadReport`].
pub fn load_lenient(path: impl AsRef<Path>) -> std::io::Result<LoadReport> {
    let bytes = std::fs::read(path)?;
    Ok(decode_lenient(&bytes))
}

/// Decodes an in-memory snapshot image leniently. Pure; never panics.
pub fn decode_lenient(bytes: &[u8]) -> LoadReport {
    let mut stats = SalvageStats {
        bytes_total: bytes.len() as u64,
        ..SalvageStats::default()
    };
    let mut incidents = Vec::new();
    let mut records = Vec::new();

    let push_incident = |incidents: &mut Vec<CorruptionIncident>,
                             offset: usize,
                             reason: CorruptionReason,
                             detail: String| {
        if incidents.len() < MAX_INCIDENTS {
            incidents.push(CorruptionIncident {
                offset: offset as u64,
                reason,
                detail,
            });
        }
    };

    // --- header ---
    let header_valid = bytes.len() >= HEADER_LEN
        && bytes[..8] == MAGIC
        && bytes[8..12] == FORMAT_VERSION.to_le_bytes()
        && {
            let mut crc = Crc32::new();
            crc.update(&bytes[..12]);
            bytes[12..16] == crc.finish().to_le_bytes()
        };
    stats.header_ok = header_valid;
    let mut off = if header_valid { HEADER_LEN } else { 0 };
    // After a bad region we already accounted for, the scan to the next
    // sync is expected — don't bill the same damage twice.
    let mut gap_already_accounted = !header_valid;
    if !header_valid {
        push_incident(
            &mut incidents,
            0,
            CorruptionReason::BadHeader,
            format!("header failed verification ({} bytes in file)", bytes.len()),
        );
    }

    // --- record frames ---
    loop {
        let Some(sync_at) = find_sync(bytes, off) else {
            let remaining = bytes.len().saturating_sub(off);
            if remaining > 0 {
                stats.bytes_skipped += remaining as u64;
                if !gap_already_accounted {
                    stats.resync_gaps += 1;
                    push_incident(
                        &mut incidents,
                        off,
                        CorruptionReason::ResyncGap,
                        format!("{remaining} trailing bytes with no sync marker"),
                    );
                }
            }
            break;
        };
        if sync_at > off {
            let skipped = sync_at - off;
            stats.bytes_skipped += skipped as u64;
            if !gap_already_accounted {
                stats.resync_gaps += 1;
                push_incident(
                    &mut incidents,
                    off,
                    CorruptionReason::ResyncGap,
                    format!("{skipped} bytes skipped to regain framing"),
                );
            }
        }
        gap_already_accounted = false;
        let p = sync_at;

        // Frame fields: kind at p+4, payload length at p+5.
        if p + 9 > bytes.len() {
            stats.truncated_frames += 1;
            push_incident(
                &mut incidents,
                p,
                CorruptionReason::TruncatedFrame,
                "file ends inside a frame header".to_owned(),
            );
            stats.bytes_skipped += (bytes.len() - p) as u64;
            break;
        }
        let kind = bytes[p + 4];
        let plen = u32::from_le_bytes(bytes[p + 5..p + 9].try_into().expect("4 bytes")) as usize;
        if plen > MAX_PAYLOAD {
            stats.oversized_frames += 1;
            push_incident(
                &mut incidents,
                p,
                CorruptionReason::OversizedFrame,
                format!("declared payload of {plen} bytes exceeds cap {MAX_PAYLOAD}"),
            );
            // The length field is untrustworthy: rescan just past this
            // sync marker rather than jumping by it.
            off = p + 4;
            gap_already_accounted = true;
            continue;
        }
        let frame_end = p + FRAME_OVERHEAD + plen;
        if frame_end > bytes.len() {
            stats.truncated_frames += 1;
            push_incident(
                &mut incidents,
                p,
                CorruptionReason::TruncatedFrame,
                format!(
                    "frame needs {} bytes, file has {}",
                    frame_end - p,
                    bytes.len() - p
                ),
            );
            off = p + 4;
            gap_already_accounted = true;
            continue;
        }
        let mut crc = Crc32::new();
        crc.update(&bytes[p + 4..p + 9 + plen]);
        let stored = u32::from_le_bytes(
            bytes[p + 9 + plen..frame_end].try_into().expect("4 bytes"),
        );
        if crc.finish() != stored {
            stats.crc_failures += 1;
            push_incident(
                &mut incidents,
                p,
                CorruptionReason::CrcMismatch,
                format!("record kind {kind}, {plen}-byte payload failed its checksum"),
            );
            // The damage could be anywhere in the frame, including the
            // length field itself: rescan rather than trust `frame_end`.
            off = p + 4;
            gap_already_accounted = true;
            continue;
        }
        match Record::decode(kind, &bytes[p + 9..p + 9 + plen]) {
            Ok(record) => {
                stats.records_loaded += 1;
                records.push(record);
            }
            Err(e) => {
                stats.decode_failures += 1;
                push_incident(
                    &mut incidents,
                    p,
                    CorruptionReason::DecodeFailure,
                    format!("record kind {kind}: {e}"),
                );
            }
        }
        off = frame_end;
    }

    let (snapshot, duplicates) = Snapshot::assemble(records);
    stats.duplicates_dropped = duplicates;
    LoadReport {
        snapshot,
        stats,
        incidents,
    }
}

/// Position of the next sync marker at or after `from`.
fn find_sync(bytes: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(SYNC.len())
        .position(|w| w == SYNC)
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetaRecord, ModelBlobRecord, SiteRecord};
    use crate::writer::encode_snapshot;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            meta: Some(MetaRecord {
                seq: 3,
                created_unix_nanos: 99,
                rule: "R_time".into(),
                site_count: 2,
            }),
            sites: vec![
                SiteRecord {
                    name: "alpha".into(),
                    abstraction: "list".into(),
                    default_kind: "array".into(),
                    current_kind: "hasharray".into(),
                    rounds: 5,
                    switches: 1,
                    history_instances: 100,
                },
                SiteRecord {
                    name: "beta".into(),
                    abstraction: "set".into(),
                    default_kind: "chained".into(),
                    current_kind: "array".into(),
                    rounds: 4,
                    switches: 1,
                    history_instances: 80,
                },
            ],
            models: vec![ModelBlobRecord {
                family: "lists".into(),
                text: "# collectionswitch model v1\n".into(),
            }],
            profiles: Vec::new(),
        }
    }

    #[test]
    fn clean_image_loads_clean() {
        let bytes = encode_snapshot(&sample_snapshot());
        let report = decode_lenient(&bytes);
        assert!(report.stats.is_clean(), "{:?}", report.stats);
        assert_eq!(report.stats.records_loaded, 4);
        assert_eq!(report.snapshot, sample_snapshot());
        assert!(report.incidents.is_empty());
    }

    #[test]
    fn empty_and_garbage_inputs_never_panic() {
        let empty = decode_lenient(&[]);
        assert!(!empty.stats.header_ok);
        assert_eq!(empty.stats.records_loaded, 0);
        let garbage: Vec<u8> = (0..1000).map(|i| (i * 31 % 251) as u8).collect();
        let report = decode_lenient(&garbage);
        assert_eq!(report.stats.records_loaded, 0);
        assert_eq!(report.snapshot.record_count(), 0);
    }

    #[test]
    fn corrupt_header_still_salvages_every_record() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes[3] ^= 0xFF;
        let report = decode_lenient(&bytes);
        assert!(!report.stats.header_ok);
        assert_eq!(report.stats.records_loaded, 4);
        assert_eq!(report.stats.records_quarantined(), 0);
        assert_eq!(report.snapshot, sample_snapshot());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_lenient("/nonexistent/cs-state/state.css").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
