//! CRC-32 (IEEE 802.3 polynomial), hand-rolled so the crate stays
//! dependency-free.
//!
//! The framed snapshot format checksums every record independently
//! (see [`crate::reader`]): a single flipped bit anywhere in a record —
//! header, length field, payload, or the stored CRC itself — must make
//! that record, and only that record, fail verification. CRC-32 detects
//! all single- and double-bit errors and all burst errors up to 32 bits,
//! which covers the torn-write and bit-rot fault classes the chaos
//! harness injects.

/// The reflected IEEE polynomial (used by zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// One-shot CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // The classic check value for the IEEE polynomial.
/// assert_eq!(cs_state::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32, for checksumming a record's frame fields and
/// payload without concatenating them first.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The finished checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"collectionswitch snapshot payload";
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn single_byte_changes_are_detected() {
        let base = b"record payload under test".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
