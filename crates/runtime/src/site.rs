//! Shared per-site state: exact op totals, flush/contention counters, and
//! the kind-generic engine core the flush path feeds.
//!
//! A [`SiteShared`] is the *only* state an op on a concurrent handle ever
//! shares with other threads — and it is touched exclusively on the flush
//! path (epoch boundaries), never per op. The hot path lives in
//! [`tlb`](crate::tlb); this module is where flushed buffers land.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cs_collections::{ConcKind, ListKind, MapKind, SetKind};
use cs_core::{ContextCore, ContextStats};
use cs_profile::{OpKind, WorkloadProfile};

/// Flush policy stamped onto every site at creation (from
/// [`RuntimeConfig`](crate::RuntimeConfig)): when a thread-local buffer
/// spills into the shared profile, and how timing is sampled.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushPolicy {
    /// Count trigger: flush once this many ops are buffered locally.
    pub flush_ops: u64,
    /// Time trigger: flush once the buffer is older than this many nanos
    /// (checked every [`FlushPolicy::CLOCK_CHECK_MASK`]+1 ops, so an idle
    /// buffer can exceed it until the next op or an explicit flush).
    pub flush_nanos: u64,
    /// Timing-sample mask: an op is wall-clocked when
    /// `tick & sample_mask == 0`, and the measured nanos are scaled by
    /// `sample_mask + 1` at record time. `0` times every op.
    pub sample_mask: u64,
}

impl FlushPolicy {
    /// The time trigger is only probed every 64 ops — one `Instant::now()`
    /// per 64 ops instead of one per op.
    pub(crate) const CLOCK_CHECK_MASK: u64 = 63;
}

/// The kind-generic engine context behind a site, type-erased over the
/// element types (a [`ContextCore`] is generic over the *kind* only, which
/// is what makes a non-generic registry possible).
#[derive(Debug)]
pub(crate) enum CoreRef {
    /// A list site.
    #[allow(dead_code)] // registered for symmetry; no concurrent list handle yet
    List(Arc<ContextCore<ListKind>>),
    /// A set site.
    Set(Arc<ContextCore<SetKind>>),
    /// A map site.
    Map(Arc<ContextCore<MapKind>>),
}

impl CoreRef {
    fn ingest(&self, profile: WorkloadProfile) -> bool {
        match self {
            CoreRef::List(c) => c.ingest_profile(profile),
            CoreRef::Set(c) => c.ingest_profile(profile),
            CoreRef::Map(c) => c.ingest_profile(profile),
        }
    }

    fn stats(&self) -> ContextStats {
        match self {
            CoreRef::List(c) => c.stats(),
            CoreRef::Set(c) => c.stats(),
            CoreRef::Map(c) => c.stats(),
        }
    }

    fn current_kind(&self) -> String {
        match self {
            CoreRef::List(c) => c.current_kind().to_string(),
            CoreRef::Set(c) => c.current_kind().to_string(),
            CoreRef::Map(c) => c.current_kind().to_string(),
        }
    }

    fn default_kind(&self) -> String {
        match self {
            CoreRef::List(c) => c.default_kind().to_string(),
            CoreRef::Set(c) => c.default_kind().to_string(),
            CoreRef::Map(c) => c.default_kind().to_string(),
        }
    }

    fn abstraction(&self) -> cs_collections::Abstraction {
        match self {
            CoreRef::List(_) => cs_collections::Abstraction::List,
            CoreRef::Set(_) => cs_collections::Abstraction::Set,
            CoreRef::Map(_) => cs_collections::Abstraction::Map,
        }
    }
}

/// Shared state of one runtime site: exact cumulative op totals (updated in
/// batch at flush time), flush and shard-contention counters, and the engine
/// core that receives flushed profiles.
#[derive(Debug)]
pub struct SiteShared {
    id: u64,
    name: String,
    core: CoreRef,
    /// The concurrency-strategy context, when this site runs the strategy
    /// tier (concurrent maps). Every flushed profile is fed to it *as well
    /// as* to the data-variant core: the same workload drives both the
    /// which-representation and the which-locking-discipline decisions.
    strategy: Option<Arc<ContextCore<ConcKind>>>,
    policy: FlushPolicy,
    op_totals: [AtomicU64; 4],
    nanos_total: AtomicU64,
    max_size: AtomicUsize,
    flushes: AtomicU64,
    contended: AtomicU64,
    alloc_count: AtomicU64,
    alloc_bytes: AtomicU64,
}

impl SiteShared {
    pub(crate) fn new(id: u64, name: String, core: CoreRef, policy: FlushPolicy) -> Self {
        SiteShared::with_strategy(id, name, core, None, policy)
    }

    pub(crate) fn with_strategy(
        id: u64,
        name: String,
        core: CoreRef,
        strategy: Option<Arc<ContextCore<ConcKind>>>,
        policy: FlushPolicy,
    ) -> Self {
        SiteShared {
            id,
            name,
            core,
            strategy,
            policy,
            op_totals: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            nanos_total: AtomicU64::new(0),
            max_size: AtomicUsize::new(0),
            flushes: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            alloc_count: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
        }
    }

    /// The site's id (shared with its engine context).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The site's allocation-site label.
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// This site's row in [`Runtime::site_manifest`](crate::Runtime::site_manifest).
    pub fn manifest_entry(&self) -> cs_core::SiteManifestEntry {
        let total_ops: u64 = (0..4)
            .map(|i| self.op_totals[i].load(Ordering::Relaxed))
            .sum();
        let alloc_bytes = self.alloc_bytes.load(Ordering::Relaxed);
        cs_core::SiteManifestEntry {
            id: self.id,
            name: self.name.clone(),
            abstraction: self.core.abstraction(),
            default_kind: self.core.default_kind(),
            current_kind: self.core.current_kind(),
            alloc_bytes_per_op: if total_ops == 0 {
                0.0
            } else {
                alloc_bytes as f64 / total_ops as f64
            },
        }
    }

    /// Folds one flushed thread-local buffer into the shared state: exact
    /// totals first (atomics, never lost even when the engine is frozen),
    /// then the profile into the engine core's sink, where the analyzer
    /// treats it as one finished monitored instance.
    pub(crate) fn ingest(&self, profile: WorkloadProfile) {
        for op in OpKind::ALL {
            let n = profile.count(op);
            if n > 0 {
                self.op_totals[op.index()].fetch_add(n, Ordering::Relaxed);
            }
        }
        let nanos = profile.elapsed_nanos();
        if nanos > 0 {
            self.nanos_total.fetch_add(nanos, Ordering::Relaxed);
        }
        if profile.contended() > 0 {
            self.contended
                .fetch_add(profile.contended(), Ordering::Relaxed);
        }
        if profile.alloc_count() > 0 {
            self.alloc_count
                .fetch_add(profile.alloc_count(), Ordering::Relaxed);
            self.alloc_bytes
                .fetch_add(profile.alloc_bytes(), Ordering::Relaxed);
        }
        self.max_size.fetch_max(profile.max_size(), Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if let Some(strategy) = &self.strategy {
            strategy.ingest_profile(profile.clone());
        }
        self.core.ingest(profile);
    }

    /// Exact cumulative count for `op` over every flushed buffer.
    pub fn op_total(&self, op: OpKind) -> u64 {
        self.op_totals[op.index()].load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of the site's counters and engine state.
    pub fn stats(&self) -> SiteStats {
        let core_stats = self.core.stats();
        let ops = [
            self.op_totals[0].load(Ordering::Relaxed),
            self.op_totals[1].load(Ordering::Relaxed),
            self.op_totals[2].load(Ordering::Relaxed),
            self.op_totals[3].load(Ordering::Relaxed),
        ];
        SiteStats {
            id: self.id,
            name: self.name.clone(),
            current_kind: self.core.current_kind(),
            current_strategy: self
                .strategy
                .as_ref()
                .map(|s| s.current_kind().to_string()),
            ops,
            total_ops: ops.iter().sum(),
            sampled_nanos: self.nanos_total.load(Ordering::Relaxed),
            max_size: self.max_size.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            alloc_count: self.alloc_count.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            rounds: core_stats.rounds,
            switches: core_stats.switches,
            rollbacks: core_stats.rollbacks,
        }
    }
}

/// A snapshot of one runtime site, as returned by
/// [`Runtime::site_stats`](crate::Runtime::site_stats) and
/// [`Runtime::sites`](crate::Runtime::sites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site id (shared with the engine context).
    pub id: u64,
    /// Allocation-site label.
    pub name: String,
    /// Variant the site currently instantiates (shards migrate lazily).
    pub current_kind: String,
    /// The concurrency strategy the site currently runs
    /// (`"lockstriped"`/`"lockfree"`), when it has a strategy tier.
    pub current_strategy: Option<String>,
    /// Exact per-op totals, indexed by [`OpKind::index`].
    pub ops: [u64; 4],
    /// Sum of [`SiteStats::ops`].
    pub total_ops: u64,
    /// Sampled-and-scaled wall time attributed to critical ops.
    pub sampled_nanos: u64,
    /// Largest post-op shard size observed.
    pub max_size: usize,
    /// Thread-local buffer flushes into this site.
    pub flushes: u64,
    /// Contended shard-lock acquisitions.
    pub contended: u64,
    /// Sampled-and-scaled allocation events attributed to critical ops.
    pub alloc_count: u64,
    /// Sampled-and-scaled allocation bytes attributed to critical ops.
    pub alloc_bytes: u64,
    /// Engine analysis rounds completed for this site.
    pub rounds: u64,
    /// Variant switches the analyzer performed.
    pub switches: u64,
    /// Switches undone by post-switch verification.
    pub rollbacks: u64,
}

impl SiteStats {
    /// Mean attributed allocation bytes per critical op; `0.0` before any
    /// ops flushed. Sampled estimate under `sample_mask > 0`.
    pub fn alloc_bytes_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.alloc_bytes as f64 / self.total_ops as f64
        }
    }
}

impl std::fmt::Display for SiteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: {} ops ({} flushes, {} contended), rounds {}, switches {}, rollbacks {}",
            self.name,
            self.current_kind,
            self.total_ops,
            self.flushes,
            self.contended,
            self.rounds,
            self.switches,
            self.rollbacks
        )
    }
}
