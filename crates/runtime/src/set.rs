//! The concurrent adaptive set handle — [`ConcurrentMap`](crate::ConcurrentMap)'s
//! sibling over [`AnySet`]/[`SetKind`]. See the map module for the design
//! notes (lock striping, lazy shard migration, thread-local op recording);
//! everything here is the same protocol with set ops.

use std::hash::Hash;
use std::sync::Arc;

use cs_collections::{hash_one, AnySet, SetKind, SetOps};
use cs_core::ContextCore;
use cs_profile::OpKind;
use parking_lot::Mutex;

use crate::site::SiteShared;
use crate::tlb;

pub(crate) struct SetInner<T: Eq + Hash + Clone> {
    pub(crate) shared: Arc<SiteShared>,
    pub(crate) core: Arc<ContextCore<SetKind>>,
    shards: Box<[Mutex<AnySet<T>>]>,
    mask: u64,
}

/// A thread-safe adaptive set bound to one runtime site.
///
/// Cloning is cheap (shared state); clones refer to the same set. The
/// engine switches the site's variant under guarded adaptation exactly as
/// for single-owner handles; shards migrate lazily under their own lock.
pub struct ConcurrentSet<T: Eq + Hash + Clone> {
    inner: Arc<SetInner<T>>,
}

impl<T: Eq + Hash + Clone> Clone for ConcurrentSet<T> {
    fn clone(&self) -> Self {
        ConcurrentSet {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Eq + Hash + Clone> std::fmt::Debug for ConcurrentSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSet")
            .field("site", &self.inner.shared.name())
            .field("shards", &self.inner.shards.len())
            .field("kind", &self.inner.core.current_kind())
            .finish()
    }
}

fn migrate_shard<T: Eq + Hash + Clone>(shard: &mut AnySet<T>, want: SetKind) {
    let old = std::mem::replace(shard, AnySet::new(SetKind::Array));
    *shard = old.switched_to(want);
}

impl<T: Eq + Hash + Clone> ConcurrentSet<T> {
    pub(crate) fn new(
        shared: Arc<SiteShared>,
        core: Arc<ContextCore<SetKind>>,
        shards: usize,
    ) -> Self {
        let n = shards.next_power_of_two();
        let kind = core.current_kind();
        ConcurrentSet {
            inner: Arc::new(SetInner {
                shared,
                core,
                shards: (0..n).map(|_| Mutex::new(AnySet::new(kind))).collect(),
                mask: (n - 1) as u64,
            }),
        }
    }

    #[inline]
    fn op<R>(&self, op: OpKind, hash: u64, f: impl FnOnce(&mut AnySet<T>) -> R) -> R {
        let inner = &self.inner;
        let shard = &inner.shards[((hash >> 48) & inner.mask) as usize];
        tlb::site_op_tracked(&inner.shared, op, || {
            let (mut guard, contended) = match shard.try_lock() {
                Some(g) => (g, false),
                None => (shard.lock(), true),
            };
            let want = inner.core.current_kind();
            if guard.kind() != want {
                migrate_shard(&mut guard, want);
            }
            let out = f(&mut guard);
            (out, guard.len(), contended)
        })
    }

    /// Inserts `value`, returning `true` if it was not already present
    /// (critical op: *populate*).
    pub fn insert(&self, value: T) -> bool {
        let h = hash_one(&value);
        self.op(OpKind::Populate, h, |s| s.insert(value))
    }

    /// Returns `true` if `value` is in the set (critical op: *contains*).
    pub fn contains(&self, value: &T) -> bool {
        self.op(OpKind::Contains, hash_one(value), |s| s.contains(value))
    }

    /// Removes `value`, returning `true` if it was present (critical op:
    /// *middle*).
    pub fn remove(&self, value: &T) -> bool {
        self.op(OpKind::Middle, hash_one(value), |s| s.set_remove(value))
    }

    /// Visits every value, shard by shard (critical op: *iterate*; each
    /// shard is locked only while it is visited).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for shard in self.inner.shards.iter() {
            tlb::site_op_tracked(&self.inner.shared, OpKind::Iterate, || {
                let (mut guard, contended) = match shard.try_lock() {
                    Some(g) => (g, false),
                    None => (shard.lock(), true),
                };
                let want = self.inner.core.current_kind();
                if guard.kind() != want {
                    migrate_shard(&mut guard, want);
                }
                guard.for_each_value(&mut |v| f(v));
                ((), guard.len(), contended)
            });
        }
    }

    /// Total values over all shards (not recorded as a critical op).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if no shard holds values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every value (not recorded as a critical op).
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The variant the site currently instantiates.
    pub fn current_kind(&self) -> SetKind {
        self.inner.core.current_kind()
    }

    /// The site's id within its engine.
    pub fn id(&self) -> u64 {
        self.inner.shared.id()
    }

    /// The site's allocation-site label.
    pub fn name(&self) -> &str {
        self.inner.shared.name()
    }

    /// A snapshot of the site's counters.
    pub fn stats(&self) -> crate::SiteStats {
        self.inner.shared.stats()
    }

    /// Flushes the *calling thread's* buffered ops for every site.
    pub fn flush(&self) {
        tlb::flush_current_thread();
    }
}
