//! Runtime-layer telemetry: per-site metrics export and the JSON row
//! encoding shared with the bench binaries.
//!
//! The runtime's counters (exact op totals, flushes, shard contention) live
//! in per-site atomics; this module mirrors them into a
//! [`MetricsRegistry`] on demand — the scrape-time pull complementing the
//! engine's push-based event sinks — and encodes a [`SiteStats`] snapshot
//! as a [`Json`] object so dashboards, `runtime_sweep` output rows, and the
//! telemetry JSON snapshot all share one serializer.

use cs_profile::OpKind;
use cs_telemetry::{export_engine, export_process, Json, MetricsRegistry};

use crate::runtime::Runtime;
use crate::site::SiteStats;

/// Serializes one site snapshot as a JSON object (op totals keyed by op
/// name). This is the row format of `runtime_sweep --out` and of
/// [`Runtime::export_metrics`] consumers that prefer JSON over Prometheus.
pub fn site_stats_to_json(stats: &SiteStats) -> Json {
    let mut ops = Json::object();
    for op in OpKind::ALL {
        ops = ops.field(op.to_string(), stats.ops[op.index()]);
    }
    let mut row = Json::object()
        .field("id", stats.id)
        .field("site", stats.name.as_str())
        .field("current_kind", stats.current_kind.as_str());
    if let Some(strategy) = &stats.current_strategy {
        row = row.field("current_strategy", strategy.as_str());
    }
    row.field("ops", ops)
        .field("total_ops", stats.total_ops)
        .field("sampled_nanos", stats.sampled_nanos)
        .field("max_size", stats.max_size)
        .field("flushes", stats.flushes)
        .field("contended", stats.contended)
        .field("contention_ratio", contention_ratio(stats))
        .field("alloc_count", stats.alloc_count)
        .field("alloc_bytes", stats.alloc_bytes)
        .field("alloc_bytes_per_op", stats.alloc_bytes_per_op())
        .field("rounds", stats.rounds)
        .field("switches", stats.switches)
        .field("rollbacks", stats.rollbacks)
}

/// Contended ops as a fraction of total flushed ops; `0.0` before the first
/// flush. This is the observable the strategy tier's cost model prices, so
/// dashboards can plot it straight against the modeled break-even ratio.
fn contention_ratio(stats: &SiteStats) -> f64 {
    if stats.total_ops == 0 {
        0.0
    } else {
        stats.contended as f64 / stats.total_ops as f64
    }
}

impl Runtime {
    /// Mirrors every runtime site's counters into `registry` under the
    /// `cs_runtime_*` families (labelled by site name), plus the wrapped
    /// engine's `cs_engine_*` state via [`export_engine`] and the
    /// process-level gauges via [`export_process`] (uptime, peak RSS — so
    /// a runtime scrape is useful before any site traffic). Idempotent:
    /// call on every scrape, values overwrite.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        self.export_site_metrics(registry);
        export_engine(registry, self.engine());
        export_process(registry);
    }

    /// The in-memory subset of [`Runtime::export_metrics`]: per-site
    /// counters only, read straight from the runtime's atomics — no
    /// `/proc` reads, no syscalls beyond memory. This is what the `cs-obs`
    /// sampler thread calls on every tick; the process-level gauges (which
    /// do touch procfs) are refreshed only on the scrape path.
    pub fn export_site_metrics(&self, registry: &MetricsRegistry) {
        let sites = self.sites();
        registry
            .gauge("cs_runtime_sites", "Registered runtime sites.", &[])
            .set(sites.len() as i64);
        for stats in &sites {
            let site = stats.name.as_str();
            for op in OpKind::ALL {
                registry
                    .counter(
                        "cs_runtime_site_ops_total",
                        "Exact flushed op totals per site and op kind.",
                        &[("site", site), ("op", &op.to_string())],
                    )
                    .set_total(stats.ops[op.index()]);
            }
            let totals: [(&str, &str, u64); 8] = [
                (
                    "cs_runtime_site_flushes_total",
                    "Thread-local buffer flushes per site.",
                    stats.flushes,
                ),
                (
                    "cs_runtime_site_contended_total",
                    "Contended shard-lock acquisitions per site.",
                    stats.contended,
                ),
                (
                    "cs_runtime_site_sampled_nanos_total",
                    "Sampled-and-scaled wall time attributed to critical ops, nanoseconds.",
                    stats.sampled_nanos,
                ),
                (
                    "cs_runtime_site_alloc_count_total",
                    "Sampled-and-scaled allocation events attributed to critical ops per site.",
                    stats.alloc_count,
                ),
                (
                    "cs_runtime_site_alloc_bytes_total",
                    "Sampled-and-scaled allocation bytes attributed to critical ops per site.",
                    stats.alloc_bytes,
                ),
                (
                    "cs_runtime_site_rounds_total",
                    "Engine analysis rounds completed per site.",
                    stats.rounds,
                ),
                (
                    "cs_runtime_site_switches_total",
                    "Variant switches applied per site.",
                    stats.switches,
                ),
                (
                    "cs_runtime_site_rollbacks_total",
                    "Switches undone by post-switch verification per site.",
                    stats.rollbacks,
                ),
            ];
            for (name, help, value) in totals {
                registry
                    .counter(name, help, &[("site", site)])
                    .set_total(value);
            }
            registry
                .gauge(
                    "cs_runtime_site_max_size",
                    "Largest post-op shard size observed per site.",
                    &[("site", site)],
                )
                .set(stats.max_size as i64);
            registry
                .float_gauge(
                    "cs_runtime_site_contention_ratio",
                    "Contended ops / total flushed ops per site (the strategy \
                     tier's contention observable).",
                    &[("site", site)],
                )
                .set(contention_ratio(stats));
            registry
                .float_gauge(
                    "cs_runtime_site_alloc_bytes_per_op",
                    "Attributed allocation bytes per critical op per site (the \
                     alloc-rate dimension's observable; zero unless a \
                     cs-heap CountingAlloc is installed).",
                    &[("site", site)],
                )
                .set(stats.alloc_bytes_per_op());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_collections::MapKind;
    use cs_core::Switch;
    use cs_telemetry::validate_prometheus_text;

    #[test]
    fn export_mirrors_site_counters_and_validates() {
        let rt = Runtime::new(Switch::builder().build());
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "tele-map");
        for i in 0..50 {
            map.insert(i, i);
            map.get(&i);
        }
        rt.flush_thread();

        let registry = MetricsRegistry::new();
        rt.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge_value("cs_runtime_sites"), Some(1));
        assert_eq!(
            snap.counter_total("cs_runtime_site_ops_total"),
            Some(100),
            "50 inserts + 50 gets"
        );
        assert_eq!(
            snap.counter_total("cs_runtime_site_flushes_total"),
            Some(1)
        );
        let text = snap.to_prometheus_text();
        assert!(text.contains(
            "cs_runtime_site_ops_total{site=\"tele-map\",op=\"populate\"} 50"
        ));
        validate_prometheus_text(&text).expect("valid exposition");

        // Second export after more activity overwrites, not double-counts.
        for i in 0..10 {
            map.insert(100 + i, i);
        }
        rt.flush_thread();
        rt.export_metrics(&registry);
        assert_eq!(
            registry
                .snapshot()
                .counter_total("cs_runtime_site_ops_total"),
            Some(110)
        );
    }

    #[test]
    fn site_stats_rows_serialize_every_counter() {
        let rt = Runtime::new(Switch::builder().build());
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "row");
        map.insert(1, 1);
        rt.flush_thread();
        let stats = rt.site_stats(map.id()).unwrap();
        let row = site_stats_to_json(&stats).render();
        assert!(row.contains("\"site\":\"row\""));
        assert!(row.contains("\"populate\":1"));
        assert!(row.contains("\"flushes\":1"));
        assert!(row.contains("\"current_kind\":\"chained\""));
        assert!(row.contains("\"current_strategy\":\"lockstriped\""));
        assert!(row.contains("\"contended\":0"));
        assert!(row.contains("\"contention_ratio\":0"));
        assert!(row.contains("\"alloc_count\":0"));
        assert!(row.contains("\"alloc_bytes_per_op\":0"));
    }

    #[test]
    fn alloc_metrics_export_and_validate() {
        let rt = Runtime::new(Switch::builder().build());
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "alloc");
        for i in 0..10 {
            map.insert(i, i);
        }
        rt.flush_thread();
        let registry = MetricsRegistry::new();
        rt.export_metrics(&registry);
        let snap = registry.snapshot();
        // No CountingAlloc is installed in unit tests, so the attributed
        // values are zero — but the families must exist and validate.
        assert_eq!(
            snap.counter_total("cs_runtime_site_alloc_bytes_total"),
            Some(0)
        );
        assert_eq!(
            snap.counter_total("cs_runtime_site_alloc_count_total"),
            Some(0)
        );
        assert!(snap.family("cs_runtime_site_alloc_bytes_per_op").is_some());
        validate_prometheus_text(&snap.to_prometheus_text()).expect("valid exposition");
    }

    #[test]
    fn contention_ratio_gauge_tracks_contended_over_total() {
        let rt = Runtime::new(Switch::builder().build());
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "ratio");
        for i in 0..10 {
            map.insert(i, i);
        }
        rt.flush_thread();
        let registry = MetricsRegistry::new();
        rt.export_metrics(&registry);
        let snap = registry.snapshot();
        let family = snap
            .family("cs_runtime_site_contention_ratio")
            .expect("ratio gauge exported for every site");
        match family.series[0].value {
            cs_telemetry::ValueSnapshot::FloatGauge(v) => {
                assert_eq!(v, 0.0, "single-threaded load is uncontended")
            }
            ref other => panic!("not a float gauge: {other:?}"),
        }
    }
}
