//! The concurrent adaptive map handle.
//!
//! A [`ConcurrentMap`] is the runtime's `Send + Sync` counterpart of
//! [`SwitchMap`](cs_core::SwitchMap): a lock-striped map (the design proven
//! by [`cs_collections::ShardedHashMap`]) whose shards each hold an
//! [`AnyMap`] *variant* chosen by the engine. The analyzer switches the
//! site's current kind exactly as it does for single-owner handles —
//! verification, rollback, and quarantine included — and shards migrate to
//! the new kind lazily, on their next access, under their own lock.

use std::hash::Hash;
use std::sync::Arc;

use cs_collections::{hash_one, AnyMap, MapKind, MapOps};
use cs_core::ContextCore;
use cs_profile::OpKind;
use parking_lot::Mutex;

use crate::site::SiteShared;
use crate::tlb;

pub(crate) struct MapInner<K: Eq + Hash + Clone, V: Clone> {
    pub(crate) shared: Arc<SiteShared>,
    pub(crate) core: Arc<ContextCore<MapKind>>,
    shards: Box<[Mutex<AnyMap<K, V>>]>,
    mask: u64,
}

/// A thread-safe adaptive map bound to one runtime site.
///
/// Cloning is cheap (shared state); clones refer to the same map. All
/// methods take `&self` and may be called from any number of threads.
///
/// Operation recording goes through the calling thread's local buffer
/// (the `tlb` module) — an op's only shared write is the shard it touches.
///
/// # Examples
///
/// ```
/// use cs_collections::MapKind;
/// use cs_core::Switch;
/// use cs_runtime::Runtime;
///
/// let runtime = Runtime::new(Switch::builder().build());
/// let map = runtime.concurrent_map::<u64, u64>(MapKind::Chained);
/// let threads: Vec<_> = (0..4)
///     .map(|t| {
///         let map = map.clone();
///         std::thread::spawn(move || {
///             for i in 0..100 {
///                 map.insert(t * 100 + i, i);
///             }
///         })
///     })
///     .collect();
/// for t in threads {
///     t.join().unwrap();
/// }
/// assert_eq!(map.len(), 400);
/// assert_eq!(map.get(&105), Some(5));
/// ```
pub struct ConcurrentMap<K: Eq + Hash + Clone, V: Clone> {
    inner: Arc<MapInner<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Clone for ConcurrentMap<K, V> {
    fn clone(&self) -> Self {
        ConcurrentMap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> std::fmt::Debug for ConcurrentMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMap")
            .field("site", &self.inner.shared.name())
            .field("shards", &self.inner.shards.len())
            .field("kind", &self.inner.core.current_kind())
            .finish()
    }
}

/// Replaces the shard's variant with `want`, migrating every entry. Runs
/// under the shard lock, so concurrent readers/writers simply wait out the
/// migration — and the wait is charged to the op that triggered it, which
/// is exactly the switch cost post-switch verification should see.
fn migrate_shard<K: Eq + Hash + Clone, V: Clone>(shard: &mut AnyMap<K, V>, want: MapKind) {
    let old = std::mem::replace(shard, AnyMap::new(MapKind::Array));
    *shard = old.switched_to(want);
}

impl<K: Eq + Hash + Clone, V: Clone> ConcurrentMap<K, V> {
    pub(crate) fn new(
        shared: Arc<SiteShared>,
        core: Arc<ContextCore<MapKind>>,
        shards: usize,
    ) -> Self {
        let n = shards.next_power_of_two();
        let kind = core.current_kind();
        ConcurrentMap {
            inner: Arc::new(MapInner {
                shared,
                core,
                shards: (0..n).map(|_| Mutex::new(AnyMap::new(kind))).collect(),
                mask: (n - 1) as u64,
            }),
        }
    }

    /// One critical op: pick the shard by key hash, lock it (counting
    /// contention), migrate it if the analyzer moved the site to a new
    /// variant, run the op, and record it thread-locally.
    #[inline]
    fn op<R>(&self, op: OpKind, hash: u64, f: impl FnOnce(&mut AnyMap<K, V>) -> R) -> R {
        let inner = &self.inner;
        let shard = &inner.shards[((hash >> 48) & inner.mask) as usize];
        tlb::site_op(&inner.shared, op, || {
            let mut guard = match shard.try_lock() {
                Some(g) => g,
                None => {
                    inner.shared.note_contended();
                    shard.lock()
                }
            };
            let want = inner.core.current_kind();
            if guard.kind() != want {
                migrate_shard(&mut guard, want);
            }
            let out = f(&mut guard);
            (out, guard.len())
        })
    }

    /// Inserts or replaces the value for `key`, returning the previous
    /// value (critical op: *populate*).
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let h = hash_one(&key);
        self.op(OpKind::Populate, h, |m| m.map_insert(key, value))
    }

    /// Returns a clone of the value for `key` (critical op: *contains*).
    pub fn get(&self, key: &K) -> Option<V> {
        self.op(OpKind::Contains, hash_one(key), |m| m.map_get(key).cloned())
    }

    /// Applies `f` to the value for `key` under the shard lock — the
    /// clone-free lookup (critical op: *contains*).
    pub fn read<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.op(OpKind::Contains, hash_one(key), |m| m.map_get(key).map(f))
    }

    /// Returns `true` if `key` has an entry (critical op: *contains*).
    pub fn contains_key(&self, key: &K) -> bool {
        self.op(OpKind::Contains, hash_one(key), |m| m.contains_key(key))
    }

    /// Removes the entry for `key`, returning its value (critical op:
    /// *middle*).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.op(OpKind::Middle, hash_one(key), |m| m.map_remove(key))
    }

    /// Updates the value for `key` in place (inserting `default()` first if
    /// absent), returning a clone of the updated value. The whole update
    /// runs under the shard lock (critical op: *populate*).
    pub fn update(&self, key: K, default: impl FnOnce() -> V, f: impl FnOnce(&mut V)) -> V {
        let h = hash_one(&key);
        self.op(OpKind::Populate, h, |m| {
            if !m.contains_key(&key) {
                m.map_insert(key.clone(), default());
            }
            let mut out = None;
            // AnyMap has no get_mut (single-owner handles never needed it);
            // read-modify-write under the shard lock is equivalent.
            if let Some(v) = m.map_get(&key) {
                let mut v = v.clone();
                f(&mut v);
                out = Some(v.clone());
                m.map_insert(key.clone(), v);
            }
            out.expect("present or just inserted")
        })
    }

    /// Visits every entry, shard by shard (critical op: *iterate*; each
    /// shard is locked only while it is visited).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.inner.shards.iter() {
            // Iteration is recorded once per shard so the profile sees the
            // traversal weight proportional to the data actually walked.
            tlb::site_op(&self.inner.shared, OpKind::Iterate, || {
                let mut guard = match shard.try_lock() {
                    Some(g) => g,
                    None => {
                        self.inner.shared.note_contended();
                        shard.lock()
                    }
                };
                let want = self.inner.core.current_kind();
                if guard.kind() != want {
                    migrate_shard(&mut guard, want);
                }
                guard.for_each_entry(&mut |k, v| f(k, v));
                ((), guard.len())
            });
        }
    }

    /// Total entries over all shards (a point-in-time sum; not recorded as
    /// a critical op).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if no shard holds entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry (not recorded as a critical op).
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Number of lock-striped shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The variant the site currently instantiates (shards migrate to it
    /// lazily on their next access).
    pub fn current_kind(&self) -> MapKind {
        self.inner.core.current_kind()
    }

    /// The site's id within its engine.
    pub fn id(&self) -> u64 {
        self.inner.shared.id()
    }

    /// The site's allocation-site label.
    pub fn name(&self) -> &str {
        self.inner.shared.name()
    }

    /// A snapshot of the site's counters (exact op totals, flushes,
    /// contention, switches, rollbacks).
    pub fn stats(&self) -> crate::SiteStats {
        self.inner.shared.stats()
    }

    /// Flushes the *calling thread's* buffered ops for every site,
    /// making them visible to [`ConcurrentMap::stats`] and the analyzer.
    pub fn flush(&self) {
        tlb::flush_current_thread();
    }
}
