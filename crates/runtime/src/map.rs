//! The concurrent adaptive map handle.
//!
//! A [`ConcurrentMap`] is the runtime's `Send + Sync` counterpart of
//! [`SwitchMap`](cs_core::SwitchMap), and the home of the *concurrency
//! strategy tier*: the same map can run **lock-striped** (shards of
//! [`AnyMap`] variants behind mutexes, the design proven by
//! [`cs_collections::ShardedHashMap`]) or **lock-free**
//! ([`cs_lockfree::LockFreeMap`], open addressing with epoch reclamation).
//! A dedicated [`ConcKind`] engine context prices both strategies over the
//! site's flushed profiles — `contended` counters included — and the map
//! migrates between them when observed contention crosses the model's
//! break-even ratio.
//!
//! Within the striped strategy, the analyzer still switches the per-shard
//! [`MapKind`] variant exactly as it does for single-owner handles —
//! verification, rollback, and quarantine included — and shards migrate to
//! the new kind lazily, on their next access, under their own lock.
//!
//! ## Strategy migration protocol
//!
//! The current strategy lives in a `mode` byte (`STRIPED`, `LOCKFREE`, or
//! `MIGRATING`); a single migration mutex serializes transitions.
//!
//! * **striped → lock-free**: set `MIGRATING`, then drain every shard into
//!   the lock-free table under that shard's own lock. An op that took its
//!   shard lock before the mode flip completes normally and is drained
//!   with the shard; an op that takes the lock afterwards re-reads the
//!   mode *under the lock*, sees `MIGRATING`, and backs off to wait — so
//!   no write can land in an already-drained shard.
//! * **lock-free → striped**: set `MIGRATING`, then
//!   [`cs_lockfree::epoch::wait_grace_period`]. Lock-free ops pin an epoch
//!   guard *before* checking the mode, so once the grace period has
//!   elapsed every op that could have seen `LOCKFREE` has retired and
//!   nothing new will touch the table. The entries are then drained back
//!   into the shards and the mode set to `STRIPED`.
//!
//! Waiters block on the migration mutex (never while holding a shard lock
//! or an epoch pin), so the whole transition is deadlock-free, and the
//! wait is charged to the ops that triggered it — exactly the switch cost
//! post-switch verification should see.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use cs_collections::{hash_one, AnyMap, ConcKind, MapKind, MapOps};
use cs_core::ContextCore;
use cs_lockfree::{epoch, LockFreeMap};
use cs_profile::OpKind;
use parking_lot::Mutex;

use crate::site::SiteShared;
use crate::tlb;

/// `mode` values: which strategy ops should take right now.
const MODE_STRIPED: u8 = 0;
const MODE_LOCKFREE: u8 = 1;
const MODE_MIGRATING: u8 = 2;

pub(crate) struct MapInner<K: Eq + Hash + Clone, V: Clone> {
    pub(crate) shared: Arc<SiteShared>,
    pub(crate) core: Arc<ContextCore<MapKind>>,
    /// The strategy-tier context: decides lock-striped vs lock-free.
    strategy: Arc<ContextCore<ConcKind>>,
    shards: Box<[Mutex<AnyMap<K, V>>]>,
    mask: u64,
    /// Which strategy is live (`MODE_*`). Written only under `migration`.
    mode: AtomicU8,
    /// The lock-free representation; empty while the map runs striped.
    lockfree: LockFreeMap<K, V>,
    /// Serializes strategy migrations; waiters block here (and only here).
    migration: Mutex<()>,
    /// Completed strategy migrations (either direction).
    strategy_migrations: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> MapInner<K, V> {
    /// Blocks until any in-flight strategy migration finishes.
    fn wait_migration(&self) {
        drop(self.migration.lock());
    }

    /// Moves the map to whatever strategy its context currently selects.
    /// Serialized on the migration mutex; re-checks after acquiring it, so
    /// racing callers see a single transition.
    fn migrate(&self) {
        let _guard = self.migration.lock();
        let want = match self.strategy.current_kind() {
            ConcKind::LockStriped => MODE_STRIPED,
            ConcKind::LockFree => MODE_LOCKFREE,
        };
        let mode = self.mode.load(Ordering::SeqCst);
        if mode == want {
            return;
        }
        debug_assert_ne!(mode, MODE_MIGRATING, "mode is only MIGRATING under the mutex");
        self.mode.store(MODE_MIGRATING, Ordering::SeqCst);
        match want {
            MODE_LOCKFREE => {
                // Shard by shard, under each shard's own lock: in-flight
                // striped ops finish first, late ones re-check the mode
                // under the lock and divert.
                for shard in self.shards.iter() {
                    let mut guard = shard.lock();
                    guard.for_each_entry(&mut |k, v| {
                        self.lockfree.insert(k.clone(), v.clone());
                    });
                    guard.clear();
                }
            }
            _ => {
                // No lock stops a lock-free op; the grace period does.
                // Every op pins before reading the mode, so after one full
                // grace period nothing can still be touching the table.
                epoch::wait_grace_period();
                let kind = self.core.current_kind();
                self.lockfree.for_each(|k, v| {
                    let h = hash_one(k);
                    let mut guard = self.shards[((h >> 48) & self.mask) as usize].lock();
                    if guard.kind() != kind {
                        migrate_shard(&mut guard, kind);
                    }
                    guard.map_insert(k.clone(), v.clone());
                });
                self.lockfree.clear();
                self.lockfree.collect_garbage();
            }
        }
        self.strategy_migrations.fetch_add(1, Ordering::Relaxed);
        self.mode.store(want, Ordering::SeqCst);
    }
}

/// A thread-safe adaptive map bound to one runtime site.
///
/// Cloning is cheap (shared state); clones refer to the same map. All
/// methods take `&self` and may be called from any number of threads.
///
/// Operation recording goes through the calling thread's local buffer
/// (the `tlb` module); ops that hit contention — a held shard lock, a lost
/// CAS, migration help — are flagged there, and the flushed profiles carry
/// the count into the strategy tier's cost model.
///
/// # Examples
///
/// ```
/// use cs_collections::MapKind;
/// use cs_core::Switch;
/// use cs_runtime::Runtime;
///
/// let runtime = Runtime::new(Switch::builder().build());
/// let map = runtime.concurrent_map::<u64, u64>(MapKind::Chained);
/// let threads: Vec<_> = (0..4)
///     .map(|t| {
///         let map = map.clone();
///         std::thread::spawn(move || {
///             for i in 0..100 {
///                 map.insert(t * 100 + i, i);
///             }
///         })
///     })
///     .collect();
/// for t in threads {
///     t.join().unwrap();
/// }
/// assert_eq!(map.len(), 400);
/// assert_eq!(map.get(&105), Some(5));
/// ```
pub struct ConcurrentMap<K: Eq + Hash + Clone, V: Clone> {
    inner: Arc<MapInner<K, V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Clone for ConcurrentMap<K, V> {
    fn clone(&self) -> Self {
        ConcurrentMap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> std::fmt::Debug for ConcurrentMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMap")
            .field("site", &self.inner.shared.name())
            .field("shards", &self.inner.shards.len())
            .field("kind", &self.inner.core.current_kind())
            .field("strategy", &self.inner.strategy.current_kind())
            .finish()
    }
}

/// Replaces the shard's variant with `want`, migrating every entry. Runs
/// under the shard lock, so concurrent readers/writers simply wait out the
/// migration — and the wait is charged to the op that triggered it, which
/// is exactly the switch cost post-switch verification should see.
fn migrate_shard<K: Eq + Hash + Clone, V: Clone>(shard: &mut AnyMap<K, V>, want: MapKind) {
    let old = std::mem::replace(shard, AnyMap::new(MapKind::Array));
    *shard = old.switched_to(want);
}

impl<K: Eq + Hash + Clone, V: Clone> ConcurrentMap<K, V> {
    pub(crate) fn new(
        shared: Arc<SiteShared>,
        core: Arc<ContextCore<MapKind>>,
        strategy: Arc<ContextCore<ConcKind>>,
        shards: usize,
    ) -> Self {
        let n = shards.next_power_of_two();
        let kind = core.current_kind();
        let mode = match strategy.current_kind() {
            ConcKind::LockStriped => MODE_STRIPED,
            ConcKind::LockFree => MODE_LOCKFREE,
        };
        ConcurrentMap {
            inner: Arc::new(MapInner {
                shared,
                core,
                strategy,
                shards: (0..n).map(|_| Mutex::new(AnyMap::new(kind))).collect(),
                mask: (n - 1) as u64,
                mode: AtomicU8::new(mode),
                lockfree: LockFreeMap::new(),
                migration: Mutex::new(()),
                strategy_migrations: AtomicU64::new(0),
            }),
        }
    }

    /// One critical op, dispatched over the live strategy: pick the route
    /// the mode byte names, re-validate it at a safe point (under the shard
    /// lock / inside an epoch pin), run the matching closure, and record
    /// the op — with its contention flag — thread-locally.
    ///
    /// `striped` runs under a shard lock and may be retried if a strategy
    /// migration slips in between the mode read and the lock; `lockfree`
    /// runs inside an epoch pin and returns `(result, contended)`.
    #[inline]
    fn op<R>(
        &self,
        op: OpKind,
        hash: u64,
        mut striped: impl FnMut(&mut AnyMap<K, V>) -> R,
        mut lockfree: impl FnMut(&LockFreeMap<K, V>) -> (R, bool),
    ) -> R {
        let inner = &self.inner;
        tlb::site_op_tracked(&inner.shared, op, || loop {
            match inner.mode.load(Ordering::SeqCst) {
                MODE_STRIPED => {
                    if inner.strategy.current_kind() == ConcKind::LockFree {
                        inner.migrate();
                        continue;
                    }
                    let shard = &inner.shards[((hash >> 48) & inner.mask) as usize];
                    let (mut guard, contended) = match shard.try_lock() {
                        Some(g) => (g, false),
                        None => (shard.lock(), true),
                    };
                    // Re-check under the lock: a migration that started
                    // after the mode read above may already have drained
                    // this shard.
                    if inner.mode.load(Ordering::SeqCst) != MODE_STRIPED {
                        drop(guard);
                        continue;
                    }
                    let want = inner.core.current_kind();
                    if guard.kind() != want {
                        migrate_shard(&mut guard, want);
                    }
                    let out = striped(&mut guard);
                    return (out, guard.len(), contended);
                }
                MODE_LOCKFREE => {
                    if inner.strategy.current_kind() == ConcKind::LockStriped {
                        inner.migrate();
                        continue;
                    }
                    // Pin *before* re-reading the mode: the migration's
                    // grace period can then only elapse once this op is
                    // done (or has seen MIGRATING and backed off).
                    let pin = epoch::pin();
                    if inner.mode.load(Ordering::SeqCst) != MODE_LOCKFREE {
                        drop(pin);
                        continue;
                    }
                    let (out, contended) = lockfree(&inner.lockfree);
                    let len = inner.lockfree.len();
                    drop(pin);
                    return (out, len, contended);
                }
                _ => inner.wait_migration(),
            }
        })
    }

    /// Inserts or replaces the value for `key`, returning the previous
    /// value (critical op: *populate*).
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let h = hash_one(&key);
        self.op(
            OpKind::Populate,
            h,
            |m| m.map_insert(key.clone(), value.clone()),
            |lf| {
                let t = lf.insert_tracked(key.clone(), value.clone());
                (t.value, t.contended)
            },
        )
    }

    /// Returns a clone of the value for `key` (critical op: *contains*).
    pub fn get(&self, key: &K) -> Option<V> {
        self.op(
            OpKind::Contains,
            hash_one(key),
            |m| m.map_get(key).cloned(),
            |lf| (lf.get(key), false),
        )
    }

    /// Applies `f` to the value for `key` — the clone-free lookup
    /// (critical op: *contains*). Under the striped strategy `f` runs under
    /// the shard lock; under the lock-free strategy it runs inside an epoch
    /// pin.
    pub fn read<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        // Both dispatch closures need the one-shot `f`; a Cell lets them
        // share it by immutable borrow (exactly one branch ever runs).
        let f = std::cell::Cell::new(Some(f));
        self.op(
            OpKind::Contains,
            hash_one(key),
            |m| m.map_get(key).map(f.take().expect("op runs once")),
            |lf| (lf.read(key, f.take().expect("op runs once")), false),
        )
    }

    /// Returns `true` if `key` has an entry (critical op: *contains*).
    pub fn contains_key(&self, key: &K) -> bool {
        self.op(
            OpKind::Contains,
            hash_one(key),
            |m| m.contains_key(key),
            |lf| (lf.contains_key(key), false),
        )
    }

    /// Removes the entry for `key`, returning its value (critical op:
    /// *middle*).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.op(
            OpKind::Middle,
            hash_one(key),
            |m| m.map_remove(key),
            |lf| {
                let t = lf.remove_tracked(key);
                (t.value, t.contended)
            },
        )
    }

    /// Updates the value for `key` in place (inserting `default()` first if
    /// absent), returning a clone of the updated value (critical op:
    /// *populate*). Under the striped strategy the whole update runs under
    /// the shard lock; under the lock-free strategy it is an atomic upsert
    /// (retried on interference, which counts as contention).
    pub fn update(&self, key: K, default: impl Fn() -> V, f: impl Fn(&mut V)) -> V {
        let h = hash_one(&key);
        let mut updated: Option<V> = None;
        self.op(
            OpKind::Populate,
            h,
            |m| {
                if !m.contains_key(&key) {
                    m.map_insert(key.clone(), default());
                }
                // AnyMap has no get_mut (single-owner handles never needed
                // it); read-modify-write under the shard lock is equivalent.
                let v = m.map_get(&key).expect("present or just inserted");
                let mut v = v.clone();
                f(&mut v);
                m.map_insert(key.clone(), v.clone());
                v
            },
            |lf| {
                let t = lf.upsert_tracked(key.clone(), |old| {
                    let mut v = match old {
                        Some(v) => v.clone(),
                        None => default(),
                    };
                    f(&mut v);
                    updated = Some(v.clone());
                    v
                });
                (updated.take().expect("upsert computes once"), t.contended)
            },
        )
    }

    /// Visits every entry (critical op: *iterate*). Under the striped
    /// strategy shards are visited one at a time, each locked only while it
    /// is walked; under the lock-free strategy the traversal is a wait-free
    /// snapshot walk of the open-addressing table.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let inner = &self.inner;
        loop {
            match inner.mode.load(Ordering::SeqCst) {
                MODE_STRIPED => {
                    let mut diverted = false;
                    for shard in inner.shards.iter() {
                        // Iteration is recorded once per shard so the
                        // profile sees the traversal weight proportional to
                        // the data actually walked.
                        tlb::site_op_tracked(&inner.shared, OpKind::Iterate, || {
                            let (mut guard, contended) = match shard.try_lock() {
                                Some(g) => (g, false),
                                None => (shard.lock(), true),
                            };
                            if inner.mode.load(Ordering::SeqCst) != MODE_STRIPED {
                                diverted = true;
                                return ((), guard.len(), contended);
                            }
                            let want = inner.core.current_kind();
                            if guard.kind() != want {
                                migrate_shard(&mut guard, want);
                            }
                            guard.for_each_entry(&mut |k, v| f(k, v));
                            ((), guard.len(), contended)
                        });
                        if diverted {
                            break;
                        }
                    }
                    if diverted {
                        inner.wait_migration();
                        continue;
                    }
                    return;
                }
                MODE_LOCKFREE => {
                    let mut done = false;
                    tlb::site_op_tracked(&inner.shared, OpKind::Iterate, || {
                        let pin = epoch::pin();
                        if inner.mode.load(Ordering::SeqCst) == MODE_LOCKFREE {
                            inner.lockfree.for_each(&mut f);
                            done = true;
                        }
                        let len = inner.lockfree.len();
                        drop(pin);
                        ((), len, false)
                    });
                    if done {
                        return;
                    }
                }
                _ => inner.wait_migration(),
            }
        }
    }

    /// Total entries (a point-in-time sum; not recorded as a critical op).
    pub fn len(&self) -> usize {
        let inner = &self.inner;
        loop {
            match inner.mode.load(Ordering::SeqCst) {
                MODE_STRIPED => return inner.shards.iter().map(|s| s.lock().len()).sum(),
                MODE_LOCKFREE => return inner.lockfree.len(),
                _ => inner.wait_migration(),
            }
        }
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry (not recorded as a critical op).
    pub fn clear(&self) {
        let inner = &self.inner;
        loop {
            match inner.mode.load(Ordering::SeqCst) {
                MODE_STRIPED => {
                    for shard in inner.shards.iter() {
                        let mut guard = shard.lock();
                        if inner.mode.load(Ordering::SeqCst) != MODE_STRIPED {
                            break;
                        }
                        guard.clear();
                    }
                    return;
                }
                MODE_LOCKFREE => {
                    let pin = epoch::pin();
                    if inner.mode.load(Ordering::SeqCst) == MODE_LOCKFREE {
                        inner.lockfree.clear();
                        drop(pin);
                        return;
                    }
                    drop(pin);
                }
                _ => inner.wait_migration(),
            }
        }
    }

    /// Number of lock-striped shards (the striped strategy's fan-out; the
    /// lock-free strategy uses a single shared table).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The variant the site currently instantiates within the striped
    /// strategy (shards migrate to it lazily on their next access).
    pub fn current_kind(&self) -> MapKind {
        self.inner.core.current_kind()
    }

    /// The concurrency strategy the site's strategy context currently
    /// selects. The map itself converges to it on the next op (strategy
    /// migrations are lazy, like shard migrations).
    pub fn current_strategy(&self) -> ConcKind {
        self.inner.strategy.current_kind()
    }

    /// The strategy context's site id — [`Switch::explain`](cs_core::Switch::explain)
    /// with this id returns the audit trail of the latest strategy
    /// decision, contention term included.
    pub fn strategy_id(&self) -> u64 {
        self.inner.strategy.id()
    }

    /// Completed strategy migrations (either direction) on this map.
    pub fn strategy_migrations(&self) -> u64 {
        self.inner.strategy_migrations.load(Ordering::Relaxed)
    }

    /// The site's id within its engine.
    pub fn id(&self) -> u64 {
        self.inner.shared.id()
    }

    /// The site's allocation-site label.
    pub fn name(&self) -> &str {
        self.inner.shared.name()
    }

    /// A snapshot of the site's counters (exact op totals, flushes,
    /// contention, switches, rollbacks).
    pub fn stats(&self) -> crate::SiteStats {
        self.inner.shared.stats()
    }

    /// Flushes the *calling thread's* buffered ops for every site,
    /// making them visible to [`ConcurrentMap::stats`] and the analyzer.
    pub fn flush(&self) {
        tlb::flush_current_thread();
    }
}
