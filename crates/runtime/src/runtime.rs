//! The runtime front door: engine + sharded site registry + handle factory.

use std::hash::Hash;
use std::sync::Arc;
use std::time::Duration;

use cs_collections::{ConcKind, MapKind, SetKind, ShardedHashMap};
use cs_core::Switch;

use crate::map::ConcurrentMap;
use crate::set::ConcurrentSet;
use crate::site::{CoreRef, FlushPolicy, SiteShared, SiteStats};
use crate::tlb;

/// Tuning knobs for a [`Runtime`] — shard fan-out for the handles it
/// creates, and the flush policy stamped onto every site.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Lock-striped shards per concurrent handle (rounded up to a power of
    /// two). More shards, less contention, more per-handle memory.
    pub shards: usize,
    /// Count trigger: a thread-local buffer flushes once it holds this many
    /// ops. One flush is one "finished monitored instance" to the engine,
    /// so this is the runtime's analogue of the monitoring window size.
    pub flush_ops: u64,
    /// Time trigger: a buffer older than this flushes on the next op that
    /// probes the clock (every 64 ops). Bounds staleness on quiet threads.
    pub flush_interval: Duration,
    /// Timing sample rate as a power of two: 1 op in `1 << sample_shift` is
    /// wall-clocked and scaled up. `0` times every op.
    pub sample_shift: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: 16,
            flush_ops: 1024,
            flush_interval: Duration::from_millis(10),
            sample_shift: 3,
        }
    }
}

impl RuntimeConfig {
    fn policy(&self) -> FlushPolicy {
        FlushPolicy {
            flush_ops: self.flush_ops.max(1),
            flush_nanos: u64::try_from(self.flush_interval.as_nanos()).unwrap_or(u64::MAX),
            sample_mask: (1u64 << self.sample_shift.min(63)) - 1,
        }
    }
}

/// The concurrent selection runtime: wraps a [`Switch`] engine with a
/// sharded site registry and hands out `Send + Sync` monitored collections.
///
/// The engine's guarded adaptation (verification, rollback, quarantine,
/// degraded mode) applies to runtime sites unchanged: every thread-local
/// buffer flush feeds the site's engine context as one finished monitored
/// instance, and [`Runtime::analyze_now`] (or the engine's background
/// analyzer) drives switches.
///
/// ```
/// use cs_collections::MapKind;
/// use cs_core::Switch;
/// use cs_runtime::Runtime;
///
/// let runtime = Runtime::new(Switch::builder().build());
/// let map = runtime.named_concurrent_map::<u64, String>(MapKind::Chained, "session-cache");
/// map.insert(7, "alpha".to_string());
/// assert_eq!(map.get(&7).as_deref(), Some("alpha"));
///
/// runtime.flush_thread(); // publish this thread's buffered ops
/// let stats = runtime.site_stats(map.id()).unwrap();
/// assert_eq!(stats.total_ops, 2);
/// ```
#[derive(Clone)]
pub struct Runtime {
    engine: Switch,
    config: RuntimeConfig,
    registry: Arc<ShardedHashMap<u64, Arc<SiteShared>>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("sites", &self.registry.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Runtime {
    /// Wraps `engine` with the default [`RuntimeConfig`].
    pub fn new(engine: Switch) -> Self {
        Runtime::with_config(engine, RuntimeConfig::default())
    }

    /// Wraps `engine` with an explicit config.
    pub fn with_config(engine: Switch, config: RuntimeConfig) -> Self {
        Runtime {
            engine,
            config,
            registry: Arc::new(ShardedHashMap::new()),
        }
    }

    /// The wrapped engine (for event/transition logs, degraded-mode checks,
    /// or registering single-owner handles alongside concurrent ones).
    pub fn engine(&self) -> &Switch {
        &self.engine
    }

    /// The runtime's configuration.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    fn register(&self, site: Arc<SiteShared>) {
        self.registry.insert(site.id(), site);
    }

    /// Creates an anonymous concurrent map site starting at `default`.
    pub fn concurrent_map<K, V>(&self, default: MapKind) -> ConcurrentMap<K, V>
    where
        K: Eq + Hash + Clone,
        V: Clone,
    {
        self.named_concurrent_map(default, format!("cmap-{}", self.registry.len()))
    }

    /// Creates a named concurrent map site starting at `default`. The site
    /// registers with the engine (so the analyzer sees it) and with the
    /// runtime's registry (so [`Runtime::site_stats`] can find it).
    ///
    /// Every concurrent map also gets a *strategy context* — a second
    /// engine context over [`ConcKind`] that decides lock-striped vs
    /// lock-free from the same flushed profiles (contention counters
    /// included). It starts at [`ConcKind::LockStriped`], the strategy
    /// every map ran before the tier existed.
    pub fn named_concurrent_map<K, V>(
        &self,
        default: MapKind,
        name: impl Into<String>,
    ) -> ConcurrentMap<K, V>
    where
        K: Eq + Hash + Clone,
        V: Clone,
    {
        let name = name.into();
        let ctx = self
            .engine
            .named_map_context::<K, V>(default, name.clone());
        let core = Arc::clone(ctx.core());
        let strategy = self
            .engine
            .named_conc_context(ConcKind::LockStriped, format!("{name}#strategy"));
        let shared = Arc::new(SiteShared::with_strategy(
            ctx.id(),
            name,
            CoreRef::Map(Arc::clone(&core)),
            Some(Arc::clone(&strategy)),
            self.config.policy(),
        ));
        self.register(Arc::clone(&shared));
        ConcurrentMap::new(shared, core, strategy, self.config.shards)
    }

    /// Creates an anonymous concurrent set site starting at `default`.
    pub fn concurrent_set<T>(&self, default: SetKind) -> ConcurrentSet<T>
    where
        T: Eq + Hash + Clone,
    {
        self.named_concurrent_set(default, format!("cset-{}", self.registry.len()))
    }

    /// Creates a named concurrent set site starting at `default`.
    pub fn named_concurrent_set<T>(
        &self,
        default: SetKind,
        name: impl Into<String>,
    ) -> ConcurrentSet<T>
    where
        T: Eq + Hash + Clone,
    {
        let name = name.into();
        let ctx = self.engine.named_set_context::<T>(default, name.clone());
        let core = Arc::clone(ctx.core());
        let shared = Arc::new(SiteShared::new(
            ctx.id(),
            name,
            CoreRef::Set(Arc::clone(&core)),
            self.config.policy(),
        ));
        self.register(Arc::clone(&shared));
        ConcurrentSet::new(shared, core, self.config.shards)
    }

    /// Runs one guarded analysis round over every engine context, runtime
    /// sites included. Flush first (per thread) if the round should see the
    /// latest ops.
    pub fn analyze_now(&self) {
        self.engine.analyze_now();
    }

    /// Flushes the *calling* thread's buffered ops into their sites. Each
    /// worker thread flushes its own buffers (or lets its thread-exit
    /// destructor do it); there is no cross-thread flush by design — that
    /// would reintroduce the shared hot path the buffers exist to avoid.
    pub fn flush_thread(&self) {
        tlb::flush_current_thread();
    }

    /// Atomically persists the engine's learned selection state (runtime
    /// sites included — every concurrent handle is an engine context) via
    /// [`Switch::save_state`]. Restore it on the next boot by building the
    /// engine with `Switch::builder().warm_start_from(path)`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write.
    pub fn save_state(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<cs_state::WriteReport> {
        self.engine.save_state(path)
    }

    /// Subscribes a [`cs_core::StatePersister`] keeping `path` current with
    /// crash-safe snapshots of the engine's learned state; see
    /// [`Switch::persist_state_to`].
    pub fn persist_state_to(
        &self,
        path: impl Into<std::path::PathBuf>,
        policy: cs_core::SnapshotPolicy,
    ) -> Arc<cs_core::StatePersister> {
        self.engine.persist_state_to(path, policy)
    }

    /// Snapshot of one site's counters, by site id. Reads the registry
    /// entry in place ([`ShardedHashMap::read`]) — no clone on this path.
    pub fn site_stats(&self, id: u64) -> Option<SiteStats> {
        self.registry.read(&id, |site| site.stats())
    }

    /// Snapshots of every runtime site, sorted by site id.
    pub fn sites(&self) -> Vec<SiteStats> {
        let mut out = Vec::with_capacity(self.registry.len());
        self.registry.for_each(|_, site| out.push(site.stats()));
        out.sort_by_key(|s| s.id);
        out
    }

    /// The runtime's *site manifest*: identity rows for every registered
    /// concurrent site, sorted by site id — the concurrent analogue of
    /// [`Switch::site_manifest`]. `cs-analyzer`'s drift check matches these
    /// rows against the allocation sites it extracts from source.
    ///
    /// Note the engine's own manifest already includes runtime sites (each
    /// concurrent handle registers an engine context); this accessor exists
    /// for hosts that run the runtime registry without engine access.
    pub fn site_manifest(&self) -> Vec<cs_core::SiteManifestEntry> {
        let mut out = Vec::with_capacity(self.registry.len());
        self.registry
            .for_each(|_, site| out.push(site.manifest_entry()));
        out.sort_by_key(|e| e.id);
        out
    }
}
