//! Thread-local profile buffers: the zero-shared-write hot path.
//!
//! Every op on a concurrent handle records into a buffer owned by the
//! calling thread ([`LocalWindowBuffer`]); nothing is shared until an
//! *epoch boundary* — the buffer reaching
//! [`FlushPolicy::flush_ops`](crate::site::FlushPolicy) recorded ops
//! (count trigger) or ageing past `flush_nanos` (time trigger, probed every
//! 64 ops) — at which point the whole buffer is folded into the site's
//! [`SiteShared`] in one batch of atomic adds plus one sink push.
//!
//! ## Memory-ordering contract
//!
//! * Buffer fields are plain (non-atomic) thread-local state: they need no
//!   ordering at all, which is what makes recording an op a handful of
//!   arithmetic instructions.
//! * A flush publishes the buffer via `SiteShared`'s relaxed atomic adds
//!   and the profile sink's mutex. The mutex release/acquire pair is the
//!   happens-before edge to the analyzer; the relaxed totals are *counters*,
//!   read only after joining worker threads (join provides the edge) or as
//!   monotonic monitoring values where momentary staleness is fine.
//! * Timing is sampled: one op in `sample_mask + 1` is wall-clocked and its
//!   nanos scaled up, so the common op pays no `Instant::now()` call.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

use cs_profile::{LocalWindowBuffer, OpKind};

use crate::site::{FlushPolicy, SiteShared};

struct LocalEntry {
    site: Arc<SiteShared>,
    buf: LocalWindowBuffer,
    last_flush: Instant,
}

impl LocalEntry {
    fn flush(&mut self, now: Instant) {
        if !self.buf.is_empty() {
            let ops = self.buf.ops_buffered();
            // The flush span covers the whole epoch handoff: the batched
            // atomic adds plus the engine-core ingest (a nested Ingest
            // span) and the sink push.
            let _span = cs_trace::span(cs_trace::Phase::Flush, self.site.id());
            self.site.ingest(self.buf.drain());
            // Credit the wall interval since this thread's previous flush
            // as application time: flush boundaries bracket pure app work,
            // so per-thread intervals can never double-count across sites.
            cs_trace::credit_app_ops(ops);
        }
        self.last_flush = now;
    }
}

#[derive(Default)]
struct LocalBuffers {
    // Linear scan by site id: a thread touches a handful of sites, and a
    // four-entry scan beats a hash lookup at that scale.
    entries: Vec<LocalEntry>,
}

impl LocalBuffers {
    fn entry(&mut self, site: &Arc<SiteShared>) -> &mut LocalEntry {
        // Keyed by Arc identity, not site id: ids are only unique within one
        // engine, and a process may run several runtimes.
        if let Some(i) = self.entries.iter().position(|e| Arc::ptr_eq(&e.site, site)) {
            return &mut self.entries[i];
        }
        self.entries.push(LocalEntry {
            site: Arc::clone(site),
            buf: LocalWindowBuffer::new(),
            last_flush: Instant::now(),
        });
        self.entries.last_mut().expect("just pushed")
    }

    fn flush_all(&mut self) {
        let now = Instant::now();
        for e in &mut self.entries {
            e.flush(now);
        }
    }
}

impl Drop for LocalBuffers {
    // Thread exit retires every residual buffer, so no recorded op is ever
    // lost — the invariant the concurrent stress test asserts.
    fn drop(&mut self) {
        self.flush_all();
    }
}

thread_local! {
    /// Per-thread op tick, used only for the timing-sample decision.
    static TICK: Cell<u64> = const { Cell::new(0) };
    static TLB: RefCell<LocalBuffers> = RefCell::new(LocalBuffers::default());
}

/// Runs `body` as one critical op of `site`, recording it into the calling
/// thread's local buffer and flushing on epoch boundaries.
///
/// `body` returns `(result, post_op_size)`; it executes *outside* any
/// thread-local borrow, so collection code (including user `Hash`/`Eq`
/// impls) can never conflict with the buffer bookkeeping.
#[inline]
// Every product op path now reports a contention flag and calls
// `site_op_tracked` directly; this untracked wrapper stays as the
// single-threaded-handle entry point (and is exercised by the unit tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn site_op<R>(
    site: &Arc<SiteShared>,
    op: OpKind,
    body: impl FnOnce() -> (R, usize),
) -> R {
    site_op_tracked(site, op, || {
        let (result, size) = body();
        (result, size, false)
    })
}

/// Like [`site_op`], for ops that also observe whether they were
/// *contended* (lost a CAS, found a lock held, helped a migration).
/// `body` returns `(result, post_op_size, contended)`; the contended flag
/// is counted in the thread-local buffer, flows into the flushed
/// [`WorkloadProfile`](cs_profile::WorkloadProfile), and from there feeds
/// the strategy tier's contention cost term.
#[inline]
pub(crate) fn site_op_tracked<R>(
    site: &Arc<SiteShared>,
    op: OpKind,
    body: impl FnOnce() -> (R, usize, bool),
) -> R {
    let policy = site.policy();
    let tick = TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v
    });
    let timed = tick & policy.sample_mask == 0;
    let (result, size, contended, nanos, alloc) = if timed {
        // The sampled op is measured on both axes at once: wall time and
        // heap churn. The attribution guard nests correctly, so a user
        // `Hash` impl touching *another* monitored site never charges its
        // allocations to this one.
        let guard = cs_heap::AllocGuard::begin();
        let start = Instant::now();
        let (result, size, contended) = body();
        let nanos = start.elapsed().as_nanos() as u64;
        let alloc = guard.finish();
        (result, size, contended, nanos, alloc)
    } else {
        let (result, size, contended) = body();
        (result, size, contended, 0, cs_heap::AllocDelta::default())
    };
    // Spans only the monitoring bookkeeping below — the application op
    // itself (`body`) stays outside the framework's account. Sampled in
    // `TraceMode::Sampled`, so the common op adds one atomic load.
    let _record_span = cs_trace::op_span(site.id());
    TLB.with(|tlb| {
        let mut tlb = tlb.borrow_mut();
        let entry = tlb.entry(site);
        entry.buf.record(op, size);
        if contended {
            entry.buf.note_contended();
        }
        if timed {
            // Scale the sampled measurements back up to the full op stream.
            let scale = policy.sample_mask + 1;
            entry.buf.add_nanos(nanos.saturating_mul(scale));
            if alloc.count > 0 {
                entry.buf.add_alloc(
                    alloc.count.saturating_mul(scale),
                    alloc.bytes.saturating_mul(scale),
                );
            }
        }
        let buffered = entry.buf.ops_buffered();
        if buffered >= policy.flush_ops {
            entry.flush(Instant::now());
        } else if buffered & FlushPolicy::CLOCK_CHECK_MASK == 0 {
            let now = Instant::now();
            if now.duration_since(entry.last_flush).as_nanos() as u64 >= policy.flush_nanos {
                entry.flush(now);
            }
        }
    });
    result
}

/// Flushes every buffer owned by the *calling* thread into its site.
///
/// Buffers also flush automatically on epoch boundaries and when the thread
/// exits; this exists for synchronous checkpoints — before an assertion in
/// a test, before a deliberate [`analyze_now`](cs_core::Switch::analyze_now).
pub fn flush_current_thread() {
    TLB.with(|tlb| tlb.borrow_mut().flush_all());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::CoreRef;
    use cs_collections::MapKind;
    use cs_core::Switch;

    fn test_site(flush_ops: u64) -> Arc<SiteShared> {
        let engine = Switch::builder().build();
        let ctx = engine.named_map_context::<u64, u64>(MapKind::Chained, "tlb-test");
        Arc::new(SiteShared::new(
            ctx.id(),
            "tlb-test".into(),
            CoreRef::Map(Arc::clone(ctx.core())),
            FlushPolicy {
                flush_ops,
                flush_nanos: u64::MAX,
                sample_mask: 0,
            },
        ))
    }

    #[test]
    fn ops_buffer_locally_until_count_trigger() {
        let site = test_site(10);
        for i in 0..9 {
            site_op(&site, OpKind::Populate, || ((), i));
        }
        // Nine ops buffered: nothing shared yet.
        assert_eq!(site.stats().total_ops, 0);
        assert_eq!(site.stats().flushes, 0);
        site_op(&site, OpKind::Populate, || ((), 9));
        // The tenth op crossed the epoch: one flush carrying all ten.
        let stats = site.stats();
        assert_eq!(stats.total_ops, 10);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.max_size, 9);
        flush_current_thread();
        assert_eq!(site.stats().flushes, 1, "empty buffers do not flush");
    }

    #[test]
    fn explicit_flush_retires_partial_buffers() {
        let site = test_site(1_000_000);
        for _ in 0..5 {
            site_op(&site, OpKind::Contains, || ((), 3));
        }
        assert_eq!(site.stats().total_ops, 0);
        flush_current_thread();
        let stats = site.stats();
        assert_eq!(stats.total_ops, 5);
        assert_eq!(stats.ops[OpKind::Contains.index()], 5);
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn thread_exit_flushes_residue() {
        let site = test_site(1_000_000);
        let s = Arc::clone(&site);
        std::thread::spawn(move || {
            for _ in 0..17 {
                site_op(&s, OpKind::Middle, || ((), 1));
            }
            // No explicit flush: the TLS destructor must retire the buffer.
        })
        .join()
        .unwrap();
        assert_eq!(site.stats().total_ops, 17);
    }

    #[test]
    fn sampled_timing_accumulates_scaled_nanos() {
        let site = test_site(4);
        for _ in 0..64 {
            site_op(&site, OpKind::Contains, || {
                std::hint::black_box((0..50).sum::<u64>());
                ((), 1)
            });
        }
        flush_current_thread();
        assert!(
            site.stats().sampled_nanos > 0,
            "mask 0 times every op, so nanos must accumulate"
        );
    }
}
