//! # cs-runtime — the concurrent selection runtime
//!
//! `cs-core`'s handles are single-owner: one `SwitchMap` belongs to one
//! thread. This crate scales the same engine to multi-threaded services by
//! adding three layers:
//!
//! 1. **A sharded site registry** — [`Runtime`] keeps its sites in a
//!    lock-striped [`ShardedHashMap`](cs_collections::ShardedHashMap) keyed
//!    by site id, so registering sites and reading their stats never funnels
//!    through one lock.
//! 2. **Thread-local profile buffers** — every op on a concurrent handle is
//!    recorded into the calling thread's private buffer and folded into the
//!    site's shared profile only on *epoch boundaries* (a count or time
//!    trigger). The hot path performs **zero shared-memory writes** for
//!    monitoring; see [`flush_current_thread`] and the `tlb` module docs
//!    for the memory-ordering contract.
//! 3. **Concurrent monitored handles** — [`ConcurrentMap`] /
//!    [`ConcurrentSet`] are `Send + Sync` lock-striped collections whose
//!    shards each hold the engine-selected variant and migrate to a new
//!    variant lazily, under their own lock, when the analyzer switches the
//!    site. Guarded adaptation — post-switch verification, rollback,
//!    quarantine, degraded mode — applies unchanged, because each flushed
//!    buffer reaches the engine as one finished monitored instance.
//!
//! ```
//! use cs_collections::MapKind;
//! use cs_core::Switch;
//! use cs_runtime::Runtime;
//!
//! let runtime = Runtime::new(Switch::builder().build());
//! let map = runtime.concurrent_map::<u64, u64>(MapKind::Chained);
//!
//! let workers: Vec<_> = (0..4)
//!     .map(|t| {
//!         let map = map.clone();
//!         std::thread::spawn(move || {
//!             for i in 0..1_000u64 {
//!                 map.insert(t * 1_000 + i, i);
//!                 map.get(&i);
//!             }
//!         })
//!     })
//!     .collect();
//! for w in workers {
//!     w.join().unwrap();
//! }
//!
//! runtime.analyze_now(); // guarded adaptation over the flushed profiles
//! let stats = runtime.site_stats(map.id()).unwrap();
//! assert_eq!(stats.total_ops, 8_000);
//! ```

mod map;
mod runtime;
mod set;
mod site;
mod telemetry;
mod tlb;

pub use map::ConcurrentMap;
pub use runtime::{Runtime, RuntimeConfig};
pub use set::ConcurrentSet;
pub use site::{SiteShared, SiteStats};
pub use telemetry::site_stats_to_json;
pub use tlb::flush_current_thread;

// Concurrency is this crate's contract: every public handle must stay
// shareable across threads. Compile-time proof, kept next to the exports.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<RuntimeConfig>();
    assert_send_sync::<ConcurrentMap<u64, String>>();
    assert_send_sync::<ConcurrentSet<String>>();
    assert_send_sync::<SiteShared>();
    assert_send_sync::<SiteStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cs_collections::{MapKind, SetKind};
    use cs_core::Switch;
    use cs_profile::OpKind;
    use std::sync::Arc;

    fn runtime() -> Runtime {
        Runtime::new(Switch::builder().build())
    }

    #[test]
    fn concurrent_map_basic_ops() {
        let rt = runtime();
        let map = rt.named_concurrent_map::<u64, String>(MapKind::Chained, "basic");
        assert!(map.is_empty());
        assert_eq!(map.insert(1, "one".into()), None);
        assert_eq!(map.insert(1, "uno".into()).as_deref(), Some("one"));
        assert_eq!(map.get(&1).as_deref(), Some("uno"));
        assert!(map.contains_key(&1));
        assert_eq!(map.read(&1, |v| v.len()), Some(3));
        assert_eq!(map.remove(&1).as_deref(), Some("uno"));
        assert!(!map.contains_key(&1));
        assert_eq!(map.get(&1), None);
    }

    #[test]
    fn concurrent_map_spreads_keys_over_shards() {
        let rt = runtime();
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        for i in 0..1_000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1_000);
        let mut seen = 0u64;
        map.for_each(|k, v| {
            assert_eq!(*v, *k * 2);
            seen += 1;
        });
        assert_eq!(seen, 1_000);
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn concurrent_map_update_read_modify_write() {
        let rt = runtime();
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        assert_eq!(map.update(9, || 0, |v| *v += 5), 5);
        assert_eq!(map.update(9, || 0, |v| *v += 5), 10);
        assert_eq!(map.get(&9), Some(10));
    }

    #[test]
    fn concurrent_set_basic_ops() {
        let rt = runtime();
        let set = rt.named_concurrent_set::<u64>(SetKind::Chained, "basic-set");
        assert!(set.insert(3));
        assert!(!set.insert(3));
        assert!(set.contains(&3));
        assert!(set.remove(&3));
        assert!(!set.remove(&3));
        assert!(set.is_empty());
    }

    #[test]
    fn flushed_ops_reach_site_stats_and_engine() {
        let rt = runtime();
        let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "stats");
        for i in 0..50 {
            map.insert(i, i);
        }
        for i in 0..100 {
            map.get(&(i % 50));
        }
        // Nothing shared yet (default flush_ops is 1024).
        assert_eq!(rt.site_stats(map.id()).unwrap().total_ops, 0);
        rt.flush_thread();
        let stats = rt.site_stats(map.id()).unwrap();
        assert_eq!(stats.ops[OpKind::Populate.index()], 50);
        assert_eq!(stats.ops[OpKind::Contains.index()], 100);
        assert_eq!(stats.total_ops, 150);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.name, "stats");
    }

    #[test]
    fn count_trigger_flushes_without_explicit_call() {
        let rt = Runtime::with_config(
            Switch::builder().build(),
            RuntimeConfig {
                flush_ops: 64,
                ..RuntimeConfig::default()
            },
        );
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        for i in 0..640 {
            map.insert(i, i);
        }
        let stats = rt.site_stats(map.id()).unwrap();
        assert_eq!(stats.total_ops, 640);
        assert_eq!(stats.flushes, 10);
    }

    #[test]
    fn multithreaded_ops_are_all_accounted() {
        let rt = runtime();
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        const THREADS: u64 = 4;
        const OPS: u64 = 2_500;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let map = map.clone();
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        map.insert(t * OPS + i, i);
                    }
                    // Thread exit flushes the residue via the TLS destructor.
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(map.len(), (THREADS * OPS) as usize);
        let stats = map.stats();
        assert_eq!(stats.total_ops, THREADS * OPS);
        assert_eq!(stats.ops[OpKind::Populate.index()], THREADS * OPS);
    }

    #[test]
    fn shards_migrate_lazily_after_switch_preserving_contents() {
        let rt = runtime();
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        for i in 0..200 {
            map.insert(i, i + 1);
        }
        // Force the site's kind over the engine core directly, as a guarded
        // switch would; shards must follow on their next access.
        let before = map.current_kind();
        assert_eq!(before, MapKind::Chained);
        // Feed enough profiles for rounds to run, then check data survives
        // whatever kind the analyzer chose (possibly unchanged).
        rt.flush_thread();
        rt.analyze_now();
        for i in 0..200 {
            assert_eq!(map.get(&i), Some(i + 1), "entry {i} lost across rounds");
        }
        assert_eq!(map.len(), 200);
    }

    #[test]
    fn registry_lists_sites_sorted_by_id() {
        let rt = runtime();
        let a = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "alpha");
        let b = rt.named_concurrent_set::<u64>(SetKind::Chained, "beta");
        let sites = rt.sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].id, a.id());
        assert_eq!(sites[1].id, b.id());
        assert!(rt.site_stats(a.id()).is_some());
        assert!(rt.site_stats(u64::MAX).is_none());
    }

    #[test]
    fn site_manifest_reports_registered_sites() {
        let rt = runtime();
        let named = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "session-cache");
        let anon = rt.concurrent_set::<u64>(SetKind::Chained);
        let manifest = rt.site_manifest();
        assert_eq!(manifest.len(), 2);
        // Sorted by id, mirroring Switch::site_manifest.
        assert_eq!(manifest[0].id, named.id());
        assert_eq!(manifest[0].name, "session-cache");
        assert_eq!(manifest[0].abstraction, cs_collections::Abstraction::Map);
        assert_eq!(manifest[0].default_kind, "chained");
        assert_eq!(manifest[0].current_kind, "chained");
        assert_eq!(manifest[1].id, anon.id());
        // Anonymous sites carry the runtime's auto-minted name.
        assert_eq!(manifest[1].name, "cset-1");
        assert_eq!(manifest[1].abstraction, cs_collections::Abstraction::Set);
    }

    #[test]
    fn handles_are_cheap_shared_clones() {
        let rt = runtime();
        let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
        let clone = map.clone();
        map.insert(1, 10);
        assert_eq!(clone.get(&1), Some(10));
        assert_eq!(clone.id(), map.id());
        let rt2 = rt.clone();
        assert_eq!(rt2.sites().len(), 1);
        drop(rt);
        // The clone still works: registry and engine are shared Arcs.
        let set: ConcurrentSet<u64> = rt2.concurrent_set(SetKind::Chained);
        set.insert(5);
        assert_eq!(rt2.sites().len(), 2);
        let _ = Arc::new(set);
    }
}
