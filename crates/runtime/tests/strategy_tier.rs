//! Strategy-tier integration: a [`ConcurrentMap`] must *physically* follow
//! its strategy context — draining its shards into the lock-free table when
//! contention pushes the model past break-even, and draining back when the
//! workload turns read-mostly — without losing an entry or an op count.
//!
//! Contention here is real, not synthesized: a holder thread sleeps inside
//! `update` (under the shard lock) while a writer hammers the same single
//! shard, so the writer's `try_lock` genuinely fails and the flushed
//! profiles carry genuine `contended` counts into the strategy model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::{ConcKind, MapKind};
use cs_core::{GuardrailConfig, Models, Switch};
use cs_model::{CostDimension, PerformanceModel, Polynomial, VariantCostModel};
use cs_profile::{OpKind, WindowConfig};
use cs_runtime::{Runtime, RuntimeConfig};

fn fast_window() -> WindowConfig {
    WindowConfig {
        window_size: 20,
        finished_ratio: 0.6,
        monitoring_rate: Duration::from_millis(5),
        min_samples: 5,
        history_decay: 0.5,
    }
}

#[test]
fn map_follows_its_strategy_context_through_both_migrations() {
    let engine = Switch::builder()
        .window(fast_window())
        .guardrails(GuardrailConfig::disabled())
        .build();
    let rt = Runtime::with_config(
        engine,
        RuntimeConfig {
            shards: 1, // one shard: the holder's lock contends every writer op
            flush_ops: 64,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "tiered-cache");
    assert_eq!(map.current_strategy(), ConcKind::LockStriped);
    assert_eq!(map.strategy_migrations(), 0);

    // Seed data that must survive both migrations.
    for k in 2..514u64 {
        map.insert(k, k * 7);
    }

    // --- Phase 1: genuine write contention on the single shard. ---
    //
    // Two holder threads each sleep ~1 ms *inside* `update` — i.e. while
    // holding the only shard lock. A hold that long outlives parking_lot's
    // fairness timer, so every unlock hands the shard to the parked rival
    // and the next acquisition by the releasing thread fails its
    // `try_lock`: in steady state essentially *every* op either thread
    // completes is recorded as contended, and no thread can free-run
    // uncontended ops that would dilute the contention ratio. The main
    // thread waits for the flushed contended total to cross a threshold
    // (a fixed op count would be flaky under 1-CPU scheduling).
    let stop = Arc::new(AtomicBool::new(false));
    let holders: Vec<_> = (0..2u64)
        .map(|t| {
            let map = map.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    map.update(
                        t,
                        || 0,
                        |v| {
                            std::thread::sleep(Duration::from_millis(1));
                            *v += 1;
                        },
                    );
                    ops += 1;
                    if ops.is_multiple_of(8) {
                        map.flush();
                    }
                }
                map.flush();
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while map.stats().contended < 400 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    for h in holders {
        h.join().unwrap();
    }

    rt.flush_thread();
    rt.analyze_now();

    let stats = map.stats();
    assert!(
        stats.contended > 300,
        "the holder must have contended the writer's shard; stats: {stats}"
    );
    assert_eq!(
        map.current_strategy(),
        ConcKind::LockFree,
        "contention past break-even must select the lock-free strategy; stats: {stats}"
    );
    let explanation = rt
        .engine()
        .explain(map.strategy_id())
        .expect("strategy pass was scored");
    assert!(
        explanation.contention_driven,
        "the switch must be attributed to the contention term: {explanation:?}"
    );
    assert!(explanation.contention_ratio > 0.2);
    assert!(explanation.current_contention_cost > 0.0);

    // The next op performs the physical migration; data must survive it.
    assert_eq!(map.get(&2), Some(14));
    assert_eq!(map.strategy_migrations(), 1);
    assert_eq!(map.len(), 514);
    assert_eq!(map.stats().current_strategy.as_deref(), Some("lockfree"));

    // Lock-free ops work end to end while the strategy is live.
    assert_eq!(map.insert(1_000, 42), None);
    assert_eq!(map.read(&1_000, |v| *v), Some(42));
    assert_eq!(map.remove(&1_000), Some(42));
    let mut seen = 0usize;
    map.for_each(|_, _| seen += 1);
    assert_eq!(seen, 514);

    // --- Phase 2: read-mostly and uncontended; striped wins back. ---
    let mut rounds = 0;
    while map.current_strategy() == ConcKind::LockFree && rounds < 40 {
        for _ in 0..10 {
            for k in 2..514u64 {
                assert_eq!(map.get(&k), Some(k * 7));
            }
        }
        rt.flush_thread();
        rt.analyze_now();
        rounds += 1;
    }
    assert_eq!(
        map.current_strategy(),
        ConcKind::LockStriped,
        "read-mostly load must win the striped strategy back within {rounds} rounds"
    );

    // The next op migrates back; every entry must survive the drain.
    assert_eq!(map.get(&2), Some(14));
    assert_eq!(map.strategy_migrations(), 2);
    assert_eq!(map.len(), 514);
    assert_eq!(map.stats().current_strategy.as_deref(), Some("lockstriped"));
    for k in 2..514u64 {
        assert_eq!(map.read(&k, |v| *v), Some(k * 7), "entry {k} lost in drain-back");
    }

    // Both strategy transitions are on the engine's audit trail.
    let edges: Vec<String> = rt
        .engine()
        .transition_log()
        .iter()
        .map(|t| t.edge())
        .filter(|e| e.contains("lock"))
        .collect();
    assert_eq!(
        edges,
        vec!["lockstriped -> lockfree", "lockfree -> lockstriped"]
    );
}

/// A conc model that prices the lock-free strategy as an unconditional win,
/// so the analyzer flips the strategy *while worker threads are mid-flight*
/// — the migration protocol must not lose an op or an entry.
fn lockfree_wins_model() -> PerformanceModel<ConcKind> {
    let mut model = PerformanceModel::new();
    for &kind in &ConcKind::ALL {
        let cost = match kind {
            ConcKind::LockFree => 1.0,
            ConcKind::LockStriped => 100.0,
        };
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

#[test]
fn migration_under_concurrent_mutation_loses_nothing() {
    let engine = Switch::builder()
        .window(fast_window())
        .guardrails(GuardrailConfig::disabled())
        .models(Models {
            conc: lockfree_wins_model(),
            ..Default::default()
        })
        .build();
    let rt = Runtime::with_config(
        engine,
        RuntimeConfig {
            shards: 4,
            flush_ops: 128,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "migrate-under-fire");

    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    const THREADS: u64 = 4;
    const KEYS: u64 = 512;
    const ROUNDS: u64 = 40;
    let totals: Vec<u64> = (0..THREADS)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let base = t * KEYS;
                let mut ops = 0u64;
                for round in 0..ROUNDS {
                    for i in 0..KEYS {
                        let key = base + i;
                        if round == 0 {
                            map.insert(key, key * 3);
                        } else if i % 8 == 7 {
                            assert_eq!(map.remove(&key), Some(key * 3), "lost entry {key}");
                            map.insert(key, key * 3);
                            ops += 1;
                        } else {
                            assert_eq!(map.get(&key), Some(key * 3), "lost entry {key}");
                        }
                        ops += 1;
                    }
                }
                ops
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    stop.store(true, Ordering::Relaxed);
    analyzer.join().unwrap();
    rt.flush_thread();

    // The rigged model must have flipped the strategy mid-run, and the
    // physical migration must have happened under the workers' feet.
    assert_eq!(map.current_strategy(), ConcKind::LockFree);
    assert!(
        map.strategy_migrations() >= 1,
        "the strategy flip must have reached the map while workers ran"
    );

    // Exact accounting: every op recorded despite retried dispatches.
    let stats = map.stats();
    assert_eq!(stats.total_ops, totals.iter().sum::<u64>());

    // Zero lost entries across the live migration.
    assert_eq!(map.len(), (THREADS * KEYS) as usize);
    for key in 0..THREADS * KEYS {
        assert_eq!(map.get(&key), Some(key * 3), "entry {key} corrupted");
    }
}
