//! Acceptance harness for the telemetry stack: under the concurrent stress
//! workload, the metrics snapshot must agree **exactly** with the engine's
//! own event log and with the suite's per-op accounting.
//!
//! The workload is the guarded-adaptation stress shape from
//! `stress_concurrent.rs` — N writer threads on one [`ConcurrentMap`] while
//! an inverted model provokes a switch that verification rolls back and
//! quarantines — but here the engine carries the full telemetry pipeline:
//! a [`MetricsSink`] counts events as they are recorded, a [`VecSink`]
//! captures the stream, and [`Runtime::export_metrics`] mirrors the site
//! counters at the end. Every cross-check is an equality, not a bound:
//!
//! * `cs_events_total{event=…}` == per-kind counts in `Switch::event_log()`;
//! * `cs_site_{transitions,rollbacks,quarantines}_total` == `SiteStats`
//!   counters == event-log counts;
//! * `cs_runtime_site_ops_total{op=…}` == `SiteStats::ops` == the summed
//!   per-thread tallies (zero lost ops, now visible through metrics);
//! * the Prometheus rendering passes the CI validator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::MapKind;
use cs_core::{EngineEvent, GuardrailConfig, Kind, Models, SelectionRule, Switch};
use cs_model::{CostDimension, PerformanceModel, Polynomial, VariantCostModel};
use cs_profile::{OpKind, WindowConfig};
use cs_runtime::{ConcurrentMap, Runtime, RuntimeConfig};
use cs_telemetry::{
    validate_prometheus_text, MetricsRegistry, MetricsSink, TelemetrySnapshot, VecSink,
};

const THREADS: usize = 4;
const KEYS_PER_THREAD: u64 = 1_024;
const ROUNDS_PER_THREAD: u64 = 40;
const SITE: &str = "stress/telemetry";

fn inverted_map_model() -> PerformanceModel<MapKind> {
    let mut model = PerformanceModel::new();
    for &kind in MapKind::all() {
        let cost = match kind {
            MapKind::Array => 1.0,
            MapKind::Chained => 100.0,
            _ => 10_000.0,
        };
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

#[derive(Default)]
struct Tally {
    ops: [u64; 4],
}

impl Tally {
    fn bump(&mut self, op: OpKind) {
        self.ops[op.index()] += 1;
    }
}

/// Same worker shape as the stress harness: get-heavy steady state with a
/// remove+reinsert pair every 16th key, exact tally returned.
fn worker(map: ConcurrentMap<u64, u64>, base: u64) -> Tally {
    let mut tally = Tally::default();
    for round in 0..ROUNDS_PER_THREAD {
        for i in 0..KEYS_PER_THREAD {
            let key = base + i;
            if round == 0 {
                map.insert(key, key * 2);
                tally.bump(OpKind::Populate);
                continue;
            }
            if i % 16 == 15 {
                assert_eq!(map.remove(&key), Some(key * 2), "lost entry {key}");
                tally.bump(OpKind::Middle);
                map.insert(key, key * 2);
                tally.bump(OpKind::Populate);
            } else {
                assert_eq!(map.get(&key), Some(key * 2), "lost entry {key}");
                tally.bump(OpKind::Contains);
            }
        }
    }
    map.flush();
    tally
}

/// Counter value for the series of `name` carrying the given labels.
fn labelled(snapshot: &TelemetrySnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    let family = snapshot
        .family(name)
        .unwrap_or_else(|| panic!("family {name} missing from snapshot"));
    let series = family
        .series
        .iter()
        .find(|s| {
            s.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
        .unwrap_or_else(|| panic!("{name}{labels:?} missing from snapshot"));
    match series.value {
        cs_telemetry::ValueSnapshot::Counter(v) => v,
        ref other => panic!("{name}{labels:?} is not a counter: {other:?}"),
    }
}

fn kind_count(events: &[EngineEvent], kind: &str) -> u64 {
    events.iter().filter(|e| e.kind_name() == kind).count() as u64
}

#[test]
fn snapshot_counters_exactly_match_event_log_and_per_op_accounting() {
    let registry = MetricsRegistry::new();
    let vec_sink = Arc::new(VecSink::default());
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .models(Models {
            map: inverted_map_model(),
            ..Default::default()
        })
        .guardrails(GuardrailConfig::default().quarantine_base(1_000_000))
        .window(WindowConfig {
            window_size: 24,
            finished_ratio: 0.5,
            min_samples: 8,
            ..WindowConfig::default()
        })
        .event_sink(Arc::new(MetricsSink::new(registry.clone())))
        .event_sink(vec_sink.clone())
        .build();
    let rt = Runtime::with_config(
        engine,
        RuntimeConfig {
            shards: 4,
            flush_ops: 512,
            sample_shift: 0,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, SITE);

    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || worker(map, t as u64 * KEYS_PER_THREAD))
        })
        .collect();
    let mut tallies: Vec<Tally> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Keep generating (tallied) verification traffic until the provoked
    // switch has been rolled back, as in the stress harness.
    let mut main_tally = Tally::default();
    for _ in 0..40 {
        let s = map.stats();
        if s.switches > 0 && s.rollbacks > 0 {
            break;
        }
        for i in 0..(THREADS as u64 * KEYS_PER_THREAD) {
            map.get(&i);
            main_tally.bump(OpKind::Contains);
        }
        rt.flush_thread();
        rt.analyze_now();
    }
    stop.store(true, Ordering::Relaxed);
    analyzer.join().unwrap();
    rt.flush_thread();
    tallies.push(main_tally);

    let stats = map.stats();
    assert!(stats.switches >= 1, "inverted model must provoke a switch: {stats}");
    assert!(stats.rollbacks >= 1, "verification must roll it back: {stats}");

    // Freeze everything *after* the workload is quiescent.
    rt.export_metrics(&registry);
    let snapshot = registry.snapshot();
    let engine = rt.engine();
    let log = engine.event_log();
    assert_eq!(
        engine.events_dropped(),
        0,
        "the default log capacity must retain this run; exactness below relies on it"
    );

    // --- Event counters == event log, per kind, exactly. -----------------
    for kind in [
        "transition",
        "selection",
        "rollback",
        "quarantine",
        "model_fallback",
        "analyzer_panic",
        "degraded_entered",
    ] {
        assert_eq!(
            labelled(&snapshot, "cs_events_total", &[("event", kind)]),
            kind_count(&log, kind),
            "cs_events_total{{event={kind}}} diverged from the event log"
        );
    }
    assert_eq!(
        snapshot.counter_total("cs_events_total"),
        Some(engine.events_recorded()),
        "summed event counters == lifetime recorded total"
    );
    assert_eq!(vec_sink.len() as u64, engine.events_recorded());

    // --- Per-site adaptation counters == SiteStats == event log. ---------
    let site = &[("site", SITE)];
    assert_eq!(labelled(&snapshot, "cs_site_transitions_total", site), stats.switches);
    assert_eq!(stats.switches, kind_count(&log, "transition"));
    assert_eq!(labelled(&snapshot, "cs_site_rollbacks_total", site), stats.rollbacks);
    assert_eq!(stats.rollbacks, kind_count(&log, "rollback"));
    assert_eq!(
        labelled(&snapshot, "cs_site_quarantines_total", site),
        kind_count(&log, "quarantine")
    );

    // --- Per-op accounting: metrics == SiteStats == thread tallies. ------
    for op in OpKind::ALL {
        let expected: u64 = tallies.iter().map(|t| t.ops[op.index()]).sum();
        assert_eq!(
            stats.ops[op.index()],
            expected,
            "op kind {op:?}: site total must equal the summed tallies"
        );
        assert_eq!(
            labelled(
                &snapshot,
                "cs_runtime_site_ops_total",
                &[("site", SITE), ("op", &op.to_string())]
            ),
            expected,
            "cs_runtime_site_ops_total{{op={op}}} diverged from the tallies"
        );
    }
    assert_eq!(
        snapshot.counter_total("cs_runtime_site_ops_total"),
        Some(stats.total_ops)
    );

    // --- Contended accounting: the telemetry sidecar families must agree
    // exactly with the SiteStats row the bench emits (contended counts now
    // ride the flushed profiles, not a side-channel atomic). -------------
    assert_eq!(
        labelled(&snapshot, "cs_runtime_site_contended_total", site),
        stats.contended,
        "snapshot contended counter diverged from the site row"
    );
    let ratio_family = snapshot
        .family("cs_runtime_site_contention_ratio")
        .expect("contention ratio gauge exported");
    match ratio_family.series[0].value {
        cs_telemetry::ValueSnapshot::FloatGauge(v) => {
            let expected = stats.contended as f64 / stats.total_ops as f64;
            assert!(
                (v - expected).abs() < 1e-12,
                "contention ratio gauge {v} != contended/total {expected}"
            );
        }
        ref other => panic!("cs_runtime_site_contention_ratio is not a float gauge: {other:?}"),
    }

    // --- Selection audit: every switch decision was counted and margined. -
    let selections = kind_count(&log, "selection");
    assert!(selections >= 1, "audited passes must be recorded");
    assert_eq!(snapshot.counter_total("cs_selections_total"), Some(selections));
    let margins = snapshot
        .family("cs_selection_margin")
        .expect("margin histogram registered");
    match &margins.series[0].value {
        cs_telemetry::ValueSnapshot::Histogram(h) => {
            assert!(h.count >= 1, "switch decisions must observe a margin");
            assert!(h.sum > 0.0);
        }
        other => panic!("cs_selection_margin is not a histogram: {other:?}"),
    }
    let explanation = engine.explain(stats.id).expect("audit trail for the site");
    assert_eq!(explanation.context_name, SITE);
    assert!(!explanation.candidates.is_empty());

    // --- Engine-global mirror and health agree with the log. -------------
    assert_eq!(
        snapshot.counter_value("cs_engine_events_recorded_total"),
        Some(engine.events_recorded())
    );
    assert_eq!(
        snapshot.counter_value("cs_engine_transitions_used_total"),
        Some(engine.health().transitions_used)
    );
    assert_eq!(snapshot.counter_value("cs_engine_analyzer_panics_total"), Some(0));
    assert_eq!(snapshot.gauge_value("cs_engine_degraded"), Some(0));
    assert_eq!(snapshot.gauge_value("cs_runtime_sites"), Some(1));

    // --- The exposition is valid Prometheus text. -------------------------
    let text = snapshot.to_prometheus_text();
    if let Err(errors) = validate_prometheus_text(&text) {
        panic!("snapshot failed Prometheus validation: {errors:#?}");
    }
}
