//! Concurrent stress harness: guarded adaptation under multi-threaded load.
//!
//! N writer threads hammer one [`ConcurrentMap`] while an analyzer loop
//! forces the full guarded-adaptation cycle — an inverted performance model
//! provokes a switch to the array-backed map variant, which measures far
//! slower under the get-heavy load, so post-switch verification must roll
//! it back and quarantine the candidate — all while the shards are being
//! mutated from every worker.
//!
//! The harness asserts the two invariants the runtime promises:
//!
//! * **Zero lost ops** — the sum of per-thread op counts equals the site's
//!   exact flushed totals, per op kind, despite buffers flushing on count
//!   triggers, explicit flushes, and thread-exit destructors interleaved
//!   with switches and rollbacks.
//! * **Event-log consistency** — context switch/rollback counters match the
//!   engine's transition and event logs, the restored variant is live, data
//!   survives every migration, and the engine never degrades.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::MapKind;
use cs_core::{EngineEvent, GuardrailConfig, Kind, Models, SelectionRule, Switch};
use cs_model::{CostDimension, PerformanceModel, Polynomial, VariantCostModel};
use cs_profile::{OpKind, WindowConfig};
use cs_runtime::{ConcurrentMap, Runtime, RuntimeConfig};

/// A map model with a flat per-op time cost for every variant: the chained
/// default is claimed to cost 100 ns/op and the array variant 1 ns/op (a
/// predicted 100x win reality will contradict on a populated map); every
/// other variant is priced out so the engine can only try the bad one.
fn inverted_map_model() -> PerformanceModel<MapKind> {
    let mut model = PerformanceModel::new();
    for &kind in MapKind::all() {
        let cost = match kind {
            MapKind::Array => 1.0,
            MapKind::Chained => 100.0,
            _ => 10_000.0,
        };
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

const THREADS: usize = 4;
const KEYS_PER_THREAD: u64 = 1_024;
const ROUNDS_PER_THREAD: u64 = 60;

/// Per-thread op tallies, indexed like [`OpKind::index`]. Kept in plain
/// locals while the thread runs; only the final sums cross threads.
#[derive(Default)]
struct Tally {
    ops: [u64; 4],
}

impl Tally {
    fn bump(&mut self, op: OpKind) {
        self.ops[op.index()] += 1;
    }
}

/// One worker: owns the key range `[base, base + KEYS_PER_THREAD)` and runs
/// a get-heavy mix over it. Removes are immediately re-inserted so the
/// final map size is deterministic. Returns the thread's exact op tally.
fn worker(map: ConcurrentMap<u64, u64>, base: u64) -> Tally {
    let mut tally = Tally::default();
    for round in 0..ROUNDS_PER_THREAD {
        for i in 0..KEYS_PER_THREAD {
            let key = base + i;
            if round == 0 {
                map.insert(key, key * 2);
                tally.bump(OpKind::Populate);
                continue;
            }
            // Get-heavy steady state: 14 gets to 1 remove+reinsert pair,
            // making the array variant's linear scans dominate measured
            // time once the inverted model provokes the switch.
            if i % 16 == 15 {
                assert_eq!(map.remove(&key), Some(key * 2), "lost entry {key}");
                tally.bump(OpKind::Middle);
                map.insert(key, key * 2);
                tally.bump(OpKind::Populate);
            } else {
                assert_eq!(map.get(&key), Some(key * 2), "lost entry {key}");
                tally.bump(OpKind::Contains);
            }
        }
    }
    // Let the thread-exit destructor flush the residual buffer for half the
    // workers, and flush explicitly for the rest — both paths must account
    // every op.
    if base.is_multiple_of(2) {
        map.flush();
    }
    tally
}

#[test]
fn guarded_adaptation_survives_concurrent_mutation_with_zero_lost_ops() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .models(Models {
            map: inverted_map_model(),
            ..Default::default()
        })
        // Once verification refutes the array candidate, keep it out for
        // the rest of the test: the default backoff (4 rounds) is short
        // enough that the analyzer could legitimately re-try the quarantined
        // candidate before the final assertions run, which is correct
        // behaviour but not what this harness pins down.
        .guardrails(GuardrailConfig::default().quarantine_base(1_000_000))
        // Small windows so analysis rounds fire many times within the run.
        .window(WindowConfig {
            window_size: 24,
            finished_ratio: 0.5,
            min_samples: 8,
            ..WindowConfig::default()
        })
        .build();
    let rt = Runtime::with_config(
        engine,
        RuntimeConfig {
            shards: 4, // ~1k entries per shard: array scans are unmissably slow
            flush_ops: 512,
            sample_shift: 0, // time every op: verification sees real wall time
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "stress/guarded");

    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0u32;
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                rounds += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            rounds
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || worker(map, t as u64 * KEYS_PER_THREAD))
        })
        .collect();
    let tallies: Vec<Tally> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Drive rounds until the provoked switch has been verified (rolled
    // back), in case the workers finished between a switch and its
    // verification window. The main thread generates the verification
    // traffic; its ops are tallied like any worker's.
    let mut main_tally = Tally::default();
    for _ in 0..40 {
        let s = map.stats();
        if s.switches > 0 && s.rollbacks > 0 {
            break;
        }
        for i in 0..(THREADS as u64 * KEYS_PER_THREAD) {
            map.get(&i);
            main_tally.bump(OpKind::Contains);
        }
        rt.flush_thread();
        rt.analyze_now();
    }
    stop.store(true, Ordering::Relaxed);
    let analyzer_rounds = analyzer.join().unwrap();
    assert!(analyzer_rounds > 0);
    rt.flush_thread();

    let stats = map.stats();

    // --- Zero lost ops: exact per-kind accounting across every thread. ---
    for op in OpKind::ALL {
        let expected: u64 = tallies.iter().map(|t| t.ops[op.index()]).sum::<u64>()
            + main_tally.ops[op.index()];
        assert_eq!(
            stats.ops[op.index()],
            expected,
            "op kind {op:?}: site total must equal the sum of thread tallies"
        );
    }
    let expected_total: u64 =
        tallies.iter().map(|t| t.ops.iter().sum::<u64>()).sum::<u64>()
            + main_tally.ops.iter().sum::<u64>();
    assert_eq!(stats.total_ops, expected_total);
    assert!(stats.flushes > 0);

    // --- Guarded adaptation actually exercised, concurrently. ---
    assert!(
        stats.switches >= 1,
        "the inverted model must provoke at least one switch; stats: {stats}"
    );
    assert!(
        stats.rollbacks >= 1,
        "verification must roll the bad switch back; stats: {stats}"
    );
    assert_eq!(
        map.current_kind(),
        MapKind::Chained,
        "the restored variant must be live after rollback"
    );

    // --- Event-log consistency. ---
    let engine = rt.engine();
    assert!(!engine.is_degraded());
    assert_eq!(engine.transition_log().len() as u64, stats.switches);
    let rollback_events = engine
        .event_log()
        .iter()
        .filter(|e| matches!(e, EngineEvent::Rollback(_)))
        .count() as u64;
    assert_eq!(rollback_events, stats.rollbacks);
    let quarantines: Vec<_> = engine
        .event_log()
        .into_iter()
        .filter_map(|e| match e {
            EngineEvent::Quarantine(q) => Some(q),
            _ => None,
        })
        .collect();
    assert_eq!(quarantines.len() as u64, stats.rollbacks);
    assert!(quarantines.iter().all(|q| q.candidate == "array"));

    // --- Data integrity across switch + rollback migrations. ---
    assert_eq!(map.len(), THREADS * KEYS_PER_THREAD as usize);
    for key in 0..(THREADS as u64 * KEYS_PER_THREAD) {
        assert_eq!(map.read(&key, |v| *v), Some(key * 2), "entry {key} corrupted");
    }
}

/// Pure throughput-shaped smoke: no model games, just many threads on one
/// map with the analyzer running, asserting exact accounting at the end.
#[test]
fn eight_threads_exact_accounting_under_background_analysis() {
    let rt = Runtime::with_config(
        Switch::builder().rule(SelectionRule::r_time()).build(),
        RuntimeConfig {
            flush_ops: 256,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.concurrent_map::<u64, u64>(MapKind::Chained);
    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    const N: usize = 8;
    const OPS: u64 = 20_000;
    let totals: Vec<u64> = (0..N as u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                for i in 0..OPS {
                    let key = (t * OPS + i) % 4_096;
                    if i % 4 == 0 {
                        map.insert(key, i);
                    } else {
                        map.get(&key);
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    stop.store(true, Ordering::Relaxed);
    analyzer.join().unwrap();
    rt.flush_thread();

    let stats = map.stats();
    assert_eq!(stats.total_ops, totals.iter().sum::<u64>());
    assert_eq!(stats.total_ops, N as u64 * OPS);
    assert!(stats.max_size > 0);
}
