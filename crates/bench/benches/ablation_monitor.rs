//! Ablation (DESIGN.md §4.2): the cost of the monitoring layer — a
//! monitored switch handle vs an unmonitored one vs the raw variant.
//!
//! The paper's "very low overhead" claim rests on only a window-sized sample
//! of instances carrying a recorder; this bench quantifies both sides.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cs_collections::{AnyList, ListKind, ListOps};
use cs_core::Switch;
use cs_profile::WindowConfig;

fn workload<L>(mut push: impl FnMut(&mut L, i64), mut contains: impl FnMut(&mut L, i64) -> bool, l: &mut L) -> usize {
    for v in 0..128 {
        push(l, v);
    }
    let mut hits = 0;
    for v in 0..128 {
        hits += usize::from(contains(l, v));
    }
    hits
}

fn bench_monitoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitoring");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));

    group.bench_function("raw_any_list", |b| {
        b.iter(|| {
            let mut l: AnyList<i64> = AnyList::new(ListKind::Array);
            std::hint::black_box(workload(
                ListOps::push,
                |l, v| ListOps::contains(l, &v),
                &mut l,
            ))
        })
    });

    // Window of usize::MAX: every instance is monitored.
    let engine_all = Switch::builder()
        .window(WindowConfig {
            window_size: usize::MAX,
            ..WindowConfig::default()
        })
        .build();
    let ctx_all = engine_all.list_context::<i64>(ListKind::Array);
    group.bench_function("monitored_handle", |b| {
        b.iter(|| {
            let mut l = ctx_all.create_list();
            assert!(l.is_monitored());
            std::hint::black_box(workload(
                |l, v| l.push(v),
                |l, v| l.contains(&v),
                &mut l,
            ))
        })
    });

    // Window of 0: no instance is monitored — the steady-state fast path.
    let engine_none = Switch::builder()
        .window(WindowConfig {
            window_size: 0,
            ..WindowConfig::default()
        })
        .build();
    let ctx_none = engine_none.list_context::<i64>(ListKind::Array);
    group.bench_function("unmonitored_handle", |b| {
        b.iter(|| {
            let mut l = ctx_none.create_list();
            assert!(!l.is_monitored());
            std::hint::black_box(workload(
                |l, v| l.push(v),
                |l, v| l.contains(&v),
                &mut l,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
