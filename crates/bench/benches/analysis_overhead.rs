//! Criterion micro-benchmark behind paper Fig. 7: the cost of one analysis
//! pass over a context's collected metrics, by window size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_collections::ListKind;
use cs_core::{select_variant, SelectionRule};
use cs_model::default_models;
use cs_profile::{OpCounters, OpKind, ProfileHistogram, WorkloadProfile};

fn histogram_of(window: usize) -> ProfileHistogram {
    let mut h = ProfileHistogram::new();
    for i in 0..window {
        let mut c = OpCounters::new();
        c.add(OpKind::Populate, 50);
        c.add(OpKind::Contains, 120);
        c.add(OpKind::Iterate, 2);
        h.add(&WorkloadProfile::new(c, 10 + (i % 700)));
    }
    h
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_cost_by_window");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for window in [100usize, 1_000, 10_000, 100_000] {
        let hist = histogram_of(window);
        let model = default_models::list_model();
        let rule = SelectionRule::r_time();
        group.bench_with_input(BenchmarkId::from_parameter(window), &hist, |b, hist| {
            b.iter(|| {
                std::hint::black_box(select_variant(model, &rule, ListKind::Array, hist))
            })
        });
    }
    group.finish();
}

fn bench_profile_fold(c: &mut Criterion) {
    // The per-instance cost of folding one finished profile into the
    // histogram — the other half of the monitoring price.
    let mut c2 = OpCounters::new();
    c2.add(OpKind::Contains, 10);
    let profile = WorkloadProfile::new(c2, 333);
    c.bench_function("histogram_fold_one_profile", |b| {
        let mut h = ProfileHistogram::new();
        b.iter(|| h.add(std::hint::black_box(&profile)));
    });
}

criterion_group!(benches, bench_analysis, bench_profile_fold);
criterion_main!(benches);
