//! Criterion benchmarks of the critical operations across variants — the
//! measurement core behind the paper's Table 3 factorial plan, exposed for
//! direct inspection.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_collections::{AnyList, AnyMap, AnySet, ListKind, ListOps, MapKind, MapOps, SetKind, SetOps};

const SIZES: [usize; 3] = [10, 100, 1000];

fn bench_list_contains(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_contains");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for kind in ListKind::ALL {
        for size in SIZES {
            let mut list: AnyList<i64> = AnyList::new(kind);
            for v in 0..size as i64 {
                ListOps::push(&mut list, v);
            }
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), size),
                &list,
                |b, list| {
                    let mut key = 0i64;
                    b.iter(|| {
                        key = (key + 7) % size as i64;
                        std::hint::black_box(ListOps::contains(list, &key))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_set_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_populate");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for kind in SetKind::ALL {
        for size in SIZES {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        let mut set: AnySet<i64> = AnySet::new(kind);
                        for v in 0..size as i64 {
                            SetOps::insert(&mut set, v);
                        }
                        std::hint::black_box(SetOps::len(&set))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_map_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_get");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));
    for kind in MapKind::ALL {
        for size in SIZES {
            let mut map: AnyMap<i64, i64> = AnyMap::new(kind);
            for v in 0..size as i64 {
                MapOps::map_insert(&mut map, v, v);
            }
            group.bench_with_input(BenchmarkId::new(kind.to_string(), size), &map, |b, map| {
                let mut key = 0i64;
                b.iter(|| {
                    key = (key + 13) % size as i64;
                    std::hint::black_box(MapOps::map_get(map, &key))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_list_contains, bench_set_insert, bench_map_get);
criterion_main!(benches);
