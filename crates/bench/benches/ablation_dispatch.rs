//! Ablation (DESIGN.md §4.1): closed-world enum dispatch ([`AnyList`]) vs
//! boxed trait objects for the swappable-collection mechanism.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cs_collections::{AnyList, ArrayList, ListKind, ListOps};

/// The trait-object alternative the enum design replaced.
fn boxed_list() -> Box<dyn ListOps<i64>> {
    Box::new(ArrayList::new())
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(800));

    group.bench_function("enum_push_contains", |b| {
        b.iter(|| {
            let mut l: AnyList<i64> = AnyList::new(ListKind::Array);
            for v in 0..256 {
                ListOps::push(&mut l, v);
            }
            let mut hits = 0;
            for v in 0..256 {
                hits += usize::from(ListOps::contains(&l, &v));
            }
            std::hint::black_box(hits)
        })
    });

    group.bench_function("boxed_dyn_push_contains", |b| {
        b.iter(|| {
            let mut l = boxed_list();
            for v in 0..256 {
                l.push(v);
            }
            let mut hits = 0;
            for v in 0..256 {
                hits += usize::from(l.contains(&v));
            }
            std::hint::black_box(hits)
        })
    });

    group.bench_function("direct_push_contains", |b| {
        b.iter(|| {
            let mut l: ArrayList<i64> = ArrayList::new();
            for v in 0..256 {
                l.push(v);
            }
            let mut hits = 0;
            for v in 0..256 {
                hits += usize::from(l.contains(&v));
            }
            std::hint::black_box(hits)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
