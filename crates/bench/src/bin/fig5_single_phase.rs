//! Regenerates paper Fig. 5 (single-phase micro-benchmarks).
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig5_single_phase [instances_per_iter]
//! ```
//!
//! Scenario (paper §5.1): each iteration creates and populates
//! `instances_per_iter` collection instances of a given size, then runs 100
//! random lookups on each. For every collection size 100..1000:
//!
//! * Fig. 5a–c — execution time of CollectionSwitch (rule `R_time`) vs the
//!   JDK defaults (ArrayList / HashSet / HashMap);
//! * Fig. 5d–e — bytes allocated by CollectionSwitch (rule `R_alloc`) vs
//!   HashSet / HashMap.
//!
//! The `switched_to` column is the paper's transition marker: the variant
//! the allocation context converged to at that size.

use std::rc::Rc;
use std::time::Instant;

use cs_bench::scale_arg;
use cs_collections::{AnyList, AnyMap, AnySet, ListKind, MapKind, SetKind};
use cs_core::{SelectionRule, Switch};
use cs_workloads::drive::{DriveList, DriveMap, DriveSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reference-typed list element emulating the JVM's boxed `Integer` (see
/// `fig6_multi_phase`); sets and maps use native `i64` keys, where the
/// chained map's per-node allocations already reproduce the JDK cost shape.
type JInt = Rc<i64>;

const WARMUP_ITERS: usize = 4; // adaptation happens here (paper: 15)
const MEASURED_ITERS: usize = 6; // paper: 30
const LOOKUPS: usize = 100;

fn main() {
    let instances = scale_arg(400);
    println!("# Fig. 5: single-phase scenario, {instances} instances/iter, {LOOKUPS} lookups each");

    run_list_section(instances);
    run_set_section::<TimeMetric>(instances, "5b", "HashSet", SelectionRule::r_time());
    run_map_section::<TimeMetric>(instances, "5c", "HashMap", SelectionRule::r_time());
    run_set_section::<AllocMetric>(instances, "5d", "HashSet", SelectionRule::r_alloc());
    run_map_section::<AllocMetric>(instances, "5e", "HashMap", SelectionRule::r_alloc());
}

/// What a series measures: wall time (Fig. 5a–c) or allocated bytes (5d–e).
trait Metric {
    const UNIT: &'static str;
    fn begin() -> Self;
    fn note_allocated(&mut self, allocated_bytes: u64);
    fn finish(self) -> f64;
}

struct TimeMetric(Instant);

impl Metric for TimeMetric {
    const UNIT: &'static str = "ms";
    fn begin() -> Self {
        TimeMetric(Instant::now())
    }
    fn note_allocated(&mut self, _allocated_bytes: u64) {}
    fn finish(self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }
}

struct AllocMetric(u64);

impl Metric for AllocMetric {
    const UNIT: &'static str = "MB";
    fn begin() -> Self {
        AllocMetric(0)
    }
    fn note_allocated(&mut self, allocated_bytes: u64) {
        self.0 += allocated_bytes;
    }
    fn finish(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

/// One measured scenario iteration over `make`-produced lists.
fn list_iteration<M: Metric, L: DriveList<JInt>>(
    instances: usize,
    size: usize,
    rng: &mut StdRng,
    mut make: impl FnMut() -> L,
) -> f64 {
    let mut metric = M::begin();
    let mut hits = 0usize;
    for _ in 0..instances {
        let mut c = make();
        for v in 0..size as i64 {
            c.push(Rc::new(v));
        }
        for _ in 0..LOOKUPS {
            let key = Rc::new(rng.gen_range(0..(size as i64 * 2)));
            hits += usize::from(c.contains(&key));
        }
        metric.note_allocated(c.allocated_bytes());
    }
    std::hint::black_box(hits);
    metric.finish()
}

fn set_iteration<M: Metric, S: DriveSet<i64>>(
    instances: usize,
    size: usize,
    rng: &mut StdRng,
    mut make: impl FnMut() -> S,
) -> f64 {
    let mut metric = M::begin();
    let mut hits = 0usize;
    for _ in 0..instances {
        let mut c = make();
        for v in 0..size as i64 {
            c.insert(v);
        }
        for _ in 0..LOOKUPS {
            let key = rng.gen_range(0..(size as i64 * 2));
            hits += usize::from(c.contains(&key));
        }
        metric.note_allocated(c.allocated_bytes());
    }
    std::hint::black_box(hits);
    metric.finish()
}

fn map_iteration<M: Metric, P: DriveMap<i64, i64>>(
    instances: usize,
    size: usize,
    rng: &mut StdRng,
    mut make: impl FnMut() -> P,
) -> f64 {
    let mut metric = M::begin();
    let mut hits = 0usize;
    for _ in 0..instances {
        let mut c = make();
        for v in 0..size as i64 {
            c.insert(v, v);
        }
        for _ in 0..LOOKUPS {
            let key = rng.gen_range(0..(size as i64 * 2));
            hits += usize::from(c.get(&key));
        }
        metric.note_allocated(c.allocated_bytes());
    }
    std::hint::black_box(hits);
    metric.finish()
}

/// Median over the measured iterations, after adaptation warm-up.
fn steady_state(mut iteration: impl FnMut(bool) -> f64) -> f64 {
    for _ in 0..WARMUP_ITERS {
        iteration(true);
    }
    let mut samples: Vec<f64> = (0..MEASURED_ITERS).map(|_| iteration(false)).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn run_list_section(instances: usize) {
    println!();
    println!("# Fig. 5a: time vs JDK ArrayList (rule R_time)");
    println!("size\tarraylist_ms\tcollectionswitch_ms\tswitched_to");
    for size in (100..=1000).step_by(100) {
        let mut rng = StdRng::seed_from_u64(5);
        let baseline = steady_state(|_| {
            list_iteration::<TimeMetric, _>(instances, size, &mut rng, || {
                AnyList::<JInt>::new(ListKind::Array)
            })
        });
        let engine = Switch::builder().rule(SelectionRule::r_time()).build();
        let ctx = engine.list_context::<JInt>(ListKind::Array);
        let mut rng = StdRng::seed_from_u64(5);
        let cs = steady_state(|_| {
            let t = list_iteration::<TimeMetric, _>(instances, size, &mut rng, || {
                ctx.create_list()
            });
            engine.analyze_now();
            t
        });
        println!("{size}\t{baseline:.2}\t{cs:.2}\t{}", ctx.current_kind());
    }
}

fn run_set_section<M: Metric>(
    instances: usize,
    figure: &str,
    baseline_name: &str,
    rule: SelectionRule,
) {
    println!();
    println!(
        "# Fig. {figure}: {} vs JDK {baseline_name} (rule {})",
        M::UNIT,
        rule.name()
    );
    println!("size\t{baseline_name}_{u}\tcollectionswitch_{u}\tswitched_to", u = M::UNIT);
    for size in (100..=1000).step_by(100) {
        let mut rng = StdRng::seed_from_u64(5);
        let baseline = steady_state(|_| {
            set_iteration::<M, _>(instances, size, &mut rng, || {
                AnySet::<i64>::new(SetKind::Chained)
            })
        });
        let engine = Switch::builder().rule(rule.clone()).build();
        let ctx = engine.set_context::<i64>(SetKind::Chained);
        let mut rng = StdRng::seed_from_u64(5);
        let cs = steady_state(|_| {
            let t = set_iteration::<M, _>(instances, size, &mut rng, || ctx.create_set());
            engine.analyze_now();
            t
        });
        println!("{size}\t{baseline:.2}\t{cs:.2}\t{}", ctx.current_kind());
    }
}

fn run_map_section<M: Metric>(
    instances: usize,
    figure: &str,
    baseline_name: &str,
    rule: SelectionRule,
) {
    println!();
    println!(
        "# Fig. {figure}: {} vs JDK {baseline_name} (rule {})",
        M::UNIT,
        rule.name()
    );
    println!("size\t{baseline_name}_{u}\tcollectionswitch_{u}\tswitched_to", u = M::UNIT);
    for size in (100..=1000).step_by(100) {
        let mut rng = StdRng::seed_from_u64(5);
        let baseline = steady_state(|_| {
            map_iteration::<M, _>(instances, size, &mut rng, || {
                AnyMap::<i64, i64>::new(MapKind::Chained)
            })
        });
        let engine = Switch::builder().rule(rule.clone()).build();
        let ctx = engine.map_context::<i64, i64>(MapKind::Chained);
        let mut rng = StdRng::seed_from_u64(5);
        let cs = steady_state(|_| {
            let t = map_iteration::<M, _>(instances, size, &mut rng, || ctx.create_map());
            engine.analyze_now();
            t
        });
        println!("{size}\t{baseline:.2}\t{cs:.2}\t{}", ctx.current_kind());
    }
}
