//! Regenerates paper Table 5 (synthetic DaCapo-like applications under
//! Original / FullAdap(R_time) / FullAdap(R_alloc) / InstanceAdap) and the
//! §5.3 overhead configuration.
//!
//! ```text
//! cargo run --release -p cs-bench --bin table5_dacapo [scale] [--overhead]
//! ```
//!
//! `T` is the median wall time over repetitions; `M` is the peak of tracked
//! collection bytes. Percentages are improvements over the Original run
//! (positive = better), matching the paper's sign convention.

use std::time::Duration;

use cs_bench::{improvement_pct, mib, scale_arg};
use cs_core::SelectionRule;
use cs_workloads::{
    apps,
    runner::{run_app, Mode, RunResult},
    AppSpec,
};

const REPS: u64 = 5; // paper: 30 measured runs

fn median_time(app: &AppSpec, mode: &Mode) -> Duration {
    let mut times: Vec<Duration> = (0..REPS)
        .map(|i| run_app(app, mode.clone(), 42 + i).wall_time)
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn one_run(app: &AppSpec, mode: &Mode) -> RunResult {
    run_app(app, mode.clone(), 42)
}

fn main() {
    let scale = scale_arg(3);
    let overhead = std::env::args().any(|a| a == "--overhead");

    if overhead {
        run_overhead_experiment(scale);
        return;
    }

    println!("# Table 5: synthetic DaCapo-like applications, scale {scale}, median of {REPS} runs");
    println!(
        "bench     | original          | FullAdap R_time    | FullAdap R_alloc   | InstanceAdap"
    );
    println!(
        "          | T(ms)    M(MB)   | dT       dM        | dT       dM        | dT       dM"
    );
    for app in apps::all_apps(scale) {
        let orig_t = median_time(&app, &Mode::Original);
        let orig = one_run(&app, &Mode::Original);

        let cell = |mode: Mode| -> (f64, f64) {
            let t = median_time(&app, &mode);
            let r = one_run(&app, &mode);
            (
                improvement_pct(orig_t.as_secs_f64(), t.as_secs_f64()),
                improvement_pct(orig.peak_bytes as f64, r.peak_bytes as f64),
            )
        };

        let (t_rt, m_rt) = cell(Mode::FullAdap(SelectionRule::r_time()));
        let (t_ra, m_ra) = cell(Mode::FullAdap(SelectionRule::r_alloc()));
        let (t_ia, m_ia) = cell(Mode::InstanceAdap);

        println!(
            "{:9} | {:8.1} {:7.2} | {:+7.1}% {:+8.1}% | {:+7.1}% {:+8.1}% | {:+7.1}% {:+8.1}%",
            app.name,
            orig_t.as_secs_f64() * 1e3,
            mib(orig.peak_bytes),
            t_rt,
            m_rt,
            t_ra,
            m_ra,
            t_ia,
            m_ia,
        );
    }
    println!();
    println!("# positive = improvement over Original (paper sign convention)");
}

/// The paper's §5.3 configuration: FullAdap with an impossible rule — the
/// entire monitoring/analysis pipeline runs but no transition can fire, so
/// the difference to Original is pure framework overhead.
fn run_overhead_experiment(scale: usize) {
    println!("# §5.3 overhead: FullAdap with impossible rule vs Original, scale {scale}");
    println!("bench     | original T(ms) | disabled-rule T(ms) | overhead");
    for app in apps::all_apps(scale) {
        let orig = median_time(&app, &Mode::Original);
        let disabled = median_time(&app, &Mode::FullAdap(SelectionRule::impossible()));
        let over =
            (disabled.as_secs_f64() / orig.as_secs_f64() - 1.0) * 100.0;
        println!(
            "{:9} | {:13.1} | {:18.1} | {:+6.1}%",
            app.name,
            orig.as_secs_f64() * 1e3,
            disabled.as_secs_f64() * 1e3,
            over,
        );
    }
}
