//! Tracing self-overhead sweep: off vs. sampled vs. full.
//!
//! ```text
//! cargo run --release -p cs-bench --bin overhead_sweep -- [--quick] [--out PATH]
//! ```
//!
//! Runs the same closed-loop concurrent Zipf workload (the `runtime_sweep`
//! workload shape) three times, once per [`TraceMode`], and writes
//! `BENCH_overhead.json` (schema in EXPERIMENTS.md): per-mode throughput
//! plus the tracer's own self-overhead account — calibrated tracer nanos,
//! scaled framework (pipeline) nanos, wall-credited application nanos, and
//! the `tracer / (tracer + app)` ratio that backs the
//! `cs_trace_overhead_ratio` gauge (the pipeline share is reported
//! separately as `pipeline_ratio`).
//!
//! This is the measured version of the paper's "negligible overhead" claim
//! (§5.4), applied to the tracer itself, and it is a *gate*, not just a
//! report: the process exits nonzero if the sampled-mode overhead ratio is
//! at or above the budget (5% by default), which is how CI's
//! `overhead-check` job fails.
//!
//! Flags and environment:
//!
//! | Knob | Default | Meaning |
//! |---|---|---|
//! | `--quick` / `CS_BENCH_QUICK=1` | off | tiny CI budget (2 threads, 30k ops/thread) |
//! | `--out PATH` / `CS_BENCH_OUT` | `BENCH_overhead.json` | results file |
//! | `CS_BENCH_THREADS` | `4` (first value used) | worker thread count |
//! | `CS_BENCH_OPS` | `200000` | ops per thread |
//! | `CS_BENCH_KEYS` | `16384` | Zipf key-space size |
//! | `CS_OVERHEAD_BUDGET` | `0.05` | sampled-mode overhead-ratio gate |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::MapKind;
use cs_core::Switch;
use cs_runtime::{Runtime, RuntimeConfig};
use cs_telemetry::{
    export_trace, validate_prometheus_text, Json, MetricsRegistry, MetricsSink,
};
use cs_trace::TraceMode;
use cs_workloads::{run_concurrent_load, ConcurrentLoad, LoadReport};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Args {
    out: String,
    quick: bool,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (supported: --quick, --out PATH)");
            std::process::exit(2);
        }
    }
    Args {
        out: out
            .or_else(|| std::env::var("CS_BENCH_OUT").ok())
            .unwrap_or_else(|| "BENCH_overhead.json".into()),
        quick: quick || std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1"),
    }
}

fn mode_name(mode: TraceMode) -> &'static str {
    match mode {
        TraceMode::Off => "off",
        TraceMode::Sampled => "sampled",
        TraceMode::Full => "full",
    }
}

struct ModeRow {
    mode: TraceMode,
    report: LoadReport,
    overhead: cs_trace::OverheadReport,
    spans_recorded: u64,
    spans_overwritten: u64,
    threads_registered: usize,
}

fn run_mode(mode: TraceMode, threads: usize, ops_per_thread: u64, keys: u64) -> ModeRow {
    // Fresh accounting per mode: rings and aggregates start at zero, and
    // the mode is installed before any worker thread spins up.
    cs_trace::reset();
    cs_trace::set_mode(mode);

    let registry = MetricsRegistry::new();
    let rt = Runtime::with_config(
        Switch::builder()
            .event_sink(Arc::new(MetricsSink::new(registry.clone())))
            .build(),
        RuntimeConfig {
            shards: 64,
            flush_ops: 1024,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "overhead");

    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let report = run_concurrent_load(
        &map,
        ConcurrentLoad {
            threads,
            keys: keys as usize,
            zipf_exponent: 0.99,
            read_fraction: 0.9,
            ops_per_thread,
            phase_flip_every: None,
            latency_sample_mask: 127,
            seed: 42,
        },
    );
    stop.store(true, Ordering::Relaxed);
    analyzer.join().expect("analyzer thread panicked");

    let stats = map.stats();
    assert_eq!(
        stats.ops, report.per_op_totals,
        "site totals diverged from generator tallies in {} mode",
        mode_name(mode)
    );

    let snap = cs_trace::snapshot();
    // The tracer's telemetry mirror must render a valid exposition in
    // every mode, including the all-zero off mode.
    export_trace(&registry, &snap);
    if let Err(errors) = validate_prometheus_text(&registry.snapshot().to_prometheus_text()) {
        panic!("invalid Prometheus exposition in {} mode: {errors:?}", mode_name(mode));
    }
    cs_trace::set_mode(TraceMode::Off);

    ModeRow {
        mode,
        report,
        overhead: snap.overhead(),
        spans_recorded: snap.total_recorded(),
        spans_overwritten: snap.total_overwritten(),
        threads_registered: snap.threads.len(),
    }
}

fn json_row(row: &ModeRow, baseline_throughput: f64) -> Json {
    let o = &row.overhead;
    let slowdown = if row.report.throughput_ops_per_sec > 0.0 && baseline_throughput > 0.0 {
        baseline_throughput / row.report.throughput_ops_per_sec
    } else {
        0.0
    };
    let phases = cs_trace::Phase::ALL.iter().fold(Json::object(), |doc, p| {
        doc.field(p.name(), o.phase_counts[p.index()])
    });
    Json::object()
        .field("mode", mode_name(row.mode))
        .field("total_ops", row.report.total_ops)
        .field("elapsed_secs", row.report.elapsed.as_secs_f64())
        .field("throughput_ops_per_sec", row.report.throughput_ops_per_sec)
        .field("throughput_slowdown_vs_off", slowdown)
        .field(
            "overhead",
            Json::object()
                .field("framework_nanos", o.framework_nanos)
                .field("tracer_nanos", o.tracer_nanos)
                .field("app_nanos", o.app_nanos)
                .field("app_ops", o.app_ops)
                .field("ratio", o.ratio())
                .field("pipeline_ratio", o.pipeline_ratio())
                .field("framework_nanos_per_op", o.framework_nanos_per_op()),
        )
        .field("spans_recorded", row.spans_recorded)
        .field("spans_overwritten", row.spans_overwritten)
        .field("threads_registered", row.threads_registered)
        .field("phase_span_counts", phases)
}

fn main() {
    let args = parse_args();
    let budget = env_f64("CS_OVERHEAD_BUDGET", 0.05);
    let (threads, ops_per_thread, keys) = if args.quick {
        (
            env_u64("CS_BENCH_THREADS", 2) as usize,
            env_u64("CS_BENCH_OPS", 30_000),
            env_u64("CS_BENCH_KEYS", 1_024),
        )
    } else {
        (
            env_u64("CS_BENCH_THREADS", 4) as usize,
            env_u64("CS_BENCH_OPS", 200_000),
            env_u64("CS_BENCH_KEYS", 16_384),
        )
    };

    println!(
        "# tracing overhead sweep: Zipf(0.99) 90% reads, {threads} threads, {ops_per_thread} ops/thread, {keys} keys"
    );
    println!("mode\tMops/s\tratio\tfw_ns/op\tspans");

    let modes = [TraceMode::Off, TraceMode::Sampled, TraceMode::Full];
    let rows: Vec<ModeRow> = modes
        .iter()
        .map(|&mode| {
            let row = run_mode(mode, threads, ops_per_thread, keys);
            println!(
                "{}\t{:.3}\t{:.5}\t{:.1}\t{}",
                mode_name(row.mode),
                row.report.throughput_ops_per_sec / 1e6,
                row.overhead.ratio(),
                row.overhead.framework_nanos_per_op(),
                row.spans_recorded,
            );
            row
        })
        .collect();

    let baseline = rows
        .first()
        .map(|r| r.report.throughput_ops_per_sec)
        .unwrap_or(0.0);
    let sampled_ratio = rows
        .iter()
        .find(|r| r.mode == TraceMode::Sampled)
        .map(|r| r.overhead.ratio())
        .unwrap_or(0.0);
    let pass = sampled_ratio < budget;

    let doc = Json::object()
        .field("bench", "overhead_sweep")
        .field(
            "workload",
            Json::object()
                .field("threads", threads)
                .field("zipf_exponent", 0.99)
                .field("read_fraction", 0.9)
                .field("ops_per_thread", ops_per_thread)
                .field("keys", keys),
        )
        .field("hw_threads", cpus())
        .field("quick", args.quick)
        .field("op_sample_mask", cs_trace::op_sample_mask())
        .field(
            "gate",
            Json::object()
                .field("budget", budget)
                .field("sampled_overhead_ratio", sampled_ratio)
                .field("pass", pass),
        )
        .field(
            "rows",
            Json::Array(rows.iter().map(|r| json_row(r, baseline)).collect()),
        );
    std::fs::write(&args.out, doc.render_pretty()).expect("write results file");
    println!("# wrote {}", args.out);

    println!(
        "# sampled overhead ratio {sampled_ratio:.5} vs budget {budget} -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        eprintln!(
            "overhead gate failed: sampled tracing claims {:.2}% of accounted time (budget {:.2}%)",
            sampled_ratio * 100.0,
            budget * 100.0
        );
        std::process::exit(1);
    }
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
