//! Runs the paper's model-building benchmark (§4.1, Table 3) on this
//! machine and saves the calibrated performance models.
//!
//! ```text
//! cargo run --release -p cs-bench --bin model_builder [--paper] [out_dir]
//! ```
//!
//! By default runs the quick plan (seconds); `--paper` runs the full
//! factorial plan with the paper's steady-state protocol (15 warm-up + 30
//! measured iterations per cell; minutes). Models are written in the
//! `cs-model` text format to `out_dir` (default `target/models`).

use std::path::PathBuf;

use cs_model::builder::{build_list_model, build_map_model, build_set_model, BuilderConfig};
use cs_model::persist;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let out_dir: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/models"));

    let cfg = if paper {
        BuilderConfig::paper()
    } else {
        BuilderConfig::quick()
    };
    println!(
        "# Table 3 factorial calibration: {} sizes x 4 scenarios x all variants ({} warm-up + {} measured iters)",
        cfg.sizes.len(),
        cfg.warmup_iters,
        cfg.measured_iters
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let started = std::time::Instant::now();
    let lists = build_list_model(&cfg);
    println!("# lists calibrated ({:?})", started.elapsed());
    let sets = build_set_model(&cfg);
    println!("# sets calibrated ({:?})", started.elapsed());
    let maps = build_map_model(&cfg);
    println!("# maps calibrated ({:?})", started.elapsed());

    // Atomic writes: a calibration run killed mid-save must never leave a
    // torn model file for the next engine boot to choke on.
    {
        let path = out_dir.join("lists.model");
        persist::save_to_path(&lists, &path).expect("write model file");
        println!("# wrote {}", path.display());
        let path = out_dir.join("sets.model");
        persist::save_to_path(&sets, &path).expect("write model file");
        println!("# wrote {}", path.display());
        let path = out_dir.join("maps.model");
        persist::save_to_path(&maps, &path).expect("write model file");
        println!("# wrote {}", path.display());
    }

    // Spot-print the headline crossover the models encode: measured cost of
    // one `contains` per variant at small vs large sizes.
    use cs_model::CostDimension;
    use cs_profile::OpKind;
    println!();
    println!("# measured contains cost (ns) by list variant");
    println!("variant   \t@size10\t@size1000");
    for kind in cs_collections::ListKind::ALL {
        let v = lists.variant(kind).expect("calibrated");
        println!(
            "{:10}\t{:.1}\t{:.1}",
            kind.to_string(),
            v.op_cost(CostDimension::Time, OpKind::Contains, 10.0),
            v.op_cost(CostDimension::Time, OpKind::Contains, 1000.0)
        );
    }
}
