//! Thread-sweep benchmark of the concurrent selection runtime.
//!
//! ```text
//! cargo run --release -p cs-bench --bin runtime_sweep -- [--out PATH]
//! ```
//!
//! Sweeps a closed-loop Zipf read-heavy workload (`cs_workloads::concurrent`)
//! over 1 → N threads on one [`ConcurrentMap`](cs_runtime::ConcurrentMap)
//! site, with the engine's
//! analyzer running concurrently, and writes `BENCH_runtime.json` (schema in
//! EXPERIMENTS.md): per-thread-count throughput, p50/p99 op latency, and the
//! runtime's flush/contention/transition counters. Every run cross-checks
//! the zero-lost-ops invariant (generator tallies == site totals) before its
//! row is emitted.
//!
//! Each run is fully instrumented with `cs-telemetry`: a
//! [`MetricsSink`] subscribes to the engine, [`Runtime::export_metrics`]
//! mirrors the runtime counters on completion, and the per-run snapshots
//! are written alongside the results as `<out stem>.telemetry.json`,
//! headed by the workload parameters, the source revision
//! (`git describe`), and the process memory observables (peak RSS plus the
//! counting allocator's totals — this binary installs
//! [`cs_heap::CountingAlloc`]) so the artifact is interpretable on its
//! own and comparable on memory across PRs. The
//! Prometheus rendering of every snapshot is checked with
//! [`validate_prometheus_text`] — the benchmark doubles as an end-to-end
//! telemetry test.
//!
//! Output paths: `--out PATH` (or the `CS_BENCH_OUT` environment variable;
//! the flag wins) selects the results file, default `BENCH_runtime.json`.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `CS_BENCH_THREADS` | `1,2,4,8` | Comma-separated thread counts |
//! | `CS_BENCH_OPS` | `400000` | Ops per thread |
//! | `CS_BENCH_KEYS` | `16384` | Zipf key-space size |
//! | `CS_BENCH_QUICK` | unset | `1`: tiny CI budget (2k ops, 1,2 threads) |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::MapKind;
use cs_core::Switch;
use cs_runtime::{site_stats_to_json, Runtime, RuntimeConfig, SiteStats};
use cs_telemetry::{
    validate_prometheus_text, Json, MetricsRegistry, MetricsSink, TelemetrySnapshot,
};
use cs_workloads::{run_concurrent_load, ConcurrentLoad, LoadReport};

/// Opt-in heap observability: lets the telemetry sidecar stamp real
/// process allocation totals (zeros would be stamped without this).
#[global_allocator]
static ALLOC: cs_heap::CountingAlloc = cs_heap::CountingAlloc;

/// Process memory observables for the artifact headers: kernel-truth peak
/// RSS plus the counting allocator's totals, so BENCH files are comparable
/// on memory across PRs.
fn process_memory_json() -> Json {
    let account = cs_heap::process_account();
    Json::object()
        .field("peak_rss_bytes", cs_heap::peak_rss_bytes())
        .field("counting_active", cs_heap::counting_active())
        .field("alloc_count_total", account.alloc_count)
        .field("alloc_bytes_total", account.alloc_bytes)
        .field("dealloc_bytes_total", account.dealloc_bytes)
        .field("live_bytes", account.live_bytes())
}

fn env_usize(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_threads(default: &[usize]) -> Vec<usize> {
    match std::env::var("CS_BENCH_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// `--out PATH` wins over `CS_BENCH_OUT`; default `BENCH_runtime.json`.
fn out_path() -> String {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (only --out PATH is supported)");
            std::process::exit(2);
        }
    }
    out.or_else(|| std::env::var("CS_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_runtime.json".into())
}

struct Row {
    threads: usize,
    report: LoadReport,
    stats: SiteStats,
    telemetry: TelemetrySnapshot,
}

fn run_one(threads: usize, ops_per_thread: u64, keys: u64) -> Row {
    // A fresh runtime per thread count: each row measures the same site
    // lifecycle (empty map, cold shards) at a different concurrency.
    let registry = MetricsRegistry::new();
    let rt = Runtime::with_config(
        Switch::builder()
            .event_sink(Arc::new(MetricsSink::new(registry.clone())))
            .build(),
        RuntimeConfig {
            shards: 64,
            flush_ops: 1024,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "sweep");

    // The analyzer runs for the whole measurement, as it would in a
    // service: selection rounds and (possible) shard migrations are part of
    // the measured steady state, not excluded from it.
    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let report = run_concurrent_load(
        &map,
        ConcurrentLoad {
            threads,
            keys: keys as usize,
            zipf_exponent: 0.99,
            read_fraction: 0.9,
            ops_per_thread,
            phase_flip_every: None,
            latency_sample_mask: 127,
            seed: 42,
        },
    );
    stop.store(true, Ordering::Relaxed);
    analyzer.join().expect("analyzer thread panicked");

    let stats = map.stats();
    // Zero lost ops: a bench row is only worth reporting if the runtime's
    // accounting is exact under this thread count.
    assert_eq!(
        stats.ops, report.per_op_totals,
        "site totals diverged from generator tallies at {threads} threads"
    );

    rt.export_metrics(&registry);
    let telemetry = registry.snapshot();
    if let Err(errors) = validate_prometheus_text(&telemetry.to_prometheus_text()) {
        panic!("invalid Prometheus exposition at {threads} threads: {errors:?}");
    }
    Row {
        threads,
        report,
        stats,
        telemetry,
    }
}

fn json_row(row: &Row) -> Json {
    let r = &row.report;
    Json::object()
        .field("threads", row.threads)
        .field("total_ops", r.total_ops)
        .field("elapsed_secs", r.elapsed.as_secs_f64())
        .field("throughput_ops_per_sec", r.throughput_ops_per_sec)
        .field("p50_ns", r.p50_ns())
        .field("p99_ns", r.p99_ns())
        .field("max_ns", r.max_ns())
        .field("latency_samples", r.latencies_ns.len())
        .field("site", site_stats_to_json(&row.stats))
}

fn main() {
    let out = out_path();
    let quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (threads, ops_per_thread, keys) = if quick {
        (env_threads(&[1, 2]), env_usize("CS_BENCH_OPS", 2_000), 1_024)
    } else {
        (
            env_threads(&[1, 2, 4, 8]),
            env_usize("CS_BENCH_OPS", 400_000),
            env_usize("CS_BENCH_KEYS", 16_384),
        )
    };

    println!("# runtime thread sweep: Zipf(0.99) 90% reads, {ops_per_thread} ops/thread, {keys} keys");
    println!("threads\tMops/s\tp50_ns\tp99_ns\tflushes\tcontended\trounds\tswitches");

    let rows: Vec<Row> = threads
        .iter()
        .map(|&t| {
            let row = run_one(t, ops_per_thread, keys);
            println!(
                "{}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}",
                row.threads,
                row.report.throughput_ops_per_sec / 1e6,
                row.report.p50_ns(),
                row.report.p99_ns(),
                row.stats.flushes,
                row.stats.contended,
                row.stats.rounds,
                row.stats.switches,
            );
            row
        })
        .collect();

    let base = rows
        .first()
        .map(|r| r.report.throughput_ops_per_sec)
        .unwrap_or(0.0);
    let peak = rows
        .iter()
        .map(|r| r.report.throughput_ops_per_sec)
        .fold(0.0f64, f64::max);
    let scaling = if base > 0.0 { peak / base } else { 0.0 };
    println!();
    println!("# peak/1-thread throughput scaling: {scaling:.2}x over {} hw threads", cpus());

    let doc = Json::object()
        .field("bench", "runtime_sweep")
        .field(
            "workload",
            Json::object()
                .field("zipf_exponent", 0.99)
                .field("read_fraction", 0.9)
                .field("ops_per_thread", ops_per_thread)
                .field("keys", keys),
        )
        .field("hw_threads", cpus())
        .field("quick", quick)
        .field("scaling_peak_over_single", scaling)
        .field("rows", Json::Array(rows.iter().map(json_row).collect()));
    std::fs::write(&out, doc.render_pretty()).expect("write results file");
    println!("# wrote {out}");

    // The per-run telemetry snapshots ride alongside the results file:
    // `X.json` -> `X.telemetry.json`. The header stamps the workload
    // parameters and the source revision — a snapshot file found on its
    // own (a CI artifact, say) must be interpretable without the results
    // file it was generated next to.
    let telemetry_path = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.telemetry.json"),
        None => format!("{out}.telemetry.json"),
    };
    let telemetry_doc = Json::object()
        .field("bench", "runtime_sweep")
        .field("git", git_describe())
        .field("process", process_memory_json())
        .field(
            "workload",
            Json::object()
                .field(
                    "threads",
                    Json::Array(threads.iter().map(|&t| Json::from(t)).collect()),
                )
                .field("zipf_exponent", 0.99)
                .field("read_fraction", 0.9)
                .field("ops_per_thread", ops_per_thread)
                .field("keys", keys),
        )
        .field("hw_threads", cpus())
        .field("quick", quick)
        .field(
            "snapshots",
            Json::Array(
                rows.iter()
                    .map(|row| {
                        Json::object()
                            .field("threads", row.threads)
                            .field("telemetry", row.telemetry.to_json())
                    })
                    .collect(),
            ),
        );
    std::fs::write(&telemetry_path, telemetry_doc.render_pretty())
        .expect("write telemetry snapshot file");
    println!("# wrote {telemetry_path} (Prometheus rendering validated per run)");
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Source revision for the snapshot header; `"unknown"` outside a git
/// checkout (a source tarball, a bare CI cache) rather than a failure —
/// the stamp is provenance, not a gate.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
