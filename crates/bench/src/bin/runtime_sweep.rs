//! Thread-sweep benchmark of the concurrent selection runtime.
//!
//! ```text
//! cargo run --release -p cs-bench --bin runtime_sweep
//! ```
//!
//! Sweeps a closed-loop Zipf read-heavy workload (`cs_workloads::concurrent`)
//! over 1 → N threads on one [`ConcurrentMap`] site, with the engine's
//! analyzer running concurrently, and writes `BENCH_runtime.json` (schema in
//! EXPERIMENTS.md): per-thread-count throughput, p50/p99 op latency, and the
//! runtime's flush/contention/transition counters. Every run cross-checks
//! the zero-lost-ops invariant (generator tallies == site totals) before its
//! row is emitted.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `CS_BENCH_THREADS` | `1,2,4,8` | Comma-separated thread counts |
//! | `CS_BENCH_OPS` | `400000` | Ops per thread |
//! | `CS_BENCH_KEYS` | `16384` | Zipf key-space size |
//! | `CS_BENCH_QUICK` | unset | `1`: tiny CI budget (2k ops, 1,2 threads) |

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cs_collections::MapKind;
use cs_core::Switch;
use cs_runtime::{Runtime, RuntimeConfig, SiteStats};
use cs_workloads::{run_concurrent_load, ConcurrentLoad, LoadReport};

fn env_usize(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_threads(default: &[usize]) -> Vec<usize> {
    match std::env::var("CS_BENCH_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => default.to_vec(),
    }
}

struct Row {
    threads: usize,
    report: LoadReport,
    stats: SiteStats,
}

fn run_one(threads: usize, ops_per_thread: u64, keys: u64) -> Row {
    // A fresh runtime per thread count: each row measures the same site
    // lifecycle (empty map, cold shards) at a different concurrency.
    let rt = Runtime::with_config(
        Switch::builder().build(),
        RuntimeConfig {
            shards: 64,
            flush_ops: 1024,
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "sweep");

    // The analyzer runs for the whole measurement, as it would in a
    // service: selection rounds and (possible) shard migrations are part of
    // the measured steady state, not excluded from it.
    let stop = Arc::new(AtomicBool::new(false));
    let analyzer = {
        let rt = rt.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rt.analyze_now();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let report = run_concurrent_load(
        &map,
        ConcurrentLoad {
            threads,
            keys: keys as usize,
            zipf_exponent: 0.99,
            read_fraction: 0.9,
            ops_per_thread,
            phase_flip_every: None,
            latency_sample_mask: 127,
            seed: 42,
        },
    );
    stop.store(true, Ordering::Relaxed);
    analyzer.join().expect("analyzer thread panicked");

    let stats = map.stats();
    // Zero lost ops: a bench row is only worth reporting if the runtime's
    // accounting is exact under this thread count.
    assert_eq!(
        stats.ops, report.per_op_totals,
        "site totals diverged from generator tallies at {threads} threads"
    );
    Row {
        threads,
        report,
        stats,
    }
}

fn json_row(row: &Row) -> String {
    let r = &row.report;
    let s = &row.stats;
    let mut out = String::new();
    write!(
        out,
        "    {{\"threads\": {}, \"total_ops\": {}, \"elapsed_secs\": {:.6}, \
         \"throughput_ops_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"max_ns\": {}, \"latency_samples\": {}, \"flushes\": {}, \
         \"contended\": {}, \"rounds\": {}, \"switches\": {}, \
         \"rollbacks\": {}, \"final_kind\": \"{}\"}}",
        row.threads,
        r.total_ops,
        r.elapsed.as_secs_f64(),
        r.throughput_ops_per_sec,
        r.p50_ns(),
        r.p99_ns(),
        r.max_ns(),
        r.latencies_ns.len(),
        s.flushes,
        s.contended,
        s.rounds,
        s.switches,
        s.rollbacks,
        s.current_kind,
    )
    .unwrap();
    out
}

fn main() {
    let quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (threads, ops_per_thread, keys) = if quick {
        (env_threads(&[1, 2]), env_usize("CS_BENCH_OPS", 2_000), 1_024)
    } else {
        (
            env_threads(&[1, 2, 4, 8]),
            env_usize("CS_BENCH_OPS", 400_000),
            env_usize("CS_BENCH_KEYS", 16_384),
        )
    };

    println!("# runtime thread sweep: Zipf(0.99) 90% reads, {ops_per_thread} ops/thread, {keys} keys");
    println!("threads\tMops/s\tp50_ns\tp99_ns\tflushes\tcontended\trounds\tswitches");

    let rows: Vec<Row> = threads
        .iter()
        .map(|&t| {
            let row = run_one(t, ops_per_thread, keys);
            println!(
                "{}\t{:.3}\t{}\t{}\t{}\t{}\t{}\t{}",
                row.threads,
                row.report.throughput_ops_per_sec / 1e6,
                row.report.p50_ns(),
                row.report.p99_ns(),
                row.stats.flushes,
                row.stats.contended,
                row.stats.rounds,
                row.stats.switches,
            );
            row
        })
        .collect();

    let base = rows
        .first()
        .map(|r| r.report.throughput_ops_per_sec)
        .unwrap_or(0.0);
    let peak = rows
        .iter()
        .map(|r| r.report.throughput_ops_per_sec)
        .fold(0.0f64, f64::max);
    let scaling = if base > 0.0 { peak / base } else { 0.0 };
    println!();
    println!("# peak/1-thread throughput scaling: {scaling:.2}x over {} hw threads", cpus());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"runtime_sweep\",");
    let _ = writeln!(json, "  \"workload\": {{\"zipf_exponent\": 0.99, \"read_fraction\": 0.9, \"ops_per_thread\": {ops_per_thread}, \"keys\": {keys}}},");
    let _ = writeln!(json, "  \"hw_threads\": {},", cpus());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"scaling_peak_over_single\": {scaling:.4},");
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&json_row(row));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("CS_BENCH_OUT").unwrap_or_else(|_| "BENCH_runtime.json".into());
    std::fs::write(&path, &json).expect("write BENCH_runtime.json");
    println!("# wrote {path}");
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
