//! Regenerates paper Table 6 (most commonly performed transitions per
//! application and selection rule).
//!
//! ```text
//! cargo run --release -p cs-bench --bin table6_transitions [scale]
//! ```

use std::collections::HashMap;

use cs_bench::scale_arg;
use cs_core::SelectionRule;
use cs_workloads::{
    apps,
    runner::{run_app, Mode},
    AppSpec,
};

/// Transition edges of one run, ordered by frequency (most common first),
/// plus the run's guardrail activity (rollbacks, quarantines).
fn transition_counts(app: &AppSpec, rule: SelectionRule) -> (Vec<(String, usize)>, u64, u64) {
    let r = run_app(app, Mode::FullAdap(rule), 42);
    let mut counts: HashMap<String, usize> = HashMap::new();
    for t in &r.transitions {
        *counts.entry(format!("{} {}", t.abstraction, t.edge())).or_insert(0) += 1;
    }
    let mut edges: Vec<(String, usize)> = counts.into_iter().collect();
    edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    (edges, r.rollbacks, r.quarantines)
}

fn main() {
    let scale = scale_arg(2);
    println!("# Table 6: most commonly performed transitions (scale {scale})");
    println!("bench     | R_time                                | R_alloc");
    let mut rollbacks = 0u64;
    let mut quarantines = 0u64;
    for app in apps::all_apps(scale) {
        let (rt, rb_t, q_t) = transition_counts(&app, SelectionRule::r_time());
        let (ra, rb_a, q_a) = transition_counts(&app, SelectionRule::r_alloc());
        rollbacks += rb_t + rb_a;
        quarantines += q_t + q_a;
        let fmt = |v: &[(String, usize)]| {
            v.first()
                .map(|(e, n)| format!("{e} (x{n})"))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:9} | {:37} | {}", app.name, fmt(&rt), fmt(&ra));
    }
    println!();
    println!("# full transition lists:");
    for app in apps::all_apps(scale) {
        for (rule_name, rule) in [
            ("R_time", SelectionRule::r_time()),
            ("R_alloc", SelectionRule::r_alloc()),
        ] {
            let (edges, _, _) = transition_counts(&app, rule);
            for (edge, n) in edges {
                println!("#   {:9} {:7} {edge} x{n}", app.name, rule_name);
            }
        }
    }
    println!("# guardrails: {rollbacks} rollbacks, {quarantines} quarantines");
}
