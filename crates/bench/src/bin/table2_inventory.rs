//! Companion to paper Table 2: the implemented variant inventory, with
//! *measured* per-variant memory at representative sizes (from the real
//! structures' byte accounting, not models).
//!
//! ```text
//! cargo run --release -p cs-bench --bin table2_inventory
//! ```

use cs_collections::{
    AnyList, AnyMap, AnySet, HeapSize, ListKind, ListOps, MapKind, MapOps, SetKind, SetOps,
};

const SIZES: [usize; 3] = [10, 100, 1000];

fn main() {
    println!("# Table 2 companion: implemented variants and measured footprint (bytes)");
    println!();
    println!("## Lists (i64 elements)");
    println!("variant     \t@10\t@100\t@1000\talloc@1000");
    for kind in ListKind::ALL {
        let cells: Vec<String> = SIZES
            .iter()
            .map(|&n| {
                let mut l: AnyList<i64> = AnyList::new(kind);
                for v in 0..n as i64 {
                    ListOps::push(&mut l, v);
                }
                l.heap_bytes().to_string()
            })
            .collect();
        let mut l: AnyList<i64> = AnyList::new(kind);
        for v in 0..1000 {
            ListOps::push(&mut l, v);
        }
        println!(
            "{:12}\t{}\t{}\t{}\t{}",
            kind.to_string(),
            cells[0],
            cells[1],
            cells[2],
            l.allocated_bytes()
        );
    }

    println!();
    println!("## Sets (i64 elements)");
    println!("variant       \t@10\t@100\t@1000\talloc@1000");
    for kind in SetKind::ALL {
        let cells: Vec<String> = SIZES
            .iter()
            .map(|&n| {
                let mut s: AnySet<i64> = AnySet::new(kind);
                for v in 0..n as i64 {
                    SetOps::insert(&mut s, v);
                }
                s.heap_bytes().to_string()
            })
            .collect();
        let mut s: AnySet<i64> = AnySet::new(kind);
        for v in 0..1000 {
            SetOps::insert(&mut s, v);
        }
        println!(
            "{:14}\t{}\t{}\t{}\t{}",
            kind.to_string(),
            cells[0],
            cells[1],
            cells[2],
            s.allocated_bytes()
        );
    }

    println!();
    println!("## Maps (i64 -> i64)");
    println!("variant       \t@10\t@100\t@1000\talloc@1000");
    for kind in MapKind::ALL {
        let cells: Vec<String> = SIZES
            .iter()
            .map(|&n| {
                let mut m: AnyMap<i64, i64> = AnyMap::new(kind);
                for v in 0..n as i64 {
                    MapOps::map_insert(&mut m, v, v);
                }
                m.heap_bytes().to_string()
            })
            .collect();
        let mut m: AnyMap<i64, i64> = AnyMap::new(kind);
        for v in 0..1000 {
            MapOps::map_insert(&mut m, v, v);
        }
        println!(
            "{:14}\t{}\t{}\t{}\t{}",
            kind.to_string(),
            cells[0],
            cells[1],
            cells[2],
            m.allocated_bytes()
        );
    }

    println!();
    println!("# paper reference points: array variants smallest at small sizes;");
    println!("# fastutil < eclipse < koloboke among open hashes; chained/linked heaviest");
}
