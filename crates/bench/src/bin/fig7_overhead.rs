//! Regenerates paper Fig. 7 (overhead of analyzing the collection metrics by
//! window size, 100 … 100k).
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig7_overhead
//! ```
//!
//! Measures one full analysis pass — the total-cost evaluation of every
//! candidate variant over the aggregated metrics of `window` monitored
//! instances — exactly the quantity the paper reports as < 285 ns. The
//! histogram aggregation keeps the pass O(#size-buckets), so the curve is
//! expected to be flat-ish in the window size, as in the paper.

use std::time::Instant;

use cs_collections::ListKind;
use cs_core::{select_variant, SelectionRule, Switch};
use cs_model::default_models;
use cs_profile::{OpCounters, OpKind, ProfileHistogram, WindowConfig, WorkloadProfile};

fn main() {
    println!("# Fig. 7: analysis cost by window size");
    println!("window\tns_per_analysis");
    let model = default_models::list_model();
    let rule = SelectionRule::r_time();
    for window in [100usize, 300, 1_000, 3_000, 10_000, 30_000, 100_000] {
        let mut hist = ProfileHistogram::new();
        for i in 0..window {
            let mut c = OpCounters::new();
            c.add(OpKind::Populate, 50);
            c.add(OpKind::Contains, 120);
            c.add(OpKind::Iterate, 2);
            c.add(OpKind::Middle, 1);
            hist.add(&WorkloadProfile::new(c, 10 + (i % 700)));
        }
        // Steady-state protocol: warm up, then average many passes.
        for _ in 0..1_000 {
            std::hint::black_box(select_variant(model, &rule, ListKind::Array, &hist));
        }
        let reps = 100_000;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(select_variant(model, &rule, ListKind::Array, &hist));
        }
        let ns = start.elapsed().as_nanos() as f64 / reps as f64;
        println!("{window}\t{ns:.1}");
    }
    println!();
    println!("# paper reference: < 285 ns across the same range");

    println!();
    println!("# window-size ablation (DESIGN.md §4.3): decision stability");
    println!("# (paper §5: window 100 is \"a good compromise between fast");
    println!("#  analysis and stable transitions\"; tiny windows see");
    println!("#  unrepresentative samples of a mixed workload and flip-flop)");
    println!("window\ttransitions_over_4000_instances");
    for window in [2usize, 5, 20, 100, 500] {
        println!("{window}\t{}", transition_churn(window));
    }
}

/// Number of transitions a site performs on a mixed workload: instances
/// alternate between lookup-heavy (favors the hash-indexed list) and
/// append-only (favors the plain array), with the aggregate favoring the
/// hash index. A representative sample settles once; tiny windows chase the
/// per-round mix.
fn transition_churn(window_size: usize) -> usize {
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(WindowConfig {
            window_size,
            min_samples: 1,
            ..WindowConfig::default()
        })
        .build();
    let ctx = engine.list_context::<i64>(ListKind::Array);
    // Deterministic "random" phase mix.
    let mut x = 0x9E3779B97F4A7C15_u64;
    for i in 1..=4000usize {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let mut list = ctx.create_list();
        for v in 0..60 {
            list.push(v);
        }
        if x % 5 < 3 {
            // Lookup-heavy instance (60% of the stream).
            for v in 0..240 {
                list.contains(&v);
            }
        }
        drop(list);
        if i % 8 == 0 {
            engine.analyze_now();
        }
    }
    engine.transition_log().len()
}
