//! Allocation-observability sweep: attribution exactness, an alloc-driven
//! switch, and the energy proxy's honesty check.
//!
//! ```text
//! cargo run --release -p cs-bench --bin alloc_sweep -- [--quick] [--out PATH]
//! ```
//!
//! This binary installs [`cs_heap::CountingAlloc`] (the opt-in every
//! observability-enabled binary makes) and writes `BENCH_alloc.json`
//! (schema in EXPERIMENTS.md). It is a gate — exit is nonzero when any of
//! three claims fails on this machine:
//!
//! 1. **Attribution exactness** — 4 worker threads each run their entire
//!    allocating workload inside nested [`cs_heap::AllocGuard`] windows and
//!    compare the summed attribution against their own thread ledger delta.
//!    The documented exact case (every allocation guarded, every op
//!    sampled) must hold **bit-for-bit**: attributed counts and bytes equal
//!    the ledger's, per thread, no tolerance.
//! 2. **Alloc-driven switch** — a growth-churn list workload (populate
//!    runs, the paper's churn-heavy shape) drives a `ListKind::Linked`
//!    context under `R_alloc_rate`. The linked variant pays a 32-byte slab
//!    slot per element against the array's 8-byte cell, both on a doubling
//!    ladder — roughly 4× the byte churn per push. The engine must switch
//!    away from Linked with `SelectionExplanation.alloc_driven == true`,
//!    and after the history decays across post-switch rounds the
//!    *measured* `alloc_bytes_per_op` must drop at least 2× — the
//!    LinkedList→ArrayList per-node elimination, observed rather than
//!    modeled.
//! 3. **Energy honesty** — the calibrated proxy
//!    (`cs_model::calibrated_weights`) prices an allocation-heavy workload
//!    (one 64-byte boxed allocation per op, plus an append modeled at
//!    3 time units) in ns-equivalents; the prediction must stay within one
//!    order of magnitude of the measured wall time per op. The proxy
//!    claims *proportionality*, not wattage — this check keeps that claim
//!    honest.
//!
//! The artifact header stamps the process heap account and peak RSS, like
//! the runtime/contention sidecars, so BENCH files are comparable on
//! memory across PRs.
//!
//! Output paths: `--out PATH` (or `CS_BENCH_OUT`; the flag wins), default
//! `BENCH_alloc.json`. `--quick` (or `CS_BENCH_QUICK=1`) selects the tiny
//! CI budget; the gates are identical in both modes.

use std::time::Instant;

use cs_collections::ListKind;
use cs_core::{SelectionOutcome, SelectionRule, Switch};
use cs_heap::{AllocDelta, AllocGuard, HeapAccount};
use cs_model::default_models;
use cs_profile::WindowConfig;
use cs_telemetry::{explanation_to_json, Json};

#[global_allocator]
static ALLOC: cs_heap::CountingAlloc = cs_heap::CountingAlloc;

/// Post-switch measured `alloc_bytes_per_op` must drop at least this
/// factor below the pre-switch measurement.
const SWITCH_DROP_FLOOR: f64 = 2.0;
/// The energy proxy must stay within one order of magnitude of measured
/// wall time on the calibration-shaped workload.
const ENERGY_BAND: (f64, f64) = (0.1, 10.0);
/// Worker threads of the exactness stress.
const EXACTNESS_THREADS: usize = 4;
/// Modeled time units per op of the honesty workload's append component —
/// the amortized `ArrayList` append cost from `default_models`.
const HONESTY_MODEL_UNITS_PER_OP: f64 = 3.0;
/// Bytes each honesty-workload op allocates (one boxed payload).
const HONESTY_ALLOC_BYTES_PER_OP: usize = 64;

struct Args {
    out: String,
    quick: bool,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (supported: --quick, --out PATH)");
            std::process::exit(2);
        }
    }
    Args {
        out: out
            .or_else(|| std::env::var("CS_BENCH_OUT").ok())
            .unwrap_or_else(|| "BENCH_alloc.json".into()),
        quick,
    }
}

// ---------------------------------------------------------------------------
// Part 1: attribution exactness under 4 threads.
// ---------------------------------------------------------------------------

struct ExactnessRow {
    thread: usize,
    attributed: AllocDelta,
    ledger: HeapAccount,
    exact: bool,
}

/// One thread's guarded workload: every allocation happens inside an
/// outermost guard (some inside a nested guard, exercising the exclusion
/// ledger), so the partition identity must hold exactly — the summed net
/// attribution equals the thread ledger's alloc delta, counts and bytes.
fn exactness_worker(thread: usize, iterations: u64) -> ExactnessRow {
    cs_heap::pin_thread();
    let start = cs_heap::thread_account();
    let mut attributed = AllocDelta::default();
    for i in 0..iterations {
        let outer = AllocGuard::begin();
        let inner = AllocGuard::begin();
        let nested = vec![0u8; 64 + (i % 7) as usize * 32];
        let inner_delta = inner.finish();
        let mut own: Vec<u64> = Vec::with_capacity(8 + (i % 13) as usize);
        own.push(i);
        std::hint::black_box((&nested, &own));
        let outer_delta = outer.finish();
        attributed.count += inner_delta.count + outer_delta.count;
        attributed.bytes += inner_delta.bytes + outer_delta.bytes;
    }
    let ledger = cs_heap::thread_account().delta_since(&start);
    let exact =
        attributed.count == ledger.alloc_count && attributed.bytes == ledger.alloc_bytes;
    ExactnessRow {
        thread,
        attributed,
        ledger,
        exact,
    }
}

fn run_exactness(iterations: u64, failures: &mut Vec<String>) -> Vec<ExactnessRow> {
    let rows: Vec<ExactnessRow> = (0..EXACTNESS_THREADS)
        .map(|t| std::thread::spawn(move || exactness_worker(t, iterations)))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("exactness worker panicked"))
        .collect();
    for row in &rows {
        if !row.exact {
            failures.push(format!(
                "attribution exactness violated on thread {}: attributed \
                 {}/{}B vs ledger {}/{}B",
                row.thread,
                row.attributed.count,
                row.attributed.bytes,
                row.ledger.alloc_count,
                row.ledger.alloc_bytes,
            ));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Part 2: the alloc-driven switch.
// ---------------------------------------------------------------------------

/// Instances per analysis round; must satisfy the bench window's
/// round-readiness rule (min_samples 5, finished ratio 0.6).
const INSTANCES_PER_ROUND: usize = 6;
/// Post-switch churn+analyze rounds: each halves the Linked residue in the
/// decayed history (`history_decay` 0.5), so three rounds leave the
/// measured rate dominated by the new variant.
const POST_SWITCH_ROUNDS: usize = 3;

/// The growth-churn shape: populate runs, fresh instance per run. Every
/// push grows the collection, so the byte churn per op is the variant's
/// per-element footprint on its doubling ladder — ~32 B/element slab slots
/// on Linked vs ~8 B/element cells on Array, the contrast the alloc-rate
/// dimension exists to observe.
fn churn_round(ctx: &cs_core::ListContext<u64>, pushes: u64) {
    for _ in 0..INSTANCES_PER_ROUND {
        let mut list = ctx.create_list();
        for v in 0..pushes {
            list.push(v);
        }
    }
}

struct SwitchResult {
    pre: cs_core::SelectionExplanation,
    post: cs_core::SelectionExplanation,
    final_kind: String,
    drop_factor: f64,
}

fn run_switch_demo(quick: bool, failures: &mut Vec<String>) -> SwitchResult {
    let pushes = if quick { 512 } else { 4_096 };
    let engine = Switch::builder()
        .window(WindowConfig {
            window_size: 10,
            min_samples: 5,
            ..WindowConfig::default()
        })
        .build();
    let ctx = engine.list_context::<u64>(ListKind::Linked);
    let rule = SelectionRule::r_alloc_rate();
    let model = default_models::list_model();

    churn_round(&ctx, pushes);
    ctx.core().analyze(model, &rule);
    let pre = ctx
        .core()
        .explain()
        .expect("a ready churn round scores candidates");
    if pre.outcome != SelectionOutcome::Switched {
        failures.push(format!(
            "expected an alloc-rate switch away from Linked, got {:?}",
            pre.outcome
        ));
    }
    if !pre.alloc_driven {
        failures.push(format!(
            "the R_alloc_rate switch must report alloc_driven, got {pre:?}"
        ));
    }
    if ctx.current_kind() == ListKind::Linked {
        failures.push("context still on Linked after the switch round".into());
    }

    // Same workload on the new variant; the decayed history converges to
    // the post-switch measured rate over a few rounds.
    let mut post = pre.clone();
    for _ in 0..POST_SWITCH_ROUNDS {
        churn_round(&ctx, pushes);
        ctx.core().analyze(model, &rule);
        post = ctx.core().explain().expect("post-switch rounds keep scoring");
    }
    let drop_factor = if post.alloc_bytes_per_op > 0.0 {
        pre.alloc_bytes_per_op / post.alloc_bytes_per_op
    } else if pre.alloc_bytes_per_op > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    if pre.alloc_bytes_per_op <= 0.0 {
        failures.push("pre-switch workload attributed no allocation".into());
    }
    if drop_factor < SWITCH_DROP_FLOOR {
        failures.push(format!(
            "post-switch alloc_bytes_per_op dropped only {drop_factor:.2}x \
             ({:.2} -> {:.2} B/op), need >= {SWITCH_DROP_FLOOR}x",
            pre.alloc_bytes_per_op, post.alloc_bytes_per_op,
        ));
    }
    SwitchResult {
        pre,
        post,
        final_kind: ctx.current_kind().to_string(),
        drop_factor,
    }
}

// ---------------------------------------------------------------------------
// Part 3: energy-proxy honesty.
// ---------------------------------------------------------------------------

struct EnergyResult {
    measured_ns_per_op: f64,
    attributed_bytes_per_op: f64,
    predicted_energy_ns_per_op: f64,
    ratio: f64,
    in_band: bool,
}

fn run_energy_honesty(iterations: u64, failures: &mut Vec<String>) -> EnergyResult {
    let weights = cs_model::calibrated_weights();
    // An allocation-heavy op: one boxed 64-byte payload appended to a
    // pre-grown Vec, so the attributed churn is exactly the boxes and the
    // measured wall time includes the allocator work the proxy prices.
    // Measured independently of the calibration fit (fresh loop, fresh
    // timing), though on the same machine — which is the point: the proxy
    // claims to track *this machine's* time-plus-churn cost.
    let mut held: Vec<Box<[u8; HONESTY_ALLOC_BYTES_PER_OP]>> =
        Vec::with_capacity(iterations as usize);
    let guard = AllocGuard::begin();
    let started = Instant::now();
    for _ in 0..iterations {
        held.push(Box::new([0u8; HONESTY_ALLOC_BYTES_PER_OP]));
    }
    let elapsed = started.elapsed();
    std::hint::black_box(&held);
    let delta = guard.finish();
    drop(held);

    let measured_ns_per_op = elapsed.as_nanos() as f64 / iterations as f64;
    let attributed_bytes_per_op = delta.bytes as f64 / iterations as f64;
    let predicted_energy_ns_per_op =
        weights.energy(HONESTY_MODEL_UNITS_PER_OP, attributed_bytes_per_op);
    let ratio = predicted_energy_ns_per_op / measured_ns_per_op.max(1e-9);
    let in_band = (ENERGY_BAND.0..=ENERGY_BAND.1).contains(&ratio);
    if !in_band {
        failures.push(format!(
            "energy proxy dishonest: predicted {predicted_energy_ns_per_op:.2} \
             ns-equivalents/op vs measured {measured_ns_per_op:.2} ns/op \
             (ratio {ratio:.3}, band [{}, {}])",
            ENERGY_BAND.0, ENERGY_BAND.1,
        ));
    }
    EnergyResult {
        measured_ns_per_op,
        attributed_bytes_per_op,
        predicted_energy_ns_per_op,
        ratio,
        in_band,
    }
}

// ---------------------------------------------------------------------------

fn heap_account_json(a: &HeapAccount) -> Json {
    Json::object()
        .field("alloc_count", a.alloc_count)
        .field("alloc_bytes", a.alloc_bytes)
        .field("dealloc_count", a.dealloc_count)
        .field("dealloc_bytes", a.dealloc_bytes)
        .field("realloc_count", a.realloc_count)
        .field("realloc_bytes", a.realloc_bytes)
        .field("live_bytes", a.live_bytes())
}

fn main() {
    let args = parse_args();
    let (exact_iters, energy_iters) = if args.quick {
        (20_000u64, 64 * 1024u64)
    } else {
        (200_000u64, 256 * 1024u64)
    };
    let process_start = cs_heap::process_account();
    let mut failures: Vec<String> = Vec::new();

    println!(
        "# alloc sweep: {EXACTNESS_THREADS}-thread exactness x{exact_iters}, \
         R_alloc_rate switch demo, energy honesty (quick={})",
        args.quick
    );

    let exactness = run_exactness(exact_iters, &mut failures);
    for row in &exactness {
        println!(
            "exactness thread {}: attributed {} events / {} B, ledger {} / {} B -> {}",
            row.thread,
            row.attributed.count,
            row.attributed.bytes,
            row.ledger.alloc_count,
            row.ledger.alloc_bytes,
            if row.exact { "exact" } else { "MISMATCH" },
        );
    }

    let switched = run_switch_demo(args.quick, &mut failures);
    println!(
        "switch: {} -> {} under {}, alloc_driven={}, {:.2} -> {:.2} B/op ({:.1}x drop)",
        switched.pre.current,
        switched.final_kind,
        switched.pre.rule,
        switched.pre.alloc_driven,
        switched.pre.alloc_bytes_per_op,
        switched.post.alloc_bytes_per_op,
        switched.drop_factor,
    );

    let energy = run_energy_honesty(energy_iters, &mut failures);
    println!(
        "energy: predicted {:.2} ns-eq/op vs measured {:.2} ns/op (ratio {:.3}, in_band={})",
        energy.predicted_energy_ns_per_op,
        energy.measured_ns_per_op,
        energy.ratio,
        energy.in_band,
    );

    let weights = cs_model::calibrated_weights();
    let process_end = cs_heap::process_account();
    let doc = Json::object()
        .field("bench", "alloc_sweep")
        .field("git", git_describe())
        .field("hw_threads", cpus())
        .field("quick", args.quick)
        .field(
            "process",
            Json::object()
                .field("peak_rss_bytes", cs_heap::peak_rss_bytes())
                .field("counting_active", cs_heap::counting_active())
                .field("account", heap_account_json(&process_end))
                .field(
                    "account_delta",
                    heap_account_json(&process_end.delta_since(&process_start)),
                ),
        )
        .field(
            "weights",
            Json::object()
                .field("time_weight", weights.time_weight)
                .field("alloc_weight", weights.alloc_weight)
                .field("synthetic_time_weight", cs_model::SYNTHETIC_WEIGHTS.time_weight)
                .field("synthetic_alloc_weight", cs_model::SYNTHETIC_WEIGHTS.alloc_weight),
        )
        .field(
            "exactness",
            Json::object()
                .field("threads", EXACTNESS_THREADS)
                .field("iterations_per_thread", exact_iters)
                .field("exact", exactness.iter().all(|r| r.exact))
                .field(
                    "rows",
                    Json::Array(
                        exactness
                            .iter()
                            .map(|r| {
                                Json::object()
                                    .field("thread", r.thread)
                                    .field("attributed_count", r.attributed.count)
                                    .field("attributed_bytes", r.attributed.bytes)
                                    .field("ledger_alloc_count", r.ledger.alloc_count)
                                    .field("ledger_alloc_bytes", r.ledger.alloc_bytes)
                                    .field("exact", r.exact)
                            })
                            .collect(),
                    ),
                ),
        )
        .field(
            "switch",
            Json::object()
                .field("rule", switched.pre.rule.as_str())
                .field("final_kind", switched.final_kind.as_str())
                .field("alloc_driven", switched.pre.alloc_driven)
                .field("pre_alloc_bytes_per_op", switched.pre.alloc_bytes_per_op)
                .field("post_alloc_bytes_per_op", switched.post.alloc_bytes_per_op)
                .field("drop_factor", switched.drop_factor)
                .field("drop_floor", SWITCH_DROP_FLOOR)
                .field("pre", explanation_to_json(&switched.pre))
                .field("post", explanation_to_json(&switched.post)),
        )
        .field(
            "energy",
            Json::object()
                .field("model_units_per_op", HONESTY_MODEL_UNITS_PER_OP)
                .field("measured_ns_per_op", energy.measured_ns_per_op)
                .field("attributed_bytes_per_op", energy.attributed_bytes_per_op)
                .field("predicted_energy_ns_per_op", energy.predicted_energy_ns_per_op)
                .field("ratio", energy.ratio)
                .field("band_low", ENERGY_BAND.0)
                .field("band_high", ENERGY_BAND.1)
                .field("in_band", energy.in_band),
        )
        .field(
            "failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        );
    std::fs::write(&args.out, doc.render_pretty()).expect("write results file");
    println!("# wrote {}", args.out);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Source revision for the artifact header; `"unknown"` outside a git
/// checkout rather than a failure — the stamp is provenance, not a gate.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
