//! Regenerates paper Fig. 3 (transition-threshold analysis of the adaptive
//! collections) and Table 1 (the resulting thresholds).
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig3_threshold [--sweep]
//! ```
//!
//! Prints the benefit-vs-size series for AdaptiveSet (the paper's Fig. 3
//! subject) and the computed optimal thresholds for all three adaptive
//! collections. `--sweep` additionally reports how end-to-end lookup time
//! varies around the chosen threshold (the sensitivity ablation from
//! DESIGN.md §4.5).

use std::time::Instant;

use cs_collections::AdaptiveSet;
use cs_model::threshold::{
    list_benefit_curve, map_benefit_curve, optimal_threshold, set_benefit_curve,
};
use cs_model::default_models;

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");

    println!("# Fig. 3: transition threshold analysis of AdaptiveSet");
    println!("# benefit > 0 means transitioning to the hash table pays off");
    println!("size\tbenefit(ns)");
    let set_curve = set_benefit_curve(default_models::set_model(), 1..=80);
    for p in set_curve.iter().filter(|p| p.size % 5 == 0) {
        println!("{}\t{:.1}", p.size, p.benefit);
    }

    let set_t = optimal_threshold(&set_curve);
    let map_t = optimal_threshold(&map_benefit_curve(default_models::map_model(), 1..=120));
    let list_t = optimal_threshold(&list_benefit_curve(default_models::list_model(), 1..=200));

    println!();
    println!("# Table 1: adaptive collection transition thresholds");
    println!("collection   \ttransition      \tcomputed\tpaper");
    println!(
        "AdaptiveList \tarray -> hash    \t{}\t\t80",
        list_t.map_or("-".into(), |t| t.to_string())
    );
    println!(
        "AdaptiveSet  \tarray -> openhash\t{}\t\t40",
        set_t.map_or("-".into(), |t| t.to_string())
    );
    println!(
        "AdaptiveMap  \tarray -> openhash\t{}\t\t50",
        map_t.map_or("-".into(), |t| t.to_string())
    );

    if sweep {
        println!();
        println!("# Sensitivity sweep: measured lookup-scenario time by threshold");
        println!("threshold\ttime_ms");
        for threshold in [10, 20, 30, 40, 50, 60, 80, 120] {
            let t = measure_lookup_scenario(threshold);
            println!("{threshold}\t{:.2}", t * 1e3);
        }
    }
}

/// The paper's threshold-finding scenario: populate to a spread of sizes and
/// look up every element once.
fn measure_lookup_scenario(threshold: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..200 {
        for size in (8..=96).step_by(8) {
            let mut set = AdaptiveSet::with_threshold(threshold);
            for v in 0..size as i64 {
                set.insert(v);
            }
            let mut hits = 0;
            for v in 0..size as i64 {
                hits += usize::from(set.contains(&v));
            }
            assert_eq!(hits, size);
        }
    }
    start.elapsed().as_secs_f64()
}
