//! Head-to-head contention sweep of the two concurrency-strategy tiers.
//!
//! ```text
//! cargo run --release -p cs-bench --bin contention_sweep -- [--out PATH]
//! ```
//!
//! Runs the *substrates* the strategy tier switches between — a
//! lock-striped `Mutex<HashMap>` array (the `ConcurrentMap` shard layout)
//! and [`cs_lockfree::LockFreeMap`] — under identical closed-loop
//! workloads across thread counts and read/write mixes, and writes
//! `BENCH_contention.json` (schema in EXPERIMENTS.md). Each row records
//! both tiers' throughput plus the *observed* contention ratio
//! (contended ops / total ops, the same observable cs-runtime flushes into
//! the strategy tier's cost model), so the artifact can be read straight
//! against the modeled break-even ratio
//! [`cs_model::default_models::conc_break_even_ratio`]. The artifact header also
//! stamps the process memory observables (peak RSS plus the counting
//! allocator's totals — this binary installs [`cs_heap::CountingAlloc`]),
//! so BENCH files are comparable on memory across PRs.
//!
//! The bench is also a gate; it exits nonzero when:
//!
//! * **correctness** — any run's exact op accounting fails (inserts minus
//!   removes must equal the surviving population, values intact), on any
//!   machine; or
//! * **break-even** (multi-core runners only) — on a row whose observed
//!   striped contention ratio is at least twice the modeled break-even,
//!   the lock-free tier *loses* to lock-striped (throughput below
//!   `LOSS_TOLERANCE` of striped's). That is the CI teeth for the claim
//!   the runtime's switch is priced on; or
//! * **single-thread floor** (every machine, including the 1-hw-thread
//!   local box) — uncontended single-thread lock-free throughput falls
//!   below `SINGLE_THREAD_FLOOR` of striped's. The model prices the
//!   lock-free tier at a constant premium, not an order of magnitude; a
//!   collapse here means the premium constant is a fiction.
//!
//! Output paths: `--out PATH` (or `CS_BENCH_OUT`; the flag wins), default
//! `BENCH_contention.json`.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `CS_BENCH_THREADS` | `1,2,4,8` | Comma-separated thread counts |
//! | `CS_BENCH_OPS` | `200000` | Ops per thread per run |
//! | `CS_BENCH_QUICK` | unset | `1`: tiny CI budget (5k ops, 1,2 threads) |

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cs_lockfree::LockFreeMap;
use cs_model::default_models::conc_break_even_ratio;
use cs_telemetry::Json;
use parking_lot::Mutex;
use rand::{Rng, SeedableRng, StdRng};

/// Opt-in heap observability: lets the artifact header stamp real process
/// allocation totals (zeros would be stamped without this).
#[global_allocator]
static ALLOC: cs_heap::CountingAlloc = cs_heap::CountingAlloc;

/// Process memory observables for the artifact header: kernel-truth peak
/// RSS plus the counting allocator's totals, so BENCH files are comparable
/// on memory across PRs.
fn process_memory_json() -> Json {
    let account = cs_heap::process_account();
    Json::object()
        .field("peak_rss_bytes", cs_heap::peak_rss_bytes())
        .field("counting_active", cs_heap::counting_active())
        .field("alloc_count_total", account.alloc_count)
        .field("alloc_bytes_total", account.alloc_bytes)
        .field("dealloc_bytes_total", account.dealloc_bytes)
        .field("live_bytes", account.live_bytes())
}

/// A row fails the break-even gate when lock-free throughput is below this
/// fraction of striped's on a gated row (noise margin on "loses").
const LOSS_TOLERANCE: f64 = 0.95;
/// Uncontended single-thread lock-free throughput must stay above this
/// fraction of striped's.
const SINGLE_THREAD_FLOOR: f64 = 0.25;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_threads(default: &[usize]) -> Vec<usize> {
    match std::env::var("CS_BENCH_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// `--out PATH` wins over `CS_BENCH_OUT`; default `BENCH_contention.json`.
fn out_path() -> String {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (only --out PATH is supported)");
            std::process::exit(2);
        }
    }
    out.or_else(|| std::env::var("CS_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_contention.json".into())
}

/// One tier's measurement under one workload cell.
struct TierResult {
    elapsed: Duration,
    total_ops: u64,
    contended: u64,
    throughput: f64,
}

impl TierResult {
    fn contention_ratio(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.contended as f64 / self.total_ops as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::object()
            .field("elapsed_secs", self.elapsed.as_secs_f64())
            .field("total_ops", self.total_ops)
            .field("contended", self.contended)
            .field("contention_ratio", self.contention_ratio())
            .field("throughput_ops_per_sec", self.throughput)
    }
}

/// Per-thread exact accounting, summed after the joins and checked against
/// the surviving map population — the zero-lost-ops discipline of the
/// runtime suites, applied to the raw substrates.
#[derive(Default)]
struct Tally {
    inserted: u64,
    removed: u64,
    contended: u64,
    ops: u64,
}

/// One workload cell: uniform keys over `keys`, `write_fraction` of ops
/// are writes (alternating insert/remove per key parity so the population
/// stays bounded), the rest are reads of a key known to be present or
/// absent — either answer is legal mid-race, the accounting happens at the
/// end.
#[derive(Clone, Copy)]
struct Cell {
    threads: usize,
    write_fraction: f64,
    shards: usize,
    keys: u64,
    ops_per_thread: u64,
}

/// The striped substrate as `ConcurrentMap` lays it out: power-of-two
/// `parking_lot::Mutex` shards addressed by the high hash bits, with
/// `try_lock`-then-`lock` contention observation — exactly what
/// cs-runtime's op path counts into the `contended` profile dimension.
struct StripedMap {
    shards: Box<[Mutex<HashMap<u64, u64>>]>,
    mask: u64,
    hasher: RandomState,
}

impl StripedMap {
    fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two();
        StripedMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            hasher: RandomState::new(),
        }
    }

    /// Runs `f` on the owning shard; `true` in the pair means the lock was
    /// contended.
    fn with_shard<R>(&self, key: u64, f: impl FnOnce(&mut HashMap<u64, u64>) -> R) -> (R, bool) {
        let shard = &self.shards[((self.hasher.hash_one(key) >> 48) & self.mask) as usize];
        let (mut guard, contended) = match shard.try_lock() {
            Some(g) => (g, false),
            None => (shard.lock(), true),
        };
        (f(&mut guard), contended)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

fn run_striped(cell: Cell, seed: u64) -> TierResult {
    let map = Arc::new(StripedMap::new(cell.shards));
    let started = Instant::now();
    let tallies: Vec<Tally> = (0..cell.threads as u64)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t));
                let mut tally = Tally::default();
                for _ in 0..cell.ops_per_thread {
                    let key = rng.gen_range(0..cell.keys);
                    let contended = if rng.gen_bool(cell.write_fraction) {
                        // Transition accounting: `inserted` counts
                        // absent->present, `removed` counts
                        // present->absent — each linearized transition is
                        // tallied by exactly one thread even when writers
                        // race on a key.
                        let (prev, c) = map.with_shard(key, |m| m.insert(key, !key));
                        if prev.is_none() {
                            tally.inserted += 1;
                        } else {
                            let (gone, c2) = map.with_shard(key, |m| m.remove(&key));
                            if let Some(v) = gone {
                                assert_eq!(v, !key, "torn value under {key}");
                                tally.removed += 1;
                            }
                            tally.ops += 1;
                            tally.contended += u64::from(c2);
                        }
                        c
                    } else {
                        let (got, c) = map.with_shard(key, |m| m.get(&key).copied());
                        if let Some(v) = got {
                            assert_eq!(v, !key, "torn value under {key}");
                        }
                        c
                    };
                    tally.ops += 1;
                    tally.contended += u64::from(contended);
                }
                tally
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("striped worker panicked"))
        .collect();
    let elapsed = started.elapsed();
    finish("striped", cell, &tallies, map.len(), elapsed)
}

fn run_lockfree(cell: Cell, seed: u64) -> TierResult {
    let map = Arc::new(LockFreeMap::<u64, u64>::new());
    let started = Instant::now();
    let tallies: Vec<Tally> = (0..cell.threads as u64)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t));
                let mut tally = Tally::default();
                for _ in 0..cell.ops_per_thread {
                    let key = rng.gen_range(0..cell.keys);
                    let contended = if rng.gen_bool(cell.write_fraction) {
                        // Same transition accounting as the striped run.
                        let ins = map.insert_tracked(key, !key);
                        let mut c = ins.contended;
                        if ins.value.is_none() {
                            tally.inserted += 1;
                        } else {
                            let rem = map.remove_tracked(&key);
                            if let Some(v) = rem.value {
                                assert_eq!(v, !key, "torn value under {key}");
                                tally.removed += 1;
                            }
                            tally.ops += 1;
                            c |= rem.contended;
                        }
                        c
                    } else {
                        if let Some(v) = map.get(&key) {
                            assert_eq!(v, !key, "torn value under {key}");
                        }
                        false
                    };
                    tally.ops += 1;
                    tally.contended += u64::from(contended);
                }
                tally
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("lock-free worker panicked"))
        .collect();
    let elapsed = started.elapsed();
    let result = finish("lockfree", cell, &tallies, map.len(), elapsed);
    map.collect_garbage();
    result
}

/// Correctness gate shared by both tiers: every op tallied, inserts minus
/// removes equals the surviving population. A violation is a lost or
/// duplicated op and aborts the bench (exit nonzero) immediately.
fn finish(tier: &str, cell: Cell, tallies: &[Tally], live: usize, elapsed: Duration) -> TierResult {
    let total_ops: u64 = tallies.iter().map(|t| t.ops).sum();
    let contended: u64 = tallies.iter().map(|t| t.contended).sum();
    let inserted: u64 = tallies.iter().map(|t| t.inserted).sum();
    let removed: u64 = tallies.iter().map(|t| t.removed).sum();
    assert_eq!(
        inserted - removed,
        live as u64,
        "{tier} tier lost ops at {} threads: {inserted} inserts - {removed} removes != {live} live",
        cell.threads
    );
    TierResult {
        elapsed,
        total_ops,
        contended,
        throughput: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

struct Row {
    cell: Cell,
    label: &'static str,
    striped: TierResult,
    lockfree: TierResult,
    gated: bool,
}

fn main() {
    let out = out_path();
    let quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (threads, ops_per_thread) = if quick {
        (env_threads(&[1, 2]), env_u64("CS_BENCH_OPS", 5_000))
    } else {
        (env_threads(&[1, 2, 4, 8]), env_u64("CS_BENCH_OPS", 200_000))
    };
    let break_even = conc_break_even_ratio();
    let multi_core = cpus() > 1;

    println!(
        "# contention sweep: striped vs lock-free, {ops_per_thread} ops/thread, \
         modeled break-even ratio {break_even:.3}, {} hw threads",
        cpus()
    );
    println!("threads\tmix\tstriped Mops/s\tlockfree Mops/s\tstriped contention\tgated");

    // Two workload mixes per thread count: a read-mostly cell (the shape
    // that keeps a site on lock-striped) and a write-hot cell over few
    // shards and hot keys (the shape whose contention pays for lock-free).
    let mixes: &[(&'static str, f64, usize, u64)] = &[
        ("read_mostly", 0.10, 16, 4_096),
        ("write_hot", 0.90, 4, 512),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &t in &threads {
        for &(label, write_fraction, shards, keys) in mixes {
            let cell = Cell {
                threads: t,
                write_fraction,
                shards,
                keys,
                ops_per_thread,
            };
            let striped = run_striped(cell, 42);
            let lockfree = run_lockfree(cell, 42);
            let observed = striped.contention_ratio();
            // The break-even gate arms only well past the modeled point
            // (2x) and only where parallelism is real: at the break-even
            // itself the model prices the tiers equal, and a 1-hw-thread
            // box cannot produce the sustained contention the gate is
            // about.
            let gated = multi_core && t >= 2 && observed >= 2.0 * break_even;
            if gated && lockfree.throughput < LOSS_TOLERANCE * striped.throughput {
                failures.push(format!(
                    "{t} threads / {label}: lock-free loses past break-even \
                     ({:.3} vs {:.3} Mops/s at observed contention {observed:.3})",
                    lockfree.throughput / 1e6,
                    striped.throughput / 1e6,
                ));
            }
            if t == 1 && lockfree.throughput < SINGLE_THREAD_FLOOR * striped.throughput {
                failures.push(format!(
                    "1 thread / {label}: lock-free below the single-thread floor \
                     ({:.3} vs {:.3} Mops/s)",
                    lockfree.throughput / 1e6,
                    striped.throughput / 1e6,
                ));
            }
            println!(
                "{t}\t{label}\t{:.3}\t{:.3}\t{observed:.4}\t{gated}",
                striped.throughput / 1e6,
                lockfree.throughput / 1e6,
            );
            rows.push(Row {
                cell,
                label,
                striped,
                lockfree,
                gated,
            });
        }
    }

    let doc = Json::object()
        .field("bench", "contention_sweep")
        .field("git", git_describe())
        .field("process", process_memory_json())
        .field("hw_threads", cpus())
        .field("quick", quick)
        .field(
            "model",
            Json::object().field("break_even_ratio", break_even),
        )
        .field(
            "gates",
            Json::object()
                .field("multi_core_enforced", multi_core)
                .field("loss_tolerance", LOSS_TOLERANCE)
                .field("single_thread_floor", SINGLE_THREAD_FLOOR),
        )
        .field(
            "rows",
            Json::Array(
                rows.iter()
                    .map(|row| {
                        Json::object()
                            .field("threads", row.cell.threads)
                            .field("mix", row.label)
                            .field("write_fraction", row.cell.write_fraction)
                            .field("shards", row.cell.shards)
                            .field("keys", row.cell.keys)
                            .field("ops_per_thread", row.cell.ops_per_thread)
                            .field("striped", row.striped.to_json())
                            .field("lockfree", row.lockfree.to_json())
                            .field(
                                "lockfree_over_striped",
                                row.lockfree.throughput / row.striped.throughput.max(1e-9),
                            )
                            .field("gated", row.gated)
                    })
                    .collect(),
            ),
        )
        .field(
            "failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        );
    std::fs::write(&out, doc.render_pretty()).expect("write results file");
    println!("# wrote {out}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Source revision for the artifact header; `"unknown"` outside a git
/// checkout rather than a failure — the stamp is provenance, not a gate.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
