//! Cold-vs-warm fleet convergence benchmark for crash-safe warm start.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fleet_sweep -- [--quick] [--out PATH]
//! ```
//!
//! Simulates the deployment story behind `cs-state`: a fleet of allocation
//! sites whose profitable variants differ from their declared defaults, run
//! twice on the same workload —
//!
//! 1. **Cold** — a fresh engine that has to discover every switch through
//!    monitoring windows and selection rounds, then saves its selection
//!    state with [`cs_core::Switch::save_state`].
//! 2. **Warm** — a second engine built with
//!    [`warm_start_from`](cs_core::SwitchBuilder::warm_start_from) on that
//!    snapshot, which should resume at the learned variants and reach
//!    steady state with no further switching.
//!
//! *Steady state* is operational, not declarative: the fleet is steady once
//! the site manifest's current variants survive `STEADY_PASSES` consecutive
//! analyze passes unchanged. Ops-to-steady is the cumulative collection op
//! count at the pass where that streak completes; the floor is therefore
//! `STEADY_PASSES` rounds of ops for any run, and the cold run pays extra
//! rounds for every monitoring window and switch it needs. The benchmark
//! asserts the warm run never converges later than the cold run and that
//! every snapshot site was applied (hit ratio 1.0).
//!
//! Writes `BENCH_fleet.json` (schema in EXPERIMENTS.md): the fleet
//! manifest, snapshot write stats, per-round convergence traces for both
//! runs, the warm-start report, and the cold/warm ops-to-steady comparison.
//!
//! `--quick` (or `CS_BENCH_QUICK=1`) shrinks instances and the round cap to
//! a CI budget; `--out PATH` (or `CS_BENCH_OUT`) selects the results file.

use std::collections::BTreeMap;
use std::path::PathBuf;

use cs_collections::{ListKind, MapKind, SetKind};
use cs_core::{Switch, WarmStartReport};
use cs_telemetry::Json;

/// Consecutive unchanged analyze passes that define steady state.
const STEADY_PASSES: u32 = 3;

/// One synthetic allocation site of the fleet, with the workload that makes
/// its declared default the wrong choice (or, for the control site, the
/// right one).
struct FleetSite {
    name: &'static str,
    abstraction: &'static str,
    default_kind: &'static str,
    /// Elements per instance.
    size: usize,
    /// Membership probes per element; probes span 125% of the populated
    /// range, so ~20% miss.
    lookups_per_element: usize,
    workload: &'static str,
}

/// The fleet: three scan-heavy sites whose array defaults lose to hashed
/// variants once sizes clear the adaptation thresholds, plus one
/// append/iterate control site whose default is already optimal — warm
/// start must resume the first three *and* leave the fourth alone.
const FLEET: &[FleetSite] = &[
    FleetSite {
        name: "scan-cache",
        abstraction: "list",
        default_kind: "array",
        size: 192,
        lookups_per_element: 2,
        workload: "push + contains-heavy",
    },
    FleetSite {
        name: "dedup-ring",
        abstraction: "set",
        default_kind: "array",
        size: 160,
        lookups_per_element: 2,
        workload: "insert + contains-heavy",
    },
    FleetSite {
        name: "route-index",
        abstraction: "map",
        default_kind: "array",
        size: 160,
        lookups_per_element: 2,
        workload: "insert + get-heavy",
    },
    FleetSite {
        name: "append-log",
        abstraction: "list",
        default_kind: "array",
        size: 64,
        lookups_per_element: 0,
        workload: "push + iterate (control: default already optimal)",
    },
];

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--out" {
            out = Some(argv.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (supported: --quick, --out PATH)");
            std::process::exit(2);
        }
    }
    let out = out
        .or_else(|| std::env::var("CS_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_fleet.json".into());
    Args { quick, out }
}

/// One analyze pass of the convergence trace.
struct RoundRow {
    round: u32,
    ops_cumulative: u64,
    switches_cumulative: u64,
    kinds: BTreeMap<String, String>,
}

/// Outcome of driving one engine (cold or warm) to steady state.
struct RunTrace {
    converged: bool,
    rounds_to_steady: u32,
    ops_to_steady: u64,
    total_switches: u64,
    /// Manifest right after registration, before any ops — for a warm
    /// engine, the variants the snapshot resumed.
    starting_kinds: BTreeMap<String, String>,
    final_kinds: BTreeMap<String, String>,
    rounds: Vec<RoundRow>,
}

/// Current variant per fleet site, keyed by site name.
fn manifest_kinds(engine: &Switch) -> BTreeMap<String, String> {
    engine
        .site_manifest()
        .into_iter()
        .map(|e| (e.name, e.current_kind))
        .collect()
}

/// Registers every fleet context so the site manifest (and, on a warm
/// engine, the resumed variants) is complete before the first round runs.
fn register_fleet(engine: &Switch) {
    for site in FLEET {
        match site.abstraction {
            "list" => {
                engine.named_list_context::<u64>(ListKind::Array, site.name);
            }
            "set" => {
                engine.named_set_context::<u64>(SetKind::Array, site.name);
            }
            "map" => {
                engine.named_map_context::<u64, u64>(MapKind::Array, site.name);
            }
            _ => unreachable!("fleet table is static"),
        }
    }
}

/// Drives one round of the fleet workload against `engine`, returning the
/// number of collection ops executed. Deterministic: no RNG, misses come
/// from probing 125% of the populated key range.
fn drive_round(engine: &Switch, instances: usize) -> u64 {
    let mut ops: u64 = 0;
    for site in FLEET {
        let probes = site.size * site.lookups_per_element;
        let probe_range = (site.size + site.size / 4) as u64;
        match (site.abstraction, site.name) {
            ("list", name) => {
                let ctx = engine.named_list_context::<u64>(ListKind::Array, name);
                for _ in 0..instances {
                    let mut list = ctx.create_list();
                    for v in 0..site.size as u64 {
                        list.push(v);
                        ops += 1;
                    }
                    for p in 0..probes as u64 {
                        list.contains(&(p * 7 % probe_range));
                        ops += 1;
                    }
                    if site.lookups_per_element == 0 {
                        let mut n = 0u64;
                        list.for_each(|_| n += 1);
                        ops += n;
                    }
                }
            }
            ("set", name) => {
                let ctx = engine.named_set_context::<u64>(SetKind::Array, name);
                for _ in 0..instances {
                    let mut set = ctx.create_set();
                    for v in 0..site.size as u64 {
                        set.insert(v);
                        ops += 1;
                    }
                    for p in 0..probes as u64 {
                        set.contains(&(p * 7 % probe_range));
                        ops += 1;
                    }
                }
            }
            ("map", name) => {
                let ctx = engine.named_map_context::<u64, u64>(MapKind::Array, name);
                for _ in 0..instances {
                    let mut map = ctx.create_map();
                    for v in 0..site.size as u64 {
                        map.insert(v, v.wrapping_mul(3));
                        ops += 1;
                    }
                    for p in 0..probes as u64 {
                        map.get(&(p * 7 % probe_range));
                        ops += 1;
                    }
                }
            }
            _ => unreachable!("fleet table is static"),
        }
    }
    ops
}

/// Runs the fleet workload on `engine` until the manifest survives
/// [`STEADY_PASSES`] analyze passes unchanged (or `max_rounds` expires).
fn run_to_steady(label: &str, engine: &Switch, instances: usize, max_rounds: u32) -> RunTrace {
    // Registering every context up front makes the baseline manifest the
    // true starting state — for a warm engine, the resumed variants — so
    // round 1's diff counts adaptation switches, not registrations.
    register_fleet(engine);
    let mut kinds = manifest_kinds(engine);
    let starting_kinds = kinds.clone();
    let mut ops: u64 = 0;
    let mut switches: u64 = 0;
    let mut streak: u32 = 0;
    let mut rounds = Vec::new();
    let mut steady_at: Option<(u32, u64)> = None;

    for round in 1..=max_rounds {
        ops += drive_round(engine, instances);
        engine.analyze_now();
        let now = manifest_kinds(engine);
        let changed = now
            .iter()
            .filter(|(name, kind)| kinds.get(*name) != Some(kind))
            .count() as u64;
        switches += changed;
        streak = if changed == 0 { streak + 1 } else { 0 };
        kinds = now;
        rounds.push(RoundRow {
            round,
            ops_cumulative: ops,
            switches_cumulative: switches,
            kinds: kinds.clone(),
        });
        println!(
            "# {label} round {round}: {ops} ops, {changed} switch(es) this pass, streak {streak}/{STEADY_PASSES}"
        );
        if streak >= STEADY_PASSES {
            steady_at = Some((round, ops));
            break;
        }
    }

    let (rounds_to_steady, ops_to_steady) = steady_at.unwrap_or((max_rounds, ops));
    RunTrace {
        converged: steady_at.is_some(),
        rounds_to_steady,
        ops_to_steady,
        total_switches: switches,
        starting_kinds,
        final_kinds: kinds,
        rounds,
    }
}

fn kinds_to_json(kinds: &BTreeMap<String, String>) -> Json {
    kinds
        .iter()
        .fold(Json::object(), |doc, (name, kind)| doc.field(name.as_str(), kind.as_str()))
}

fn trace_to_json(trace: &RunTrace) -> Json {
    Json::object()
        .field("converged", trace.converged)
        .field("rounds_to_steady", trace.rounds_to_steady)
        .field("ops_to_steady", trace.ops_to_steady)
        .field("total_switches", trace.total_switches)
        .field("starting_kinds", kinds_to_json(&trace.starting_kinds))
        .field("final_kinds", kinds_to_json(&trace.final_kinds))
        .field(
            "rounds",
            Json::Array(
                trace
                    .rounds
                    .iter()
                    .map(|r| {
                        Json::object()
                            .field("round", r.round)
                            .field("ops_cumulative", r.ops_cumulative)
                            .field("switches_cumulative", r.switches_cumulative)
                            .field("kinds", kinds_to_json(&r.kinds))
                    })
                    .collect(),
            ),
        )
}

fn warm_report_to_json(report: &WarmStartReport) -> Json {
    Json::object()
        .field("source", report.source.as_str())
        .field("sites_in_snapshot", report.sites_in_snapshot)
        .field("models_in_snapshot", report.models_in_snapshot)
        .field("applied", report.applied)
        .field("rejected_stale", report.rejected_stale)
        .field("rejected_unknown", report.rejected_unknown)
        .field("unclaimed", report.unclaimed)
        .field("records_loaded", report.records_loaded)
        .field("records_quarantined", report.records_quarantined)
        .field("duplicates_dropped", report.duplicates_dropped)
        .field("hit_ratio", report.hit_ratio())
}

fn main() {
    let args = parse_args();
    let (instances, max_rounds) = if args.quick { (16, 24) } else { (48, 40) };
    let snapshot_path: PathBuf = std::env::temp_dir().join("cs_fleet_sweep.state.css");

    println!(
        "# fleet_sweep: {} sites, {instances} instances/round, steady = {STEADY_PASSES} unchanged passes, cap {max_rounds} rounds",
        FLEET.len()
    );

    // --- Cold run: learn the fleet from scratch, then snapshot it. -------
    let cold_engine = Switch::builder().build();
    let cold = run_to_steady("cold", &cold_engine, instances, max_rounds);
    assert!(
        cold.converged,
        "cold run failed to reach steady state within {max_rounds} rounds"
    );
    assert!(
        cold.total_switches > 0,
        "cold run never switched — the fleet workload no longer exercises adaptation"
    );
    let write = cold_engine
        .save_state(&snapshot_path)
        .expect("write fleet snapshot");
    println!(
        "# snapshot: {} records, {} bytes -> {}",
        write.records,
        write.bytes,
        write.path.display()
    );

    // --- Warm run: same fleet, resumed from the snapshot. ----------------
    let warm_engine = Switch::builder().warm_start_from(&snapshot_path).build();
    let warm = run_to_steady("warm", &warm_engine, instances, max_rounds);
    let report = warm_engine
        .warm_start_report()
        .expect("warm engine must carry a warm-start report");

    // The warm engine registers the exact fleet the snapshot describes:
    // every site must be claimed and applied, nothing stale or unknown.
    assert_eq!(
        report.applied,
        FLEET.len() as u64,
        "warm start applied {}/{} sites: {report:?}",
        report.applied,
        FLEET.len()
    );
    assert_eq!(report.records_quarantined, 0, "clean snapshot was quarantined");
    assert_eq!(
        warm.starting_kinds, cold.final_kinds,
        "warm engine did not resume at the cold run's learned variants"
    );
    assert!(
        warm.converged && warm.ops_to_steady <= cold.ops_to_steady,
        "warm start converged no faster than cold: warm {} ops vs cold {} ops",
        warm.ops_to_steady,
        cold.ops_to_steady
    );

    let ops_saved = cold.ops_to_steady - warm.ops_to_steady;
    let ratio = warm.ops_to_steady as f64 / cold.ops_to_steady as f64;
    println!(
        "# cold: {} ops / {} rounds / {} switches; warm: {} ops / {} rounds / {} switches",
        cold.ops_to_steady,
        cold.rounds_to_steady,
        cold.total_switches,
        warm.ops_to_steady,
        warm.rounds_to_steady,
        warm.total_switches
    );
    println!("# warm start saves {ops_saved} ops to steady state ({ratio:.2}x of cold)");

    let doc = Json::object()
        .field("bench", "fleet_sweep")
        .field("quick", args.quick)
        .field("steady_passes", STEADY_PASSES)
        .field("max_rounds", max_rounds)
        .field("instances_per_round", instances)
        .field(
            "fleet",
            Json::Array(
                FLEET
                    .iter()
                    .map(|s| {
                        Json::object()
                            .field("site", s.name)
                            .field("abstraction", s.abstraction)
                            .field("default_kind", s.default_kind)
                            .field("instance_size", s.size)
                            .field("lookups_per_element", s.lookups_per_element)
                            .field("workload", s.workload)
                    })
                    .collect(),
            ),
        )
        .field(
            "snapshot",
            Json::object()
                .field("records", write.records)
                .field("bytes", write.bytes)
                .field("write_elapsed_nanos", write.elapsed_nanos),
        )
        .field("cold", trace_to_json(&cold))
        .field(
            "warm",
            trace_to_json(&warm).field("warm_start", warm_report_to_json(&report)),
        )
        .field(
            "warm_vs_cold",
            Json::object()
                .field("ops_to_steady_cold", cold.ops_to_steady)
                .field("ops_to_steady_warm", warm.ops_to_steady)
                .field("ops_saved", ops_saved)
                .field("warm_over_cold_ratio", ratio)
                .field(
                    "rounds_saved",
                    cold.rounds_to_steady.saturating_sub(warm.rounds_to_steady),
                ),
        );
    std::fs::write(&args.out, doc.render_pretty()).expect("write results file");
    println!("# wrote {}", args.out);

    let _ = std::fs::remove_file(&snapshot_path);
}
