//! Operational-plane sweep: what does live observability cost?
//!
//! ```text
//! cargo run --release -p cs-bench --bin obs_sweep -- [--quick] [--out PATH]
//! ```
//!
//! Serves a real runtime over `serve_obs` (timer sampler + HTTP workers)
//! while a 4-thread concurrent workload hammers the maps it observes, and
//! a scrape client polls `/metrics` the whole time. Writes
//! `BENCH_obs.json` (schema in EXPERIMENTS.md) and gates three claims:
//!
//! 1. **Overhead budget** — the plane's self-accounted busy time
//!    (`cs_obs_sampler_busy_nanos_total` + `cs_obs_handler_busy_nanos_total`)
//!    divided by the workload's aggregate thread-time must stay at or
//!    under [`DEFAULT_OVERHEAD_BUDGET`] (override: `CS_OBS_BUDGET`). This
//!    is the paper's own bar: adaptation machinery — and now its
//!    observability — must be cheap enough to leave on in production.
//! 2. **Scrape integrity** — every mid-load `/metrics` page passes the
//!    workspace exposition validator, and after the final flush the
//!    scraped `cs_runtime_site_ops_total` sum equals the workload's exact
//!    per-op accounting. A metrics page that drops ops under load is
//!    worse than no page.
//! 3. **Liveness** — the scrape client completed a minimum number of
//!    scrapes and the handler answered every one (no 5xx), so the p50/p99
//!    latencies in the artifact describe a server that was actually
//!    serving, not one request measured thrice.
//!
//! The artifact header stamps the process heap account and peak RSS, like
//! the other sidecars, so BENCH files are comparable on memory across PRs.
//!
//! Output paths: `--out PATH` (or `CS_BENCH_OUT`; the flag wins), default
//! `BENCH_obs.json`. `--quick` (or `CS_BENCH_QUICK=1`) selects the tiny
//! CI budget; the gates are identical in both modes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cs_collections::MapKind;
use cs_core::Switch;
use cs_heap::HeapAccount;
use cs_obs::ObsBuilder;
use cs_runtime::Runtime;
use cs_telemetry::{validate_prometheus_text, Json};
use cs_workloads::{run_concurrent_load, ConcurrentLoad};

#[global_allocator]
static ALLOC: cs_heap::CountingAlloc = cs_heap::CountingAlloc;

/// Plane busy-time over aggregate workload thread-time, the shipping gate.
const DEFAULT_OVERHEAD_BUDGET: f64 = 0.05;
/// Worker threads of the observed workload.
const WORKLOAD_THREADS: usize = 4;
/// The sampler period while under load.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(25);
/// Pause between scrapes — the client models a monitoring agent on a
/// polling cadence, not a saturation attack; a tight loop would measure
/// the server's capacity ceiling instead of its production overhead.
const SCRAPE_PAUSE: Duration = Duration::from_millis(25);
/// Quick mode shortens the workload, so it scrapes more often to clear
/// the liveness floor in the shorter window.
const QUICK_SCRAPE_PAUSE: Duration = Duration::from_millis(5);
/// The liveness gate: fewer completed scrapes than this means the server
/// was not really exercised and the latency percentiles are noise.
const MIN_SCRAPES: u64 = 20;

struct Args {
    out: String,
    quick: bool,
}

fn parse_args() -> Args {
    let mut out = None;
    let mut quick = std::env::var("CS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| {
                eprintln!("--out needs a path argument");
                std::process::exit(2);
            }));
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out = Some(path.to_owned());
        } else {
            eprintln!("unknown argument {arg:?} (supported: --quick, --out PATH)");
            std::process::exit(2);
        }
    }
    Args {
        out: out
            .or_else(|| std::env::var("CS_BENCH_OUT").ok())
            .unwrap_or_else(|| "BENCH_obs.json".into()),
        quick,
    }
}

fn overhead_budget() -> f64 {
    std::env::var("CS_OBS_BUDGET")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_OVERHEAD_BUDGET)
}

/// A raw-TCP `GET`: returns (status, body).
fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: obs-sweep\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Sum of every `cs_runtime_site_ops_total` sample on an exposition page.
fn scraped_ops_total(body: &str) -> u64 {
    body.lines()
        .filter(|l| l.starts_with("cs_runtime_site_ops_total{"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ScrapeStats {
    scrapes: u64,
    bad_status: u64,
    invalid_pages: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    last_page_bytes: usize,
}

fn heap_account_json(a: &HeapAccount) -> Json {
    Json::object()
        .field("alloc_count", a.alloc_count)
        .field("alloc_bytes", a.alloc_bytes)
        .field("dealloc_count", a.dealloc_count)
        .field("dealloc_bytes", a.dealloc_bytes)
        .field("realloc_count", a.realloc_count)
        .field("realloc_bytes", a.realloc_bytes)
        .field("live_bytes", a.live_bytes())
}

fn main() {
    let args = parse_args();
    let budget = overhead_budget();
    let ops_per_thread: u64 = if args.quick { 400_000 } else { 1_500_000 };
    let scrape_pause = if args.quick { QUICK_SCRAPE_PAUSE } else { SCRAPE_PAUSE };
    let process_start = cs_heap::process_account();
    let mut failures: Vec<String> = Vec::new();

    println!(
        "# obs sweep: {WORKLOAD_THREADS}-thread load x{ops_per_thread} ops/thread, \
         live scrape client, budget {budget} (quick={})",
        args.quick
    );

    // -- Wire the observed runtime and its plane ---------------------------
    let rt = Runtime::new(Switch::builder().build());
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "obs-sweep-map");
    let obs = ObsBuilder::new()
        .addr("127.0.0.1:0")
        .sample_every(SAMPLE_INTERVAL)
        .spawn_runtime(&rt)
        .expect("bind obs server on an ephemeral port");
    let addr = obs.local_addr().expect("server address");

    // -- Drive the workload on helper threads while this thread scrapes ----
    let load = ConcurrentLoad {
        threads: WORKLOAD_THREADS,
        ops_per_thread,
        ..ConcurrentLoad::default()
    };
    let wall_start = Instant::now();
    let loader = std::thread::spawn({
        let map = map.clone();
        move || run_concurrent_load(&map, load)
    });

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut bad_status = 0u64;
    let mut invalid_pages = 0u64;
    let mut last_total = 0u64;
    let mut last_page_bytes = 0usize;
    while !loader.is_finished() {
        let t = Instant::now();
        match get(addr, "/metrics") {
            Ok((status, body)) => {
                latencies_ns.push(t.elapsed().as_nanos() as u64);
                if status != 200 {
                    bad_status += 1;
                } else {
                    if validate_prometheus_text(&body).is_err() {
                        invalid_pages += 1;
                    }
                    let total = scraped_ops_total(&body);
                    if total < last_total {
                        failures
                            .push(format!("ops total went backwards: {last_total} -> {total}"));
                    }
                    last_total = total;
                    last_page_bytes = body.len();
                }
            }
            Err(e) => {
                failures.push(format!("scrape transport error mid-load: {e}"));
                break;
            }
        }
        std::thread::sleep(scrape_pause);
    }
    let report = loader.join().expect("workload threads");
    let wall = wall_start.elapsed();

    // Snapshot the plane's busy counters at workload join: the overhead
    // ratio prices observability *under load*; the validation scrape
    // below is out of band.
    let snap = obs.registry().snapshot();
    let sampler_busy_ns = snap
        .counter_total("cs_obs_sampler_busy_nanos_total")
        .unwrap_or(0);
    let handler_busy_ns = snap
        .counter_total("cs_obs_handler_busy_nanos_total")
        .unwrap_or(0);
    let sampler_ticks = snap.counter_total("cs_obs_sampler_ticks_total").unwrap_or(0);

    // -- Final accounting: flush, one more scrape, exact totals ------------
    rt.flush_thread();
    rt.analyze_now();
    let (status, body) = get(addr, "/metrics").expect("final scrape");
    if status != 200 {
        failures.push(format!("final scrape answered {status}"));
    }
    if let Err(errors) = validate_prometheus_text(&body) {
        failures.push(format!("final page failed validation: {errors:?}"));
    }
    let final_total = scraped_ops_total(&body);
    if final_total != report.total_ops {
        failures.push(format!(
            "scraped ops {} != workload's exact accounting {}",
            final_total, report.total_ops
        ));
    }

    latencies_ns.sort_unstable();
    let scrape = ScrapeStats {
        scrapes: latencies_ns.len() as u64,
        bad_status,
        invalid_pages,
        p50_ns: percentile(&latencies_ns, 0.50),
        p99_ns: percentile(&latencies_ns, 0.99),
        max_ns: latencies_ns.last().copied().unwrap_or(0),
        last_page_bytes,
    };
    if scrape.scrapes < MIN_SCRAPES {
        failures.push(format!(
            "only {} scrapes completed (liveness floor {MIN_SCRAPES})",
            scrape.scrapes
        ));
    }
    if scrape.bad_status > 0 {
        failures.push(format!("{} scrapes answered non-200", scrape.bad_status));
    }
    if scrape.invalid_pages > 0 {
        failures.push(format!(
            "{} mid-load pages failed exposition validation",
            scrape.invalid_pages
        ));
    }

    // -- The overhead gate: plane busy-time over workload thread-time ------
    let workload_thread_ns = report.elapsed.as_nanos() as u64 * WORKLOAD_THREADS as u64;
    let overhead_ratio =
        (sampler_busy_ns + handler_busy_ns) as f64 / workload_thread_ns.max(1) as f64;
    if overhead_ratio > budget {
        failures.push(format!(
            "plane overhead {overhead_ratio:.4} exceeds budget {budget} \
             (sampler {sampler_busy_ns} ns + handlers {handler_busy_ns} ns \
             over {workload_thread_ns} thread-ns)"
        ));
    }

    println!(
        "load: {} ops in {:.2?} ({:.0} ops/s), {} sampler ticks",
        report.total_ops, report.elapsed, report.throughput_ops_per_sec, sampler_ticks
    );
    println!(
        "scrapes: {} total, p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms, page {} B",
        scrape.scrapes,
        scrape.p50_ns as f64 / 1e6,
        scrape.p99_ns as f64 / 1e6,
        scrape.max_ns as f64 / 1e6,
        scrape.last_page_bytes,
    );
    println!(
        "overhead: sampler {:.3} ms + handlers {:.3} ms over {:.2?} x {} threads -> ratio {:.5} (budget {})",
        sampler_busy_ns as f64 / 1e6,
        handler_busy_ns as f64 / 1e6,
        report.elapsed,
        WORKLOAD_THREADS,
        overhead_ratio,
        budget,
    );

    obs.shutdown();
    let process_end = cs_heap::process_account();
    let doc = Json::object()
        .field("bench", "obs_sweep")
        .field("git", git_describe())
        .field("hw_threads", cpus())
        .field("quick", args.quick)
        .field(
            "process",
            Json::object()
                .field("peak_rss_bytes", cs_heap::peak_rss_bytes())
                .field(
                    "account_delta",
                    heap_account_json(&process_end.delta_since(&process_start)),
                ),
        )
        .field(
            "workload",
            Json::object()
                .field("threads", WORKLOAD_THREADS)
                .field("ops_per_thread", ops_per_thread)
                .field("total_ops", report.total_ops)
                .field("elapsed_ns", report.elapsed.as_nanos() as u64)
                .field("wall_ns", wall.as_nanos() as u64)
                .field("throughput_ops_per_sec", report.throughput_ops_per_sec),
        )
        .field(
            "scrape",
            Json::object()
                .field("scrapes", scrape.scrapes)
                .field("bad_status", scrape.bad_status)
                .field("invalid_pages", scrape.invalid_pages)
                .field("p50_ns", scrape.p50_ns)
                .field("p99_ns", scrape.p99_ns)
                .field("max_ns", scrape.max_ns)
                .field("page_bytes", scrape.last_page_bytes)
                .field("final_total_exact", final_total == report.total_ops),
        )
        .field(
            "overhead",
            Json::object()
                .field("sampler_interval_ms", SAMPLE_INTERVAL.as_millis() as u64)
                .field("sampler_ticks", sampler_ticks)
                .field("sampler_busy_ns", sampler_busy_ns)
                .field("handler_busy_ns", handler_busy_ns)
                .field("workload_thread_ns", workload_thread_ns)
                .field("ratio", overhead_ratio)
                .field("budget", budget),
        )
        .field(
            "failures",
            Json::Array(failures.iter().map(|f| Json::from(f.as_str())).collect()),
        );
    std::fs::write(&args.out, doc.render_pretty()).expect("write results file");
    println!("# wrote {}", args.out);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Source revision for the artifact header; `"unknown"` outside a git
/// checkout rather than a failure — the stamp is provenance, not a gate.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
