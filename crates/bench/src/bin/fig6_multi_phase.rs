//! Regenerates paper Fig. 6 (multi-phase list scenario).
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig6_multi_phase [instances_per_iter]
//! ```
//!
//! The dominant operation changes every five iterations (contains → index →
//! iteration → search-and-remove → contains). Four series are printed:
//! fixed ArrayList, fixed HashArrayList, fixed LinkedList, and
//! CollectionSwitch under `R_time` (with the variant it holds at each
//! iteration — including the paper's expected mis-selection during the
//! *search and remove* phase, where the model cannot distinguish
//! HashArrayList's slower remove-by-index from ArrayList's).

use std::rc::Rc;

use cs_bench::scale_arg;
use cs_collections::{AnyList, ListKind};
use cs_core::{SelectionRule, Switch};
use cs_workloads::phases::{run_phased, PhasedConfig, PhasedSample};

/// Reference-typed element emulating the JVM's boxed `Integer`: comparisons
/// chase a pointer and copies are reference counts, which restores the
/// array-vs-hash crossover the paper measures on Java collections.
type JInt = Rc<i64>;

fn main() {
    let cfg = PhasedConfig {
        instances_per_iter: scale_arg(60),
        size: 400,
        ops_per_instance: 100,
        iters_per_phase: 5,
        seed: 0xF16,
    };
    println!(
        "# Fig. 6: multi-phase scenario ({} instances/iter, size {}, {} ops/instance)",
        cfg.instances_per_iter, cfg.size, cfg.ops_per_instance
    );

    let arraylist = run_phased::<JInt, _>(&cfg, || AnyList::new(ListKind::Array), |_| {});
    let hasharray = run_phased::<JInt, _>(&cfg, || AnyList::new(ListKind::HashArray), |_| {});
    let linked = run_phased::<JInt, _>(&cfg, || AnyList::new(ListKind::Linked), |_| {});

    let engine = Switch::builder().rule(SelectionRule::r_time()).build();
    let ctx = engine.list_context::<JInt>(ListKind::Array);
    let mut kinds = Vec::new();
    let cs = run_phased::<JInt, _>(
        &cfg,
        || ctx.create_list(),
        |_| {
            engine.analyze_now();
            kinds.push(ctx.current_kind().to_string());
        },
    );

    println!(
        "iter\tphase            \tarraylist_ms\thasharray_ms\tlinked_ms\tcollectionswitch_ms\tcs_variant"
    );
    for i in 0..cs.len() {
        let ms = |s: &PhasedSample| s.elapsed.as_secs_f64() * 1e3;
        println!(
            "{}\t{:17}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
            i,
            cs[i].op.to_string(),
            ms(&arraylist[i]),
            ms(&hasharray[i]),
            ms(&linked[i]),
            ms(&cs[i]),
            kinds[i],
        );
    }

    println!();
    println!("# transitions performed by CollectionSwitch:");
    for t in engine.transition_log() {
        println!("#   {t}");
    }
}
