//! # cs-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the
//! CollectionSwitch paper's evaluation (§5). Each `[[bin]]` target prints
//! the rows/series of one paper artifact; the Criterion benches measure the
//! micro costs behind Fig. 7 and the ablations called out in DESIGN.md.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig3_threshold` | Fig. 3 benefit curve + Table 1 thresholds |
//! | `model_builder` | Table 3 factorial calibration run |
//! | `fig5_single_phase` | Fig. 5a–e single-phase comparisons |
//! | `fig6_multi_phase` | Fig. 6 multi-phase scenario |
//! | `table5_dacapo` | Table 5 (plus the §5.3 overhead configuration) |
//! | `table6_transitions` | Table 6 most-common transitions |
//! | `fig7_overhead` | Fig. 7 analysis cost by window size |
//! | bench `analysis_overhead` | Fig. 7 micro measurement |
//! | bench `variant_ops` | per-variant critical-op costs (Table 2/3 scope) |
//! | bench `ablation_dispatch` | enum dispatch vs boxed trait objects |
//! | bench `ablation_monitor` | monitored vs raw handle overhead |
//!
//! Scale knobs: most binaries accept a scale argument; the `CS_BENCH_SCALE`
//! environment variable overrides the default for the table binaries.

/// Parses the common scale argument (first CLI arg, then `CS_BENCH_SCALE`,
/// then the given default).
pub fn scale_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .or_else(|| {
            std::env::var("CS_BENCH_SCALE")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(default)
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Signed percentage improvement of `new` over `base` (positive = better,
/// i.e. smaller).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (1.0 - new / base) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_sign_convention() {
        assert!(improvement_pct(10.0, 8.0) > 0.0);
        assert!(improvement_pct(10.0, 12.0) < 0.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn mib_converts() {
        assert!((mib(1024 * 1024) - 1.0).abs() < 1e-12);
    }
}
