//! The adaptation-pipeline phase taxonomy.

use std::fmt;

/// One phase of the adaptation pipeline, as spans classify it.
///
/// The five pipeline stages of the paper's feedback loop map onto seven
/// span phases — the op-record stage and the switch stage each split into
/// two distinguishable costs:
///
/// | Pipeline stage | Phases |
/// |---|---|
/// | op record / thread-local buffer flush | [`OpRecord`](Phase::OpRecord), [`Flush`](Phase::Flush) |
/// | profile ingest + model evaluation | [`Ingest`](Phase::Ingest), [`ModelEval`](Phase::ModelEval) |
/// | selection-rule decision | [`Decision`](Phase::Decision) |
/// | switch execution + migration | [`SwitchExec`](Phase::SwitchExec) |
/// | post-switch verification / rollback | [`Verify`](Phase::Verify) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Monitoring bookkeeping around one application op: the thread-local
    /// buffer record plus the epoch-boundary checks (`cs-runtime::site_op`,
    /// the single-owner `timed!` path in cs-core).
    OpRecord = 0,
    /// Folding a thread-local buffer into the site's shared profile, or a
    /// monitored handle handing its finished profile to the sink.
    Flush = 1,
    /// The engine core accepting one profile into the monitoring window.
    Ingest = 2,
    /// Cost-model evaluation: estimating `TC_D(V)` for every candidate
    /// variant over the aggregated workload history.
    ModelEval = 3,
    /// The selection-rule decision for one site in one analysis round
    /// (contains [`ModelEval`](Phase::ModelEval) as a nested span).
    Decision = 4,
    /// Committing a switch: installing the new variant index and recording
    /// the transition (shard migration then follows lazily).
    SwitchExec = 5,
    /// Evaluating a pending post-switch verification — including the
    /// rollback, when the realized cost betrays the prediction.
    Verify = 6,
}

/// Number of [`Phase`] variants; arrays indexed by [`Phase::index`] have
/// this length.
pub const PHASE_COUNT: usize = 7;

impl Phase {
    /// Every phase, in index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::OpRecord,
        Phase::Flush,
        Phase::Ingest,
        Phase::ModelEval,
        Phase::Decision,
        Phase::SwitchExec,
        Phase::Verify,
    ];

    /// Dense index of the phase, `0..PHASE_COUNT`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Phase::index`].
    pub fn from_index(index: usize) -> Option<Phase> {
        Phase::ALL.get(index).copied()
    }

    /// Stable snake_case name — the `phase` label value in metric series
    /// and incident records.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::OpRecord => "op_record",
            Phase::Flush => "flush",
            Phase::Ingest => "ingest",
            Phase::ModelEval => "model_eval",
            Phase::Decision => "decision",
            Phase::SwitchExec => "switch_exec",
            Phase::Verify => "verify",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert_eq!(Phase::from_index(i), Some(*phase));
        }
        assert_eq!(Phase::from_index(PHASE_COUNT), None);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for phase in Phase::ALL {
            assert!(seen.insert(phase.name()), "duplicate name {}", phase);
            assert!(phase
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
