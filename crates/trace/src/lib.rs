//! # cs-trace
//!
//! Dependency-free span tracing and self-overhead accounting for the
//! CollectionSwitch adaptation pipeline.
//!
//! The paper's central empirical claim is that continuous workload
//! monitoring and cost-model re-evaluation are cheap enough to leave on in
//! production. This crate turns that claim into a measured, continuously
//! exported number: every stage of the adaptation pipeline — op record,
//! buffer flush, profile ingest, model evaluation, selection decision,
//! switch execution, post-switch verification — is wrapped in a [`Phase`]-
//! tagged span, and the accountant attributes every framework nanosecond
//! against the application op time it rode along with.
//!
//! ## Design
//!
//! * **Per-thread fixed rings, no locks on the span path.** Each thread
//!   owns a [`RING_CAPACITY`]-slot ring of packed span records plus
//!   monotonic per-phase aggregates. The owning thread is the only writer;
//!   readers ([`snapshot`]) walk the rings racily. Entering and exiting a
//!   span allocates nothing and takes no lock (self-lint rule
//!   `no-alloc-in-span-path`); the single exception is a thread's very
//!   first span, which registers its ring.
//! * **Sampled fast path for ops.** [`op_span`] in [`TraceMode::Sampled`]
//!   measures one op in `op_sample_mask() + 1` and scales the measurement
//!   back up, so the common op pays one atomic load and one thread-local
//!   tick — no clock read.
//! * **Off means off.** The default mode is [`TraceMode::Off`]; every
//!   instrumentation point then costs one relaxed atomic load.
//!
//! ## Quickstart
//!
//! ```
//! use cs_trace::{Phase, TraceMode};
//!
//! cs_trace::set_mode(TraceMode::Sampled);
//! {
//!     let _decision = cs_trace::span(Phase::Decision, 7);
//!     let _eval = cs_trace::span(Phase::ModelEval, 7); // nested
//! }
//! cs_trace::add_app_time(1_000, 5_000_000); // 1k ops, 5ms of app time
//!
//! let snap = cs_trace::snapshot();
//! let overhead = snap.overhead();
//! assert!(overhead.ratio() < 1.0);
//! cs_trace::set_mode(TraceMode::Off);
//! ```
//!
//! The telemetry bridge (`cs-telemetry::export_trace`) mirrors the
//! accountant into `cs_trace_*` metric series; the flight recorder
//! freezes [`TraceSnapshot::last_spans`] into JSONL incident records.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod phase;
mod ring;
mod snapshot;
mod span;

pub use phase::{Phase, PHASE_COUNT};
pub use ring::{SpanRecord, RING_CAPACITY, SPAN_BUCKET_BOUNDS_NS, SPAN_BUCKET_COUNT};
pub use snapshot::{snapshot, OverheadReport, ThreadTrace, TraceSnapshot};
pub use span::{
    add_app_time, credit_app_ops, enabled, mode, now_ns, op_sample_mask, op_span,
    registered_threads, reset, set_mode, set_op_sample_mask, span, tracer_costs, Span, TraceMode,
    TracerCosts,
};

// Snapshots cross threads by construction; losing `Send + Sync` on the
// snapshot types must fail the build here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TraceSnapshot>();
    assert_send_sync::<SpanRecord>();
    assert_send_sync::<OverheadReport>();
};
