//! Span guards, the tracer mode switch, and per-thread registration.
//!
//! The hot-path contract, pinned by the workspace self-lint's
//! `no-alloc-in-span-path` rule: [`span`], [`op_span`], span exit, and
//! [`add_app_time`] never allocate and never take a lock. The only
//! allocating step is the *first* span a thread ever records, which
//! registers the thread's ring ([`register_current_thread`] — deliberately
//! outside the lint's span-path item set, and outside the steady state).

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::phase::Phase;
use crate::ring::ThreadRing;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceMode {
    /// Nothing is recorded; every span call is one relaxed atomic load.
    Off = 0,
    /// Analysis-side phases are always recorded; the per-op
    /// [`op_span`] records one op in `op_sample_mask() + 1` and scales its
    /// duration back up in the overhead aggregates.
    Sampled = 1,
    /// Every span is recorded, including every op. The honest worst case —
    /// what the `overhead_sweep` bench's `full` row measures.
    Full = 2,
}

static MODE: AtomicU8 = AtomicU8::new(TraceMode::Off as u8);
/// `tick & mask == 0` selects the sampled op; default 63 = one op in 64 —
/// chosen so sampled tracing stays well inside the 5% self-overhead budget
/// even on collection-op-only microbenchmarks (see the `overhead_sweep`
/// bench).
static OP_SAMPLE_MASK: AtomicU64 = AtomicU64::new(63);

/// Sets the global tracing mode. Takes effect on the next span call on
/// every thread; spans already entered complete under their old mode.
pub fn set_mode(mode: TraceMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current tracing mode.
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Sampled,
        _ => TraceMode::Full,
    }
}

/// Returns `true` when any tracing is active — the single branch the
/// instrumented hot paths pay when tracing is off.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != TraceMode::Off as u8
}

/// Sets the op-record sampling mask used in [`TraceMode::Sampled`].
///
/// # Panics
///
/// Panics unless `mask + 1` is a power of two (`0`, `1`, `3`, `7`, ...).
pub fn set_op_sample_mask(mask: u64) {
    assert!(
        mask.wrapping_add(1).is_power_of_two(),
        "op sample mask must be 2^k - 1, got {mask}"
    );
    OP_SAMPLE_MASK.store(mask, Ordering::Relaxed);
}

/// The op-record sampling mask (see [`set_op_sample_mask`]).
pub fn op_sample_mask() -> u64 {
    OP_SAMPLE_MASK.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the tracer epoch (the first call in the
/// process). Allocation- and lock-free after the first call.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Every ring ever registered, including rings of exited threads.
pub(crate) fn all_rings() -> Vec<Arc<ThreadRing>> {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Number of threads that have ever recorded a span.
pub fn registered_threads() -> usize {
    registry().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Zeroes every registered ring and aggregate. A bench/test convenience:
/// only sound while no instrumented workload is running.
pub fn reset() {
    for ring in all_rings() {
        ring.reset();
    }
}

struct LocalTrace {
    ring: Arc<ThreadRing>,
    depth: Cell<u8>,
    tick: Cell<u64>,
}

impl Drop for LocalTrace {
    fn drop(&mut self) {
        self.ring.retire();
    }
}

thread_local! {
    static LOCAL: OnceCell<LocalTrace> = const { OnceCell::new() };
}

/// Allocates and registers the calling thread's ring. Runs once per
/// thread, on its first armed span — never in the steady-state span path.
fn register_current_thread() -> LocalTrace {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
    let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    let ring = Arc::new(ThreadRing::new(thread));
    // Open the wall-credit interval at registration: the thread's first
    // `credit_app_ops` then covers real elapsed time.
    ring.prime_credit(now_ns());
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&ring));
    LocalTrace {
        ring,
        depth: Cell::new(0),
        tick: Cell::new(0),
    }
}

/// Runs `f` against the calling thread's trace state. Returns `None` when
/// thread-local storage is already torn down (spans recorded from TLS
/// destructors late in thread exit are silently dropped).
#[inline]
fn with_local<R>(f: impl FnOnce(&LocalTrace) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| match cell.get() {
            Some(local) => f(local),
            None => f(cell.get_or_init(register_current_thread)),
        })
        .ok()
}

/// An in-flight span. Records itself into the calling thread's ring when
/// dropped; a disarmed span (tracing off, op not sampled) is inert.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    start_ns: u64,
    site: u64,
    phase: Phase,
    scale: u64,
    depth: u8,
    armed: bool,
}

impl Span {
    #[inline]
    fn disarmed() -> Span {
        Span {
            start_ns: 0,
            site: 0,
            phase: Phase::OpRecord,
            scale: 1,
            depth: 0,
            armed: false,
        }
    }

    /// Whether this span will record on drop.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    #[inline]
    fn exit(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let _ = with_local(|local| {
            local.depth.set(local.depth.get().saturating_sub(1));
            local
                .ring
                .push(self.site, self.phase, self.depth, self.start_ns, dur_ns, self.scale);
        });
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            self.exit();
        }
    }
}

#[inline]
fn enter(phase: Phase, site: u64, scale: u64) -> Span {
    let depth = match with_local(|local| {
        let depth = local.depth.get();
        local.depth.set(depth.saturating_add(1));
        depth
    }) {
        Some(depth) => depth,
        None => return Span::disarmed(),
    };
    Span {
        start_ns: now_ns(),
        site,
        phase,
        scale,
        depth,
        armed: true,
    }
}

/// Opens a span of `phase` at allocation site `site` (0 when no site
/// applies). Records on every call while tracing is enabled — use for the
/// analysis-side phases, which run orders of magnitude less often than ops.
#[inline]
pub fn span(phase: Phase, site: u64) -> Span {
    if !enabled() {
        return Span::disarmed();
    }
    enter(phase, site, 1)
}

/// Opens an op-record span at `site`, honouring the sampling fast path: in
/// [`TraceMode::Sampled`] only one op in `op_sample_mask() + 1` is
/// measured, and its duration is scaled back up in the overhead
/// aggregates. The unsampled op pays one atomic load, one thread-local
/// tick, and no clock read.
#[inline]
pub fn op_span(site: u64) -> Span {
    match MODE.load(Ordering::Relaxed) {
        0 => Span::disarmed(),
        1 => {
            let mask = OP_SAMPLE_MASK.load(Ordering::Relaxed);
            let sampled = with_local(|local| {
                let tick = local.tick.get().wrapping_add(1);
                local.tick.set(tick);
                tick & mask == 0
            })
            .unwrap_or(false);
            if sampled {
                enter(Phase::OpRecord, site, mask.wrapping_add(1))
            } else {
                Span::disarmed()
            }
        }
        _ => enter(Phase::OpRecord, site, 1),
    }
}

/// Credits `ops` application operations taking `nanos` wall nanoseconds
/// (already scaled, when the caller sampled) to the calling thread — the
/// denominator of the overhead ratio. No-op while tracing is off.
#[inline]
pub fn add_app_time(ops: u64, nanos: u64) {
    if !enabled() {
        return;
    }
    let _ = with_local(|local| local.ring.add_app(ops, nanos));
}

/// Credits the wall time since the calling thread's previous credit (or
/// since its ring registration) as application time carrying `ops`
/// operations — the epoch-boundary variant of [`add_app_time`], used by
/// the concurrent runtime at flush time.
///
/// Wall-interval crediting counts *everything* the thread did since the
/// last credit — op bodies, workload driver code, even the framework's own
/// bookkeeping — so the resulting overhead ratio is measured against real
/// application runtime, as the paper measures it, rather than against
/// in-collection time only. Intervals are per thread: multiple sites
/// flushing on one thread split the elapsed time instead of each claiming
/// all of it. No-op while tracing is off.
#[inline]
pub fn credit_app_ops(ops: u64) {
    if !enabled() {
        return;
    }
    let _ = with_local(|local| local.ring.credit_wall(ops, now_ns()));
}

/// Calibrated per-call costs of the tracer itself, in nanoseconds — what
/// the self-overhead accountant charges the tracer for its own activity.
///
/// `span_ns` is the cost of recording one armed span (two clock reads, two
/// thread-local touches, one ring push); `check_ns` is the cost of the
/// disarmed sampled-mode fast path every unsampled op still pays (a mode
/// load, a thread-local tick, a mask test). Measured once per process on
/// first use; see [`tracer_costs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerCosts {
    /// Cost of one recorded span, nanoseconds.
    pub span_ns: u64,
    /// Cost of one disarmed op-span check, nanoseconds.
    pub check_ns: u64,
}

thread_local! {
    /// Scratch cell for calibration loops: same TLS access shape as the
    /// real span path, but never touches (or registers) the real ring.
    static CAL_SCRATCH: Cell<u64> = const { Cell::new(0) };
}

/// Measures [`TracerCosts`] with tight loops over the same operations the
/// span path performs, against a scratch ring and scratch thread-local —
/// the calibration neither registers a ring nor perturbs real aggregates.
/// Runs once per process (~a few microseconds), on the first call; later
/// calls return the cached result.
///
/// This is the honest way to account for sampled tracing: the *measured*
/// span duration cannot see its own clock reads, and unsampled ops record
/// nothing at all, so the accountant instead multiplies calibrated unit
/// costs by the observed span and op counts.
pub fn tracer_costs() -> TracerCosts {
    static COSTS: OnceLock<TracerCosts> = OnceLock::new();
    *COSTS.get_or_init(measure_tracer_costs)
}

fn measure_tracer_costs() -> TracerCosts {
    const ITERS: u64 = 8 * 1024;
    // Disarmed fast path: mode load + TLS tick + mask test.
    let t0 = now_ns();
    for _ in 0..ITERS {
        let armed = CAL_SCRATCH
            .try_with(|c| {
                let tick = c.get().wrapping_add(1);
                c.set(tick);
                tick & OP_SAMPLE_MASK.load(Ordering::Relaxed) == 0
            })
            .unwrap_or(false);
        std::hint::black_box(armed);
    }
    let check_ns = ((now_ns() - t0) / ITERS).max(1);

    // Armed span: TLS enter, clock pair, TLS exit, ring push.
    let ring = ThreadRing::new(u64::MAX);
    let t0 = now_ns();
    for _ in 0..ITERS {
        let _ = CAL_SCRATCH.try_with(|c| c.set(c.get().wrapping_add(1)));
        let start = now_ns();
        let dur = now_ns().saturating_sub(start);
        let _ = CAL_SCRATCH.try_with(|c| c.set(c.get().wrapping_sub(1)));
        ring.push(0, Phase::OpRecord, 0, start, dur, 1);
    }
    let span_ns = ((now_ns() - t0) / ITERS).max(1);
    TracerCosts { span_ns, check_ns }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Tracing mode is process-global; tests that flip it serialize here.
    pub(crate) fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = mode_lock();
        set_mode(TraceMode::Off);
        let before: u64 = all_rings().iter().map(|r| r.recorded()).sum();
        {
            let _s = span(Phase::Decision, 1);
            let _o = op_span(1);
        }
        add_app_time(1, 100);
        let after: u64 = all_rings().iter().map(|r| r.recorded()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn full_mode_records_nested_spans_with_depth() {
        let _guard = mode_lock();
        set_mode(TraceMode::Full);
        let outer = span(Phase::Decision, 42);
        assert!(outer.is_armed());
        {
            let inner = span(Phase::ModelEval, 42);
            assert!(inner.is_armed());
        }
        drop(outer);
        set_mode(TraceMode::Off);

        let mut spans = Vec::new();
        for ring in all_rings() {
            ring.collect_spans(&mut spans);
        }
        let inner = spans
            .iter()
            .rev()
            .find(|s| s.phase == Phase::ModelEval && s.site == 42)
            .expect("inner span recorded");
        let outer = spans
            .iter()
            .rev()
            .find(|s| s.phase == Phase::Decision && s.site == 42)
            .expect("outer span recorded");
        assert_eq!(outer.depth, inner.depth - 1, "nesting depth recorded");
        // Well-nested: the inner span lies within the outer one.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
    }

    #[test]
    fn sampled_op_spans_honor_the_mask() {
        let _guard = mode_lock();
        set_mode(TraceMode::Sampled);
        set_op_sample_mask(3);
        let armed = (0..16).filter(|_| op_span(9).is_armed()).count();
        set_mode(TraceMode::Off);
        set_op_sample_mask(63);
        assert_eq!(armed, 4, "one op in mask+1 is sampled");
    }

    #[test]
    #[should_panic(expected = "2^k - 1")]
    fn bad_sample_mask_is_rejected() {
        set_op_sample_mask(5);
    }

    #[test]
    fn mode_round_trips() {
        let _guard = mode_lock();
        for m in [TraceMode::Sampled, TraceMode::Full, TraceMode::Off] {
            set_mode(m);
            assert_eq!(mode(), m);
            assert_eq!(enabled(), m != TraceMode::Off);
        }
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn tracer_costs_are_sane_and_cached() {
        let costs = tracer_costs();
        assert!(costs.span_ns >= 1);
        assert!(costs.check_ns >= 1);
        assert!(
            costs.span_ns < 100_000 && costs.check_ns < 100_000,
            "calibration wildly off: {costs:?}"
        );
        assert_eq!(tracer_costs(), costs, "calibration runs once");
    }

    #[test]
    fn wall_credit_requires_enabled_mode() {
        let _guard = mode_lock();
        set_mode(TraceMode::Off);
        let before: u64 = all_rings().iter().map(|r| r.app().0).sum();
        credit_app_ops(50);
        let after: u64 = all_rings().iter().map(|r| r.app().0).sum();
        assert_eq!(before, after, "off mode credits nothing");

        set_mode(TraceMode::Sampled);
        credit_app_ops(50);
        std::thread::sleep(std::time::Duration::from_millis(1));
        credit_app_ops(25);
        set_mode(TraceMode::Off);
        let (ops, nanos): (u64, u64) = all_rings()
            .iter()
            .map(|r| r.app())
            .fold((0, 0), |(o, n), (ro, rn)| (o + ro, n + rn));
        assert!(ops >= before + 75);
        assert!(nanos > 0, "second credit covers the elapsed sleep");
    }
}
