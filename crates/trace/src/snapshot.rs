//! Cross-thread trace snapshots and the self-overhead accountant.

use crate::phase::PHASE_COUNT;
use crate::ring::{SpanRecord, SPAN_BUCKET_COUNT};
use crate::span::{all_rings, now_ns};

/// Frozen view of one thread's ring: its retained spans plus the monotonic
/// aggregates the overhead accountant is built on.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Registration index of the thread.
    pub thread: u64,
    /// Whether the thread has exited (its aggregates are final).
    pub retired: bool,
    /// Spans ever recorded by the thread.
    pub recorded: u64,
    /// Spans evicted by ring wrap-around.
    pub overwritten: u64,
    /// The retained spans, oldest first. Diagnostic data: a record being
    /// overwritten during the snapshot may be torn (see the ring docs).
    pub spans: Vec<SpanRecord>,
    /// Per-phase span counts (indexed by [`Phase::index`](crate::Phase::index)).
    pub phase_counts: [u64; PHASE_COUNT],
    /// Per-phase measured nanos (sampled spans only, unscaled).
    pub phase_nanos: [u64; PHASE_COUNT],
    /// Per-phase sampling-scaled nanos. Nested phases overlap their
    /// parents; sum [`ThreadTrace::outer_scaled_nanos`] instead of these
    /// when totalling framework time.
    pub phase_scaled_nanos: [u64; PHASE_COUNT],
    /// Scaled nanos of depth-0 spans only — the double-count-free total.
    pub outer_scaled_nanos: u64,
    /// Per-phase duration-bucket counts; bounds in
    /// [`SPAN_BUCKET_BOUNDS_NS`](crate::SPAN_BUCKET_BOUNDS_NS), last bucket
    /// is `+Inf`.
    pub bucket_counts: [[u64; SPAN_BUCKET_COUNT]; PHASE_COUNT],
    /// Application ops credited via [`add_app_time`](crate::add_app_time).
    pub app_ops: u64,
    /// Application nanos credited via [`add_app_time`](crate::add_app_time).
    pub app_nanos: u64,
}

/// A frozen cross-thread view of every registered ring.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// One entry per thread that ever recorded a span, in registration
    /// order.
    pub threads: Vec<ThreadTrace>,
    /// Monotonic time the snapshot was taken (tracer-epoch nanos).
    pub taken_ns: u64,
}

/// Snapshots every registered thread ring. Takes the registry lock (never
/// contended with span recording) and reads the rings racily — safe to
/// call from any thread at any time.
pub fn snapshot() -> TraceSnapshot {
    let threads = all_rings()
        .iter()
        .map(|ring| {
            let mut spans = Vec::new();
            ring.collect_spans(&mut spans);
            let (app_ops, app_nanos) = ring.app();
            ThreadTrace {
                thread: ring.thread(),
                retired: ring.is_retired(),
                recorded: ring.recorded(),
                overwritten: ring.overwritten(),
                spans,
                phase_counts: ring.counts(),
                phase_nanos: ring.nanos(),
                phase_scaled_nanos: ring.scaled_nanos(),
                outer_scaled_nanos: ring.outer_scaled(),
                bucket_counts: ring.buckets(),
                app_ops,
                app_nanos,
            }
        })
        .collect();
    TraceSnapshot {
        threads,
        taken_ns: now_ns(),
    }
}

impl TraceSnapshot {
    /// Per-phase span counts summed over all threads.
    pub fn phase_counts(&self) -> [u64; PHASE_COUNT] {
        self.sum(|t| t.phase_counts)
    }

    /// Per-phase measured nanos summed over all threads.
    pub fn phase_nanos(&self) -> [u64; PHASE_COUNT] {
        self.sum(|t| t.phase_nanos)
    }

    /// Per-phase sampling-scaled nanos summed over all threads.
    pub fn phase_scaled_nanos(&self) -> [u64; PHASE_COUNT] {
        self.sum(|t| t.phase_scaled_nanos)
    }

    /// Per-phase duration-bucket counts summed over all threads.
    pub fn bucket_totals(&self) -> [[u64; SPAN_BUCKET_COUNT]; PHASE_COUNT] {
        let mut out = [[0u64; SPAN_BUCKET_COUNT]; PHASE_COUNT];
        for t in &self.threads {
            for (phase, buckets) in out.iter_mut().zip(t.bucket_counts.iter()) {
                for (total, count) in phase.iter_mut().zip(buckets.iter()) {
                    *total += count;
                }
            }
        }
        out
    }

    /// Total spans recorded (including ring-evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.threads.iter().map(|t| t.recorded).sum()
    }

    /// Total spans lost to ring wrap-around.
    pub fn total_overwritten(&self) -> u64 {
        self.threads.iter().map(|t| t.overwritten).sum()
    }

    /// The `n` most recent retained spans across all threads, sorted by
    /// start time — what the flight recorder freezes into an incident.
    pub fn last_spans(&self, n: usize) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = self
            .threads
            .iter()
            .flat_map(|t| t.spans.iter().copied())
            .collect();
        all.sort_by_key(|s| (s.start_ns, s.thread, s.depth));
        let skip = all.len().saturating_sub(n);
        all.split_off(skip)
    }

    /// The self-overhead account: tracer and framework time vs.
    /// application time.
    pub fn overhead(&self) -> OverheadReport {
        let costs = crate::span::tracer_costs();
        let app_ops: u64 = self.threads.iter().map(|t| t.app_ops).sum();
        let recorded = self.total_recorded();
        OverheadReport {
            framework_nanos: self.threads.iter().map(|t| t.outer_scaled_nanos).sum(),
            tracer_nanos: recorded
                .saturating_mul(costs.span_ns)
                .saturating_add(app_ops.saturating_mul(costs.check_ns)),
            app_nanos: self.threads.iter().map(|t| t.app_nanos).sum(),
            app_ops,
            phase_counts: self.phase_counts(),
            phase_scaled_nanos: self.phase_scaled_nanos(),
        }
    }

    fn sum(&self, f: impl Fn(&ThreadTrace) -> [u64; PHASE_COUNT]) -> [u64; PHASE_COUNT] {
        let mut out = [0u64; PHASE_COUNT];
        for t in &self.threads {
            let a = f(t);
            for (o, v) in out.iter_mut().zip(a) {
                *o += v;
            }
        }
        out
    }
}

/// The attribution of wall time between the tracer, the framework's
/// adaptation pipeline, and the application they monitor — the numbers
/// behind the paper's "negligible overhead" claim, measured instead of
/// asserted.
///
/// Two distinct overheads live here:
///
/// * [`ratio`](OverheadReport::ratio) — the **tracer's own** cost
///   ([`tracer_nanos`](OverheadReport::tracer_nanos)), from calibrated
///   unit costs × observed counts. This is what the `overhead_sweep`
///   bench gates below 5% in sampled mode and what
///   `cs_trace_overhead_ratio` exposes: turning the tracer on must stay
///   cheap.
/// * [`pipeline_ratio`](OverheadReport::pipeline_ratio) — the **whole
///   framework's** span-measured share (monitoring bookkeeping plus
///   analysis phases). A conservative upper bound: the measured spans
///   include clock granularity, and on collection-op-only
///   microbenchmarks the denominator contains little besides monitored
///   ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Estimated total framework nanos: sampling-scaled, depth-0 spans
    /// only (nested spans lie inside their parents and are not re-counted).
    pub framework_nanos: u64,
    /// Estimated nanos the tracer itself cost: recorded spans ×
    /// calibrated span cost plus credited ops × calibrated fast-path
    /// check cost (see [`tracer_costs`](crate::tracer_costs)).
    pub tracer_nanos: u64,
    /// Application nanos credited via [`add_app_time`](crate::add_app_time)
    /// (in-op time, scaled by callers) and
    /// [`credit_app_ops`](crate::credit_app_ops) (wall intervals).
    pub app_nanos: u64,
    /// Application ops credited.
    pub app_ops: u64,
    /// Per-phase span counts.
    pub phase_counts: [u64; PHASE_COUNT],
    /// Per-phase sampling-scaled nanos (overlapping for nested phases).
    pub phase_scaled_nanos: [u64; PHASE_COUNT],
}

impl OverheadReport {
    /// The tracer's self-overhead: `tracer / (tracer + app)`, in `[0, 1]`;
    /// `0.0` when nothing was accounted yet. The gated number — see the
    /// type docs for how it differs from [`pipeline_ratio`](Self::pipeline_ratio).
    pub fn ratio(&self) -> f64 {
        let total = self.tracer_nanos as f64 + self.app_nanos as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.tracer_nanos as f64 / total
        }
    }

    /// Framework share of the total accounted time:
    /// `framework / (framework + app)`, in `[0, 1]`; `0.0` when nothing
    /// was accounted yet.
    pub fn pipeline_ratio(&self) -> f64 {
        let total = self.framework_nanos as f64 + self.app_nanos as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.framework_nanos as f64 / total
        }
    }

    /// Average framework nanos charged per application op (0 when no ops
    /// were accounted).
    pub fn framework_nanos_per_op(&self) -> f64 {
        if self.app_ops == 0 {
            0.0
        } else {
            self.framework_nanos as f64 / self.app_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::tests::mode_lock;
    use crate::span::{add_app_time, set_mode, span, TraceMode};
    use crate::Phase;

    #[test]
    fn snapshot_aggregates_and_overhead_ratio() {
        let _guard = mode_lock();
        set_mode(TraceMode::Full);
        crate::reset();
        {
            let _d = span(Phase::Decision, 5);
            let _m = span(Phase::ModelEval, 5);
        }
        add_app_time(4, 1_000_000);
        set_mode(TraceMode::Off);

        let snap = snapshot();
        let counts = snap.phase_counts();
        assert_eq!(counts[Phase::Decision.index()], 1);
        assert_eq!(counts[Phase::ModelEval.index()], 1);
        assert!(snap.total_recorded() >= 2);

        let overhead = snap.overhead();
        assert_eq!(overhead.app_ops, 4);
        assert_eq!(overhead.app_nanos, 1_000_000);
        // Only the outer Decision span counts toward framework time.
        assert!(overhead.framework_nanos > 0);
        assert!(
            overhead.framework_nanos
                <= snap.phase_scaled_nanos()[Phase::Decision.index()]
        );
        // Two recorded spans and four checked ops at calibrated unit cost.
        assert!(overhead.tracer_nanos > 0);
        let ratio = overhead.ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "self ratio {ratio} out of range");
        let pipeline = overhead.pipeline_ratio();
        assert!(
            pipeline > 0.0 && pipeline < 1.0,
            "pipeline ratio {pipeline} out of range"
        );
        assert!(overhead.framework_nanos_per_op() > 0.0);
    }

    #[test]
    fn empty_overhead_is_zero() {
        let report = OverheadReport {
            framework_nanos: 0,
            tracer_nanos: 0,
            app_nanos: 0,
            app_ops: 0,
            phase_counts: [0; PHASE_COUNT],
            phase_scaled_nanos: [0; PHASE_COUNT],
        };
        assert_eq!(report.ratio(), 0.0);
        assert_eq!(report.pipeline_ratio(), 0.0);
        assert_eq!(report.framework_nanos_per_op(), 0.0);
    }

    #[test]
    fn last_spans_sorts_and_limits() {
        let _guard = mode_lock();
        set_mode(TraceMode::Full);
        crate::reset();
        for _ in 0..5 {
            let _s = span(Phase::Ingest, 1);
        }
        set_mode(TraceMode::Off);
        let snap = snapshot();
        let last = snap.last_spans(3);
        assert_eq!(last.len(), 3);
        assert!(last.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(snap.last_spans(10_000).len() >= 5);
    }
}
