//! Per-thread fixed-capacity span rings and phase aggregates.
//!
//! Each tracing thread owns exactly one [`ThreadRing`]; the owning thread
//! is the only writer, so every store is an uncontended relaxed atomic —
//! the atomics exist for the *readers* ([`snapshot`](crate::snapshot)), not
//! for synchronization between writers. The ring is allocated once, at
//! thread registration; the span path itself ([`ThreadRing::push`]) touches
//! only pre-allocated slots and never takes a lock — the invariant the
//! workspace self-lint's `no-alloc-in-span-path` rule pins down.
//!
//! ## Read consistency
//!
//! Readers walk the ring while the owner may still be writing. The `head`
//! release-store after each slot write gives readers a consistent prefix,
//! but a slot being overwritten *during* a snapshot can yield one torn
//! record (fields from two different spans). The rings feed diagnostics —
//! overhead accounting uses the separate monotonic aggregates, never the
//! slots — so a rare torn record in a flight-recorder dump is an accepted
//! trade for a lock-free hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::phase::{Phase, PHASE_COUNT};

/// Spans retained per thread. Power of two so the ring index is a mask.
pub const RING_CAPACITY: usize = 1024;

/// Upper bucket bounds (nanoseconds, inclusive) of the per-phase span
/// duration histograms. A final implicit `+Inf` bucket catches the rest;
/// see [`SPAN_BUCKET_COUNT`].
pub const SPAN_BUCKET_BOUNDS_NS: [u64; 10] = [
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
];

/// Number of duration buckets per phase, including the implicit `+Inf`.
pub const SPAN_BUCKET_COUNT: usize = SPAN_BUCKET_BOUNDS_NS.len() + 1;

/// Site ids are packed into 48 bits of the slot metadata word; ids above
/// this are truncated (they do not occur in practice — engines mint ids
/// sequentially from zero).
const SITE_MASK: u64 = (1 << 48) - 1;

/// One ring slot: `start` nanoseconds, duration nanoseconds, and a packed
/// metadata word (`site << 16 | depth << 8 | phase`).
#[derive(Debug)]
struct SlotCell {
    start: AtomicU64,
    dur: AtomicU64,
    meta: AtomicU64,
}

/// One completed span as read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Registration index of the thread that recorded the span.
    pub thread: u64,
    /// Allocation-site id the span worked on (0 for engine-global phases).
    pub site: u64,
    /// Pipeline phase.
    pub phase: Phase,
    /// Nesting depth at entry (0 = outermost).
    pub depth: u8,
    /// Monotonic start time, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End time of the span (start + duration).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// The per-thread recording unit: a fixed ring of recent spans plus
/// monotonic per-phase aggregates (counts, nanos, sampling-scaled nanos,
/// duration-bucket counts) and the application-time tally.
#[derive(Debug)]
pub struct ThreadRing {
    thread: u64,
    slots: Box<[SlotCell]>,
    /// Total spans ever pushed; `head % RING_CAPACITY` is the next slot.
    head: AtomicU64,
    phase_counts: [AtomicU64; PHASE_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    /// Measured nanos scaled by the span's sampling factor — the estimate
    /// of *total* framework time this phase cost, including unsampled ops.
    phase_scaled_nanos: [AtomicU64; PHASE_COUNT],
    /// Scaled nanos of depth-0 spans only. Nested spans lie inside their
    /// parent's wall time, so summing all phases double-counts; this is the
    /// double-count-free total the overhead ratio is built on.
    outer_scaled_nanos: AtomicU64,
    bucket_counts: [[AtomicU64; SPAN_BUCKET_COUNT]; PHASE_COUNT],
    app_ops: AtomicU64,
    app_nanos: AtomicU64,
    /// End of the last wall-credited interval (see [`ThreadRing::credit_wall`]);
    /// 0 means no interval is open.
    last_credit_ns: AtomicU64,
    retired: AtomicBool,
}

fn atomic_array<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

impl ThreadRing {
    /// Allocates an empty ring for the thread with registration index
    /// `thread`. Called once per thread, never from the span path.
    pub(crate) fn new(thread: u64) -> Self {
        let slots = (0..RING_CAPACITY)
            .map(|_| SlotCell {
                start: AtomicU64::new(0),
                dur: AtomicU64::new(0),
                meta: AtomicU64::new(0),
            })
            .collect();
        ThreadRing {
            thread,
            slots,
            head: AtomicU64::new(0),
            phase_counts: atomic_array(),
            phase_nanos: atomic_array(),
            phase_scaled_nanos: atomic_array(),
            outer_scaled_nanos: AtomicU64::new(0),
            bucket_counts: std::array::from_fn(|_| atomic_array()),
            app_ops: AtomicU64::new(0),
            app_nanos: AtomicU64::new(0),
            last_credit_ns: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    /// Registration index of the owning thread.
    pub fn thread(&self) -> u64 {
        self.thread
    }

    /// Records one completed span. Owner thread only; lock-free and
    /// allocation-free — pre-sized slots and plain atomic stores.
    #[inline]
    pub(crate) fn push(&self, site: u64, phase: Phase, depth: u8, start_ns: u64, dur_ns: u64, scale: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAPACITY - 1)];
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        let meta = ((site & SITE_MASK) << 16) | ((depth as u64) << 8) | phase.index() as u64;
        slot.meta.store(meta, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Release);

        let p = phase.index();
        let scaled = dur_ns.saturating_mul(scale);
        self.phase_counts[p].fetch_add(1, Ordering::Relaxed);
        self.phase_nanos[p].fetch_add(dur_ns, Ordering::Relaxed);
        self.phase_scaled_nanos[p].fetch_add(scaled, Ordering::Relaxed);
        if depth == 0 {
            self.outer_scaled_nanos.fetch_add(scaled, Ordering::Relaxed);
        }
        let mut b = SPAN_BUCKET_BOUNDS_NS.len();
        let mut i = 0;
        while i < SPAN_BUCKET_BOUNDS_NS.len() {
            if dur_ns <= SPAN_BUCKET_BOUNDS_NS[i] {
                b = i;
                break;
            }
            i += 1;
        }
        self.bucket_counts[p][b].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds application operation time — the denominator of the overhead
    /// ratio. Owner thread only; lock- and allocation-free.
    #[inline]
    pub(crate) fn add_app(&self, ops: u64, nanos: u64) {
        self.app_ops.fetch_add(ops, Ordering::Relaxed);
        self.app_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Opens the thread's wall-credit interval at `now` without crediting
    /// anything. Called at registration so the first [`credit_wall`]
    /// covers real elapsed time.
    ///
    /// [`credit_wall`]: ThreadRing::credit_wall
    pub(crate) fn prime_credit(&self, now: u64) {
        self.last_credit_ns.store(now, Ordering::Relaxed);
    }

    /// Credits the wall time elapsed since the previous credit on this
    /// thread as application time carrying `ops` operations, then starts
    /// the next interval at `now`. Per-*thread* intervals: two sites
    /// flushing back-to-back on one thread split the elapsed wall time
    /// between them instead of both claiming it. Owner thread only;
    /// lock- and allocation-free.
    #[inline]
    pub(crate) fn credit_wall(&self, ops: u64, now: u64) {
        let last = self.last_credit_ns.swap(now, Ordering::Relaxed);
        if last != 0 && now > last {
            self.app_nanos.fetch_add(now - last, Ordering::Relaxed);
        }
        self.app_ops.fetch_add(ops, Ordering::Relaxed);
    }

    /// Marks the owning thread as exited; its aggregates stay readable.
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether the owning thread has exited.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// Total spans ever recorded by this thread.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Spans evicted by ring wrap-around (recorded minus retained).
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(RING_CAPACITY as u64)
    }

    /// Copies the retained spans out, oldest first. Racy against the
    /// owner's concurrent writes (see the module docs); the result is for
    /// diagnostics, not accounting.
    pub(crate) fn collect_spans(&self, out: &mut Vec<SpanRecord>) {
        let head = self.head.load(Ordering::Acquire);
        let len = (head as usize).min(RING_CAPACITY);
        let first = head - len as u64;
        for i in 0..len as u64 {
            let slot = &self.slots[((first + i) as usize) & (RING_CAPACITY - 1)];
            let meta = slot.meta.load(Ordering::Relaxed);
            let Some(phase) = Phase::from_index((meta & 0xff) as usize) else {
                continue; // torn or unwritten slot
            };
            out.push(SpanRecord {
                thread: self.thread,
                site: meta >> 16,
                phase,
                depth: ((meta >> 8) & 0xff) as u8,
                start_ns: slot.start.load(Ordering::Relaxed),
                dur_ns: slot.dur.load(Ordering::Relaxed),
            });
        }
    }

    /// Monotonic per-phase span counts.
    pub(crate) fn counts(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|p| self.phase_counts[p].load(Ordering::Relaxed))
    }

    /// Monotonic per-phase measured nanos.
    pub(crate) fn nanos(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|p| self.phase_nanos[p].load(Ordering::Relaxed))
    }

    /// Monotonic per-phase sampling-scaled nanos.
    pub(crate) fn scaled_nanos(&self) -> [u64; PHASE_COUNT] {
        std::array::from_fn(|p| self.phase_scaled_nanos[p].load(Ordering::Relaxed))
    }

    /// Scaled nanos of depth-0 spans — the double-count-free framework
    /// time total.
    pub(crate) fn outer_scaled(&self) -> u64 {
        self.outer_scaled_nanos.load(Ordering::Relaxed)
    }

    /// Per-phase duration-bucket counts (last bucket is `+Inf`).
    pub(crate) fn buckets(&self) -> [[u64; SPAN_BUCKET_COUNT]; PHASE_COUNT] {
        std::array::from_fn(|p| {
            std::array::from_fn(|b| self.bucket_counts[p][b].load(Ordering::Relaxed))
        })
    }

    /// Application op/nanos tally.
    pub(crate) fn app(&self) -> (u64, u64) {
        (
            self.app_ops.load(Ordering::Relaxed),
            self.app_nanos.load(Ordering::Relaxed),
        )
    }

    /// Zeroes every slot and aggregate — a bench/test convenience, only
    /// sound while the owning thread is quiescent.
    pub(crate) fn reset(&self) {
        self.head.store(0, Ordering::Release);
        for slot in self.slots.iter() {
            slot.start.store(0, Ordering::Relaxed);
            slot.dur.store(0, Ordering::Relaxed);
            slot.meta.store(0, Ordering::Relaxed);
        }
        self.outer_scaled_nanos.store(0, Ordering::Relaxed);
        for p in 0..PHASE_COUNT {
            self.phase_counts[p].store(0, Ordering::Relaxed);
            self.phase_nanos[p].store(0, Ordering::Relaxed);
            self.phase_scaled_nanos[p].store(0, Ordering::Relaxed);
            for b in 0..SPAN_BUCKET_COUNT {
                self.bucket_counts[p][b].store(0, Ordering::Relaxed);
            }
        }
        self.app_ops.store(0, Ordering::Relaxed);
        self.app_nanos.store(0, Ordering::Relaxed);
        self.last_credit_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_collect_round_trips() {
        let ring = ThreadRing::new(3);
        ring.push(7, Phase::Decision, 0, 100, 50, 1);
        ring.push(7, Phase::ModelEval, 1, 110, 20, 1);
        let mut spans = Vec::new();
        ring.collect_spans(&mut spans);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Decision);
        assert_eq!(spans[0].site, 7);
        assert_eq!(spans[0].thread, 3);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].end_ns(), 150);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = ThreadRing::new(0);
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(1, Phase::OpRecord, 0, i, 1, 1);
        }
        let mut spans = Vec::new();
        ring.collect_spans(&mut spans);
        assert_eq!(spans.len(), RING_CAPACITY);
        assert_eq!(spans[0].start_ns, 10, "oldest retained span");
        assert_eq!(spans.last().unwrap().start_ns, RING_CAPACITY as u64 + 9);
        assert_eq!(ring.overwritten(), 10);
    }

    #[test]
    fn aggregates_accumulate_and_scale() {
        let ring = ThreadRing::new(0);
        ring.push(1, Phase::OpRecord, 0, 0, 100, 8);
        ring.push(1, Phase::OpRecord, 0, 200, 50, 8);
        ring.push(1, Phase::Flush, 1, 300, 1_000, 1);
        let counts = ring.counts();
        assert_eq!(counts[Phase::OpRecord.index()], 2);
        assert_eq!(counts[Phase::Flush.index()], 1);
        assert_eq!(ring.nanos()[Phase::OpRecord.index()], 150);
        assert_eq!(ring.scaled_nanos()[Phase::OpRecord.index()], 1_200);
        assert_eq!(ring.scaled_nanos()[Phase::Flush.index()], 1_000);
        // The depth-1 flush is nested inside another span's wall time:
        // only the two depth-0 op spans count toward the outer total.
        assert_eq!(ring.outer_scaled(), 1_200);
        ring.add_app(10, 5_000);
        assert_eq!(ring.app(), (10, 5_000));
    }

    #[test]
    fn buckets_classify_durations() {
        let ring = ThreadRing::new(0);
        ring.push(1, Phase::Ingest, 0, 0, 64, 1); // first bucket (<= 64)
        ring.push(1, Phase::Ingest, 0, 0, 65, 1); // second bucket
        ring.push(1, Phase::Ingest, 0, 0, u64::MAX / 2, 1); // +Inf
        let b = ring.buckets()[Phase::Ingest.index()];
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[SPAN_BUCKET_COUNT - 1], 1);
        assert_eq!(b.iter().sum::<u64>(), 3);
    }

    #[test]
    fn wall_credit_intervals_do_not_double_count() {
        let ring = ThreadRing::new(0);
        // Unprimed: the first credit only opens the interval.
        ring.credit_wall(10, 1_000);
        assert_eq!(ring.app(), (10, 0));
        // Two sites crediting back-to-back split the wall time.
        ring.credit_wall(5, 1_400);
        ring.credit_wall(5, 1_400);
        assert_eq!(ring.app(), (20, 400));
        // Primed ring: first credit covers time since priming.
        let primed = ThreadRing::new(1);
        primed.prime_credit(100);
        primed.credit_wall(1, 350);
        assert_eq!(primed.app(), (1, 250));
    }

    #[test]
    fn reset_clears_everything() {
        let ring = ThreadRing::new(0);
        ring.push(1, Phase::Verify, 0, 5, 5, 1);
        ring.add_app(1, 1);
        ring.reset();
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.counts().iter().sum::<u64>(), 0);
        assert_eq!(ring.app(), (0, 0));
        let mut spans = Vec::new();
        ring.collect_spans(&mut spans);
        assert!(spans.is_empty());
    }
}
