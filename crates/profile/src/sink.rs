//! Concurrent collection point for finished workload profiles.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::WorkloadProfile;

#[derive(Debug, Default)]
struct SinkInner {
    queue: VecDeque<WorkloadProfile>,
    /// `None` = unbounded (the historical behaviour).
    capacity: Option<usize>,
    /// Profiles discarded because the queue was full.
    dropped: u64,
    /// Profiles ever pushed (accepted), including ones later evicted.
    pushed: u64,
}

/// A cheaply clonable, thread-safe sink that monitored handles push their
/// [`WorkloadProfile`] into when they finish (the paper's feedback channel
/// from collection instances to their allocation context).
///
/// Handles may be moved across threads and dropped anywhere; the periodic
/// analyzer drains the sink from its own thread. A `parking_lot` mutex over
/// a queue is faster here than a lock-free queue would be: pushes are rare
/// (only monitored instances, only at end-of-life) and the critical section
/// is a few nanoseconds.
///
/// A sink built with [`ProfileSink::bounded`] caps the pending-profile
/// queue: when the analyzer stalls (or dies) while instances keep finishing,
/// the oldest profiles are dropped first and counted in
/// [`ProfileSink::dropped`], so monitoring degrades to a bounded-memory
/// sliding window instead of growing without limit.
///
/// # Examples
///
/// ```
/// use cs_profile::{OpRecorder, ProfileSink};
///
/// let sink = ProfileSink::new();
/// let clone = sink.clone();
/// std::thread::spawn(move || {
///     clone.push(OpRecorder::new().finish());
/// })
/// .join()
/// .unwrap();
/// assert_eq!(sink.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl ProfileSink {
    /// Creates an empty, unbounded sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink that retains at most `capacity` pending
    /// profiles, dropping the oldest on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "sink capacity must be nonzero");
        ProfileSink {
            inner: Arc::new(Mutex::new(SinkInner {
                queue: VecDeque::new(),
                capacity: Some(capacity),
                dropped: 0,
                pushed: 0,
            })),
        }
    }

    /// Pushes a finished profile, evicting the oldest pending profile if a
    /// capacity is configured and reached.
    ///
    /// Every finished profile in the process funnels through here — the
    /// single-owner handle path on drop and the concurrent runtime's epoch
    /// flushes alike — so the profile handoff itself is spanned as a
    /// [`Flush`](cs_trace::Phase::Flush). Application time is *not*
    /// credited here: the concurrent runtime credits wall intervals at its
    /// thread-local flush boundaries (`cs_trace::credit_app_ops`), and
    /// crediting the profile's sampled in-op nanos too would double-count
    /// the same work through a much smaller denominator.
    pub fn push(&self, profile: WorkloadProfile) {
        let _span = cs_trace::span(cs_trace::Phase::Flush, 0);
        let mut inner = self.inner.lock();
        if let Some(cap) = inner.capacity {
            while inner.queue.len() >= cap {
                inner.queue.pop_front();
                inner.dropped += 1;
            }
        }
        inner.queue.push_back(profile);
        inner.pushed += 1;
    }

    /// Number of profiles ever pushed into this sink, including profiles
    /// later evicted by the capacity bound. `pushed() - dropped()` is the
    /// number of profiles the analyzer actually got to see.
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Number of profiles currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if no profiles are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of profiles dropped to overflow since creation (always 0 for
    /// unbounded sinks).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The configured capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().capacity
    }

    /// Removes and returns all buffered profiles, oldest first.
    pub fn drain(&self) -> Vec<WorkloadProfile> {
        std::mem::take(&mut self.inner.lock().queue).into()
    }

    /// Copies the buffered profiles without removing them.
    ///
    /// The paper analyzes the whole set of metrics whenever the finished
    /// ratio is reached, while instances may still be reporting; `snapshot`
    /// supports that read-without-consume pattern.
    pub fn snapshot(&self) -> Vec<WorkloadProfile> {
        self.inner.lock().queue.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, OpRecorder};

    #[test]
    fn push_then_drain_round_trips() {
        let sink = ProfileSink::new();
        for i in 0..10 {
            let mut r = OpRecorder::new();
            r.observe_size(i);
            sink.push(r.finish());
        }
        assert_eq!(sink.len(), 10);
        let drained = sink.drain();
        assert_eq!(drained.len(), 10);
        assert!(sink.is_empty());
        assert_eq!(drained[9].max_size(), 9);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let sink = ProfileSink::new();
        sink.push(OpRecorder::new().finish());
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = ProfileSink::new();
        let clone = sink.clone();
        clone.push(OpRecorder::new().finish());
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn concurrent_pushes_are_all_recorded() {
        let sink = ProfileSink::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut r = OpRecorder::new();
                        r.record(OpKind::Contains);
                        s.push(r.finish());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 800);
    }

    #[test]
    fn unbounded_sink_never_drops() {
        let sink = ProfileSink::new();
        for _ in 0..5_000 {
            sink.push(OpRecorder::new().finish());
        }
        assert_eq!(sink.len(), 5_000);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.pushed(), 5_000);
        assert_eq!(sink.capacity(), None);
    }

    #[test]
    fn bounded_sink_drops_oldest_and_counts() {
        let sink = ProfileSink::bounded(3);
        for i in 0..7usize {
            let mut r = OpRecorder::new();
            r.observe_size(i);
            sink.push(r.finish());
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 4);
        assert_eq!(sink.pushed(), 7, "evicted profiles still count as pushed");
        assert_eq!(sink.capacity(), Some(3));
        // The newest three survive, oldest first.
        let kept: Vec<usize> = sink.drain().iter().map(|p| p.max_size()).collect();
        assert_eq!(kept, vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_is_rejected() {
        let _ = ProfileSink::bounded(0);
    }
}
