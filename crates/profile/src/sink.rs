//! Concurrent collection point for finished workload profiles.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::WorkloadProfile;

/// A cheaply clonable, thread-safe sink that monitored handles push their
/// [`WorkloadProfile`] into when they finish (the paper's feedback channel
/// from collection instances to their allocation context).
///
/// Handles may be moved across threads and dropped anywhere; the periodic
/// analyzer drains the sink from its own thread. A `parking_lot` mutex over
/// a `Vec` is faster here than a lock-free queue would be: pushes are rare
/// (only monitored instances, only at end-of-life) and the critical section
/// is a few nanoseconds.
///
/// # Examples
///
/// ```
/// use cs_profile::{OpRecorder, ProfileSink};
///
/// let sink = ProfileSink::new();
/// let clone = sink.clone();
/// std::thread::spawn(move || {
///     clone.push(OpRecorder::new().finish());
/// })
/// .join()
/// .unwrap();
/// assert_eq!(sink.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileSink {
    inner: Arc<Mutex<Vec<WorkloadProfile>>>,
}

impl ProfileSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a finished profile.
    pub fn push(&self, profile: WorkloadProfile) {
        self.inner.lock().push(profile);
    }

    /// Number of profiles currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Returns `true` if no profiles are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered profiles.
    pub fn drain(&self) -> Vec<WorkloadProfile> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Copies the buffered profiles without removing them.
    ///
    /// The paper analyzes the whole set of metrics whenever the finished
    /// ratio is reached, while instances may still be reporting; `snapshot`
    /// supports that read-without-consume pattern.
    pub fn snapshot(&self) -> Vec<WorkloadProfile> {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, OpRecorder};

    #[test]
    fn push_then_drain_round_trips() {
        let sink = ProfileSink::new();
        for i in 0..10 {
            let mut r = OpRecorder::new();
            r.observe_size(i);
            sink.push(r.finish());
        }
        assert_eq!(sink.len(), 10);
        let drained = sink.drain();
        assert_eq!(drained.len(), 10);
        assert!(sink.is_empty());
        assert_eq!(drained[9].max_size(), 9);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let sink = ProfileSink::new();
        sink.push(OpRecorder::new().finish());
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = ProfileSink::new();
        let clone = sink.clone();
        clone.push(OpRecorder::new().finish());
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn concurrent_pushes_are_all_recorded() {
        let sink = ProfileSink::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut r = OpRecorder::new();
                        r.record(OpKind::Contains);
                        s.push(r.finish());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 800);
    }
}
