//! Monitored-window bookkeeping: window size and finished ratio (paper §4.3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Configuration of a context's monitoring round.
///
/// Defaults are the paper's evaluation settings (§5): window size 100,
/// finished ratio 0.6, monitoring rate 50 ms.
///
/// # Examples
///
/// ```
/// use cs_profile::WindowConfig;
///
/// let cfg = WindowConfig::default();
/// assert_eq!(cfg.window_size, 100);
/// assert!((cfg.finished_ratio - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Number of instances monitored per round. Only this many of the
    /// instances created by a context are wrapped with a recorder, bounding
    /// the monitoring overhead when a site allocates millions of instances.
    pub window_size: usize,
    /// Fraction of the monitored instances that must have finished their
    /// life-cycle before the round may be analyzed.
    pub finished_ratio: f64,
    /// Period of the background analyzer.
    pub monitoring_rate: Duration,
    /// Minimum number of monitored instances before a round may be analyzed,
    /// guarding against decisions from one or two early samples when a site
    /// allocates slowly.
    pub min_samples: usize,
    /// Exponential decay applied to the accumulated workload history at
    /// every analysis round (1.0 = never forget). The default of 0.5 makes
    /// recent windows dominate, which is what lets contexts re-converge on
    /// phase changes (paper Fig. 6).
    pub history_decay: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_size: 100,
            finished_ratio: 0.6,
            monitoring_rate: Duration::from_millis(50),
            min_samples: 10,
            history_decay: 0.5,
        }
    }
}

impl WindowConfig {
    /// Number of finished profiles required before analysis, given how many
    /// instances were actually monitored this round.
    pub fn required_finished(&self, started: usize) -> usize {
        ((self.finished_ratio * started as f64).ceil() as usize).max(1)
    }

    /// Whether a round with `started` monitored instances of which
    /// `finished` have completed is ready for analysis.
    pub fn round_ready(&self, started: usize, finished: usize) -> bool {
        started >= self.min_samples.min(self.window_size).max(1)
            && finished >= self.required_finished(started)
    }
}

/// Lock-free per-round monitoring state shared between an allocation context
/// and the handles it creates.
///
/// # Examples
///
/// ```
/// use cs_profile::WindowState;
///
/// let w = WindowState::new();
/// assert!(w.try_claim_slot(2)); // window of 2: first instance monitored
/// assert!(w.try_claim_slot(2));
/// assert!(!w.try_claim_slot(2)); // window exhausted
/// assert_eq!(w.started(), 2);
/// w.reset();
/// assert_eq!(w.started(), 0);
/// ```
#[derive(Debug, Default)]
pub struct WindowState {
    started: AtomicUsize,
}

impl WindowState {
    /// Creates a fresh round with no monitored instances.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to claim a monitoring slot in a window of `window_size`.
    /// Returns `true` if the new instance should be monitored.
    pub fn try_claim_slot(&self, window_size: usize) -> bool {
        self.started
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                if n < window_size {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Number of instances monitored in the current round.
    pub fn started(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }

    /// Starts a new monitoring round.
    pub fn reset(&self) {
        self.started.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_5() {
        let cfg = WindowConfig::default();
        assert_eq!(cfg.window_size, 100);
        assert!((cfg.finished_ratio - 0.6).abs() < 1e-12);
        assert_eq!(cfg.monitoring_rate, Duration::from_millis(50));
    }

    #[test]
    fn required_finished_rounds_up() {
        let cfg = WindowConfig::default();
        assert_eq!(cfg.required_finished(100), 60);
        assert_eq!(cfg.required_finished(99), 60); // ceil(59.4)
        assert_eq!(cfg.required_finished(1), 1);
        assert_eq!(cfg.required_finished(0), 1);
    }

    #[test]
    fn round_ready_semantics() {
        let cfg = WindowConfig {
            min_samples: 10,
            ..WindowConfig::default()
        };
        assert!(!cfg.round_ready(5, 5), "below min samples");
        assert!(!cfg.round_ready(100, 59), "below finished ratio");
        assert!(cfg.round_ready(100, 60));
        assert!(cfg.round_ready(10, 6));
    }

    #[test]
    fn round_ready_with_tiny_window() {
        let cfg = WindowConfig {
            window_size: 2,
            min_samples: 10,
            ..WindowConfig::default()
        };
        // min_samples is capped at the window size.
        assert!(cfg.round_ready(2, 2));
    }

    #[test]
    fn claim_slots_up_to_window() {
        let w = WindowState::new();
        let claimed = (0..10).filter(|_| w.try_claim_slot(7)).count();
        assert_eq!(claimed, 7);
        assert_eq!(w.started(), 7);
    }

    #[test]
    fn concurrent_claims_never_exceed_window() {
        let w = std::sync::Arc::new(WindowState::new());
        let total: usize = (0..8)
            .map(|_| {
                let w = w.clone();
                std::thread::spawn(move || (0..100).filter(|_| w.try_claim_slot(50)).count())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn reset_opens_a_new_round() {
        let w = WindowState::new();
        assert!(w.try_claim_slot(1));
        assert!(!w.try_claim_slot(1));
        w.reset();
        assert!(w.try_claim_slot(1));
    }
}
