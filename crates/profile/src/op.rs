//! Critical operations and their counters.

use std::fmt;

/// The paper's *critical operations* (§4.1.2): operations with at least
/// linear asymptotic cost in some variant, which are therefore the only ones
/// the performance models need to distinguish variants.
///
/// # Examples
///
/// ```
/// use cs_profile::OpKind;
///
/// assert_eq!(OpKind::ALL.len(), 4);
/// assert_eq!(OpKind::Middle.to_string(), "middle");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Adding elements to the collection (append / insert / put).
    Populate,
    /// Searching for an element (`contains`, `get(key)`).
    Contains,
    /// Traversing the whole collection.
    Iterate,
    /// Adding/removing an element in the middle (linear on array and linked
    /// implementations).
    Middle,
}

impl OpKind {
    /// All critical operations, in a fixed order usable for indexing.
    pub const ALL: [OpKind; 4] = [
        OpKind::Populate,
        OpKind::Contains,
        OpKind::Iterate,
        OpKind::Middle,
    ];

    /// Stable index of this operation in [`OpKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpKind::Populate => 0,
            OpKind::Contains => 1,
            OpKind::Iterate => 2,
            OpKind::Middle => 3,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Populate => "populate",
            OpKind::Contains => "contains",
            OpKind::Iterate => "iterate",
            OpKind::Middle => "middle",
        };
        f.write_str(s)
    }
}

/// Per-operation execution counts (`N_op` in the paper's total-cost formula).
///
/// # Examples
///
/// ```
/// use cs_profile::{OpCounters, OpKind};
///
/// let mut c = OpCounters::new();
/// c.add(OpKind::Contains, 10);
/// c.increment(OpKind::Contains);
/// assert_eq!(c.count(OpKind::Contains), 11);
/// assert_eq!(c.total(), 11);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    counts: [u64; 4],
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter for `op` by one.
    #[inline]
    pub fn increment(&mut self, op: OpKind) {
        self.counts[op.index()] += 1;
    }

    /// Adds `n` to the counter for `op`.
    #[inline]
    pub fn add(&mut self, op: OpKind, n: u64) {
        self.counts[op.index()] += n;
    }

    /// The count for `op`.
    #[inline]
    pub fn count(&self, op: OpKind) -> u64 {
        self.counts[op.index()]
    }

    /// Total count over all operations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns counters scaled by `factor` (used for history decay).
    pub fn scaled(&self, factor: f64) -> OpCounters {
        let mut out = OpCounters::new();
        for (i, &n) in self.counts.iter().enumerate() {
            out.counts[i] = (n as f64 * factor) as u64;
        }
        out
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates over `(op, count)` pairs with nonzero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (OpKind, u64)> + '_ {
        OpKind::ALL
            .iter()
            .map(move |&op| (op, self.count(op)))
            .filter(|&(_, n)| n > 0)
    }
}

/// Per-instance recorder carried by a monitored collection handle.
///
/// Single-owner by design: a monitored handle is not shared, so plain fields
/// beat atomics — this is where the framework's "very low overhead" claim is
/// won or lost (paper Fig. 7).
///
/// # Examples
///
/// ```
/// use cs_profile::{OpKind, OpRecorder};
///
/// let mut rec = OpRecorder::new();
/// rec.record(OpKind::Populate);
/// rec.observe_size(3);
/// let profile = rec.finish();
/// assert_eq!(profile.max_size(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpRecorder {
    counters: OpCounters,
    max_size: usize,
    elapsed_nanos: u64,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl OpRecorder {
    /// Creates a recorder with zeroed state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `op`.
    #[inline]
    pub fn record(&mut self, op: OpKind) {
        self.counters.increment(op);
    }

    /// Updates the maximum observed collection size.
    #[inline]
    pub fn observe_size(&mut self, size: usize) {
        if size > self.max_size {
            self.max_size = size;
        }
    }

    /// Adds wall time spent inside critical operations. The selection
    /// guardrails use the accumulated nanos to verify that a switch
    /// realized the improvement the cost model predicted.
    #[inline]
    pub fn add_nanos(&mut self, nanos: u64) {
        self.elapsed_nanos = self.elapsed_nanos.saturating_add(nanos);
    }

    /// Current counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Largest size observed so far.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Wall time accumulated via [`OpRecorder::add_nanos`].
    pub fn elapsed_nanos(&self) -> u64 {
        self.elapsed_nanos
    }

    /// Adds heap churn attributed to critical operations: allocation events
    /// and requested bytes, measured per-site by `cs-heap` guards the same
    /// way sampled wall time is measured for [`add_nanos`](OpRecorder::add_nanos).
    #[inline]
    pub fn add_alloc(&mut self, count: u64, bytes: u64) {
        self.alloc_count = self.alloc_count.saturating_add(count);
        self.alloc_bytes = self.alloc_bytes.saturating_add(bytes);
    }

    /// Allocation events accumulated via [`OpRecorder::add_alloc`].
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Allocation bytes accumulated via [`OpRecorder::add_alloc`].
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Consumes the recorder into an immutable [`WorkloadProfile`](crate::WorkloadProfile).
    pub fn finish(self) -> crate::WorkloadProfile {
        crate::WorkloadProfile::with_nanos(self.counters, self.max_size, self.elapsed_nanos)
            .with_alloc(self.alloc_count, self.alloc_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_stable_and_distinct() {
        let mut seen = [false; 4];
        for op in OpKind::ALL {
            assert!(!seen[op.index()]);
            seen[op.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = OpCounters::new();
        for _ in 0..5 {
            c.increment(OpKind::Iterate);
        }
        c.add(OpKind::Middle, 3);
        assert_eq!(c.count(OpKind::Iterate), 5);
        assert_eq!(c.count(OpKind::Middle), 3);
        assert_eq!(c.count(OpKind::Populate), 0);
        assert_eq!(c.total(), 8);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = OpCounters::new();
        a.add(OpKind::Populate, 1);
        a.add(OpKind::Contains, 2);
        let mut b = OpCounters::new();
        b.add(OpKind::Contains, 5);
        a.merge(&b);
        assert_eq!(a.count(OpKind::Contains), 7);
        assert_eq!(a.count(OpKind::Populate), 1);
    }

    #[test]
    fn iter_nonzero_skips_zeroes() {
        let mut c = OpCounters::new();
        c.add(OpKind::Middle, 2);
        let pairs: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(pairs, vec![(OpKind::Middle, 2)]);
    }

    #[test]
    fn recorder_tracks_running_max() {
        let mut r = OpRecorder::new();
        r.observe_size(5);
        r.observe_size(3);
        r.observe_size(9);
        r.observe_size(7);
        assert_eq!(r.max_size(), 9);
    }

    #[test]
    fn finish_carries_state_into_profile() {
        let mut r = OpRecorder::new();
        r.record(OpKind::Contains);
        r.record(OpKind::Contains);
        r.observe_size(4);
        let p = r.finish();
        assert_eq!(p.count(OpKind::Contains), 2);
        assert_eq!(p.max_size(), 4);
    }

    #[test]
    fn alloc_accumulates_into_profile() {
        let mut r = OpRecorder::new();
        r.record(OpKind::Populate);
        r.add_alloc(3, 96);
        r.add_alloc(1, 32);
        assert_eq!(r.alloc_count(), 4);
        assert_eq!(r.alloc_bytes(), 128);
        let p = r.finish();
        assert_eq!(p.alloc_count(), 4);
        assert_eq!(p.alloc_bytes(), 128);
    }

    #[test]
    fn nanos_accumulate_and_saturate() {
        let mut r = OpRecorder::new();
        r.add_nanos(40);
        r.add_nanos(2);
        assert_eq!(r.elapsed_nanos(), 42);
        r.add_nanos(u64::MAX);
        assert_eq!(r.elapsed_nanos(), u64::MAX);
        assert_eq!(r.finish().elapsed_nanos(), u64::MAX);
    }
}
