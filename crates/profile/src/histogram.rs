//! Compact aggregation of workload profiles, bucketed by maximum size.
//!
//! The paper reports an analysis cost of under 285 ns per pass (Fig. 7) —
//! which rules out re-walking every monitored profile at every analysis.
//! `ProfileHistogram` folds profiles into power-of-two size buckets: the
//! total-cost formula `TC_D(V) = Σ tc_W(V)` only consumes each profile's
//! operation counts and maximum size, so profiles in the same size bucket
//! can be summed, with the bucket's largest observed size standing in as the
//! evaluation point. The paper already evaluates costs at the *maximum*
//! size ("the value of tc(V) is an overestimate", §3.1.1); bucketing by
//! max-size is the same conservative rounding, one step coarser.

use crate::op::{OpCounters, OpKind};
use crate::profile::WorkloadProfile;

/// Number of power-of-two buckets (covers sizes up to 2⁶³).
const BUCKETS: usize = 64;

/// Aggregated workload of all profiles falling into one size bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketAgg {
    /// Summed operation counts over the bucket's instances.
    pub counters: OpCounters,
    /// Number of instances folded into this bucket.
    pub instances: u64,
    /// Smallest max-size observed in this bucket.
    pub min_size: usize,
    /// Largest max-size observed in this bucket (the evaluation point).
    pub max_size: usize,
}

/// A fixed-size aggregation of workload profiles (paper §3.1.1 `W` data,
/// collapsed for O(1)-per-analysis cost).
///
/// # Examples
///
/// ```
/// use cs_profile::{OpCounters, OpKind, ProfileHistogram, WorkloadProfile};
///
/// let mut h = ProfileHistogram::new();
/// let mut ops = OpCounters::new();
/// ops.add(OpKind::Contains, 5);
/// h.add(&WorkloadProfile::new(ops, 10));
/// h.add(&WorkloadProfile::new(OpCounters::new(), 1000));
/// assert_eq!(h.instances(), 2);
/// assert_eq!(h.count(OpKind::Contains), 5);
/// assert_eq!(h.max_size(), 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileHistogram {
    buckets: Vec<Option<BucketAgg>>,
    instances: u64,
    totals: OpCounters,
    total_nanos: u64,
    contended: u64,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl ProfileHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ProfileHistogram {
            buckets: vec![None; BUCKETS],
            instances: 0,
            totals: OpCounters::new(),
            total_nanos: 0,
            contended: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    /// Builds a histogram from a batch of profiles.
    pub fn from_profiles<'a>(profiles: impl IntoIterator<Item = &'a WorkloadProfile>) -> Self {
        let mut h = ProfileHistogram::new();
        for p in profiles {
            h.add(p);
        }
        h
    }

    fn bucket_index(size: usize) -> usize {
        // Sizes 0 and 1 share bucket 0; otherwise ⌈log2(size)⌉.
        (usize::BITS - size.saturating_sub(1).leading_zeros()) as usize
    }

    /// Folds one finished profile into the histogram.
    pub fn add(&mut self, profile: &WorkloadProfile) {
        let idx = Self::bucket_index(profile.max_size()).min(BUCKETS - 1);
        let slot = &mut self.buckets[idx];
        match slot {
            Some(b) => {
                b.counters.merge(profile.counters());
                b.instances += 1;
                b.min_size = b.min_size.min(profile.max_size());
                b.max_size = b.max_size.max(profile.max_size());
            }
            None => {
                *slot = Some(BucketAgg {
                    counters: *profile.counters(),
                    instances: 1,
                    min_size: profile.max_size(),
                    max_size: profile.max_size(),
                });
            }
        }
        self.instances += 1;
        self.totals.merge(profile.counters());
        self.total_nanos = self.total_nanos.saturating_add(profile.elapsed_nanos());
        self.contended = self.contended.saturating_add(profile.contended());
        self.alloc_count = self.alloc_count.saturating_add(profile.alloc_count());
        self.alloc_bytes = self.alloc_bytes.saturating_add(profile.alloc_bytes());
    }

    /// Number of instances aggregated.
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Returns `true` if no profiles were added.
    pub fn is_empty(&self) -> bool {
        self.instances == 0
    }

    /// Total count of `op` over all aggregated instances.
    pub fn count(&self, op: OpKind) -> u64 {
        self.totals.count(op)
    }

    /// Total critical operations over all aggregated instances.
    pub fn total_ops(&self) -> u64 {
        self.totals.total()
    }

    /// Total measured wall time (nanoseconds) over all aggregated instances;
    /// 0 when the profiles carried no timing.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Total contended operations over all aggregated instances.
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Fraction of all aggregated operations that observed contention,
    /// clamped to `[0, 1]`; `0.0` for an empty histogram. This is the `r`
    /// evaluated by the contention term of the cost model.
    pub fn contention_ratio(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.contended.min(total) as f64 / total as f64
        }
    }

    /// Total allocation events attributed over all aggregated instances.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Total allocation bytes attributed over all aggregated instances.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Mean attributed allocation bytes per aggregated operation; `0.0` for
    /// an empty histogram. This is the `a` evaluated by the alloc-rate and
    /// energy terms of the cost model.
    pub fn alloc_bytes_per_op(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.alloc_bytes as f64 / total as f64
        }
    }

    /// Largest max-size observed, or 0 if empty.
    pub fn max_size(&self) -> usize {
        self.occupied().map(|b| b.max_size).max().unwrap_or(0)
    }

    /// Smallest max-size observed, or 0 if empty.
    pub fn min_size(&self) -> usize {
        self.occupied().map(|b| b.min_size).min().unwrap_or(0)
    }

    /// Iterates over the occupied buckets.
    pub fn occupied(&self) -> impl Iterator<Item = &BucketAgg> {
        self.buckets.iter().filter_map(|b| b.as_ref())
    }

    /// Number of occupied buckets (the per-analysis work factor).
    pub fn occupied_len(&self) -> usize {
        self.occupied().count()
    }

    /// Exponentially decays all aggregated counts by `factor` (0..=1).
    ///
    /// Called by the analyzer at the start of each round so that recent
    /// monitoring windows dominate the selection — this is what lets an
    /// allocation context re-converge when the program enters a new phase
    /// (the paper's multi-phase scenario, Fig. 6). Bucket size bounds are
    /// kept, so the adaptive-eligibility gate stays stable.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not within `0.0..=1.0`.
    pub fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must be in 0..=1, got {factor}"
        );
        let scale = |n: u64| (n as f64 * factor) as u64;
        for bucket in self.buckets.iter_mut().flatten() {
            bucket.instances = scale(bucket.instances);
            bucket.counters = bucket.counters.scaled(factor);
        }
        self.instances = scale(self.instances);
        self.totals = self.totals.scaled(factor);
        self.total_nanos = scale(self.total_nanos);
        self.contended = scale(self.contended);
        self.alloc_count = scale(self.alloc_count);
        self.alloc_bytes = scale(self.alloc_bytes);
    }

    /// Resets the histogram.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = None;
        }
        self.instances = 0;
        self.totals = OpCounters::new();
        self.total_nanos = 0;
        self.contended = 0;
        self.alloc_count = 0;
        self.alloc_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(contains: u64, size: usize) -> WorkloadProfile {
        let mut c = OpCounters::new();
        c.add(OpKind::Contains, contains);
        WorkloadProfile::new(c, size)
    }

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(ProfileHistogram::bucket_index(0), 0);
        assert_eq!(ProfileHistogram::bucket_index(1), 0);
        assert_eq!(ProfileHistogram::bucket_index(2), 1);
        assert_eq!(ProfileHistogram::bucket_index(3), 2);
        assert_eq!(ProfileHistogram::bucket_index(4), 2);
        assert_eq!(ProfileHistogram::bucket_index(5), 3);
        assert_eq!(ProfileHistogram::bucket_index(1024), 10);
    }

    #[test]
    fn same_bucket_profiles_are_merged() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(3, 100));
        h.add(&profile(4, 120));
        assert_eq!(h.occupied_len(), 1);
        let b = h.occupied().next().unwrap();
        assert_eq!(b.instances, 2);
        assert_eq!(b.counters.count(OpKind::Contains), 7);
        assert_eq!(b.min_size, 100);
        assert_eq!(b.max_size, 120);
    }

    #[test]
    fn different_magnitudes_get_different_buckets() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(1, 10));
        h.add(&profile(1, 1000));
        assert_eq!(h.occupied_len(), 2);
        assert_eq!(h.min_size(), 10);
        assert_eq!(h.max_size(), 1000);
    }

    #[test]
    fn totals_track_all_additions() {
        let mut h = ProfileHistogram::new();
        for i in 0..100 {
            h.add(&profile(2, i));
        }
        assert_eq!(h.instances(), 100);
        assert_eq!(h.count(OpKind::Contains), 200);
        assert_eq!(h.total_ops(), 200);
    }

    #[test]
    fn bucket_count_is_bounded_regardless_of_volume() {
        let mut h = ProfileHistogram::new();
        for i in 0..100_000usize {
            h.add(&profile(1, i % 5000));
        }
        assert!(h.occupied_len() <= 14, "got {}", h.occupied_len());
        assert_eq!(h.instances(), 100_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(1, 10));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.occupied_len(), 0);
        assert_eq!(h.max_size(), 0);
    }

    #[test]
    fn from_profiles_builds_in_one_call() {
        let ps = vec![profile(1, 5), profile(2, 6), profile(3, 600)];
        let h = ProfileHistogram::from_profiles(&ps);
        assert_eq!(h.instances(), 3);
        assert_eq!(h.count(OpKind::Contains), 6);
    }

    #[test]
    fn decay_halves_counts_but_keeps_size_bounds() {
        let mut h = ProfileHistogram::new();
        for _ in 0..10 {
            h.add(&profile(4, 30));
        }
        h.add(&profile(4, 900));
        h.decay(0.5);
        assert_eq!(h.instances(), 5);
        assert_eq!(h.count(OpKind::Contains), 22);
        // The eligibility gate depends on size bounds, which must survive.
        assert_eq!(h.min_size(), 30);
        assert_eq!(h.max_size(), 900);
    }

    #[test]
    fn decay_one_is_identity() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(7, 42));
        h.decay(1.0);
        assert_eq!(h.instances(), 1);
        assert_eq!(h.count(OpKind::Contains), 7);
    }

    #[test]
    fn repeated_decay_reaches_zero() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(100, 10));
        for _ in 0..20 {
            h.decay(0.5);
        }
        assert_eq!(h.total_ops(), 0);
        assert_eq!(h.instances(), 0);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_rejects_out_of_range_factor() {
        ProfileHistogram::new().decay(1.5);
    }

    #[test]
    fn total_nanos_accumulates_decays_and_clears() {
        let mut h = ProfileHistogram::new();
        let mut c = OpCounters::new();
        c.add(OpKind::Contains, 1);
        h.add(&WorkloadProfile::with_nanos(c, 10, 600));
        h.add(&WorkloadProfile::with_nanos(c, 10, 400));
        assert_eq!(h.total_nanos(), 1000);
        h.decay(0.5);
        assert_eq!(h.total_nanos(), 500);
        h.clear();
        assert_eq!(h.total_nanos(), 0);
    }

    #[test]
    fn contended_accumulates_decays_and_ratios() {
        let mut h = ProfileHistogram::new();
        let mut c = OpCounters::new();
        c.add(OpKind::Populate, 10);
        h.add(&WorkloadProfile::new(c, 10).with_contended(4));
        h.add(&WorkloadProfile::new(c, 10).with_contended(2));
        assert_eq!(h.contended(), 6);
        assert_eq!(h.contention_ratio(), 6.0 / 20.0);
        h.decay(0.5);
        assert_eq!(h.contended(), 3);
        h.clear();
        assert_eq!(h.contended(), 0);
        assert_eq!(h.contention_ratio(), 0.0);
    }

    #[test]
    fn alloc_accumulates_decays_and_rates() {
        let mut h = ProfileHistogram::new();
        let mut c = OpCounters::new();
        c.add(OpKind::Populate, 10);
        h.add(&WorkloadProfile::new(c, 10).with_alloc(4, 240));
        h.add(&WorkloadProfile::new(c, 10).with_alloc(6, 160));
        assert_eq!(h.alloc_count(), 10);
        assert_eq!(h.alloc_bytes(), 400);
        assert_eq!(h.alloc_bytes_per_op(), 400.0 / 20.0);
        h.decay(0.5);
        assert_eq!(h.alloc_count(), 5);
        assert_eq!(h.alloc_bytes(), 200);
        h.clear();
        assert_eq!(h.alloc_bytes(), 0);
        assert_eq!(h.alloc_bytes_per_op(), 0.0);
    }

    #[test]
    fn huge_sizes_fold_into_last_bucket() {
        let mut h = ProfileHistogram::new();
        h.add(&profile(1, usize::MAX));
        assert_eq!(h.instances(), 1);
        assert_eq!(h.max_size(), usize::MAX);
    }
}
