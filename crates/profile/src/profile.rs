//! The workload profile of a finished collection instance.

use crate::op::{OpCounters, OpKind};

/// The workload observed over one monitored collection instance's lifetime:
/// per-operation counts `N_op` plus the maximum size `s` the instance reached
/// (the `W` of the paper's total-cost formula, §3.1.1).
///
/// # Examples
///
/// ```
/// use cs_profile::{OpCounters, OpKind, WorkloadProfile};
///
/// let mut counters = OpCounters::new();
/// counters.add(OpKind::Populate, 100);
/// counters.add(OpKind::Contains, 1000);
/// let profile = WorkloadProfile::new(counters, 100);
/// assert!(profile.is_lookup_heavy());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadProfile {
    counters: OpCounters,
    max_size: usize,
    elapsed_nanos: u64,
    contended: u64,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl WorkloadProfile {
    /// Builds a profile from operation counters and a maximum size.
    pub fn new(counters: OpCounters, max_size: usize) -> Self {
        WorkloadProfile {
            counters,
            max_size,
            elapsed_nanos: 0,
            contended: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    /// Builds a profile that also carries measured wall time spent in
    /// critical operations (what monitored handles record).
    pub fn with_nanos(counters: OpCounters, max_size: usize, elapsed_nanos: u64) -> Self {
        WorkloadProfile {
            counters,
            max_size,
            elapsed_nanos,
            contended: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        }
    }

    /// Sets the number of operations that observed contention (lock wait
    /// on the striped tier, CAS retry / migration help on the lock-free
    /// tier) and returns `self` — builder style, so existing call sites
    /// keep their two-/three-argument constructors.
    pub fn with_contended(mut self, contended: u64) -> Self {
        self.contended = contended;
        self
    }

    /// Sets the heap churn attributed to this profile's operations —
    /// allocation events and requested bytes, measured per-site by
    /// `cs-heap` attribution guards — and returns `self`, builder style
    /// like [`with_contended`](WorkloadProfile::with_contended).
    pub fn with_alloc(mut self, alloc_count: u64, alloc_bytes: u64) -> Self {
        self.alloc_count = alloc_count;
        self.alloc_bytes = alloc_bytes;
        self
    }

    /// Allocation events attributed to this profile's operations.
    #[inline]
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Allocation bytes attributed to this profile's operations (requested
    /// sizes — the churn measure, not live footprint).
    #[inline]
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Mean allocation bytes per operation; `0.0` when the profile is
    /// empty. The per-site gauge the alloc-rate dimension selects on.
    pub fn alloc_bytes_per_op(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.alloc_bytes as f64 / total as f64
        }
    }

    /// Operations that observed contention. Always ≤ [`total_ops`]
    /// (each op reports the flag at most once).
    ///
    /// [`total_ops`]: WorkloadProfile::total_ops
    #[inline]
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Fraction of operations that observed contention, in `[0, 1]`;
    /// `0.0` when the profile is empty.
    pub fn contention_ratio(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            (self.contended.min(total)) as f64 / total as f64
        }
    }

    /// Measured wall time (nanoseconds) spent in critical operations over
    /// the instance's lifetime; 0 when timing was not recorded.
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        self.elapsed_nanos
    }

    /// The count for `op` over the instance's lifetime.
    #[inline]
    pub fn count(&self, op: OpKind) -> u64 {
        self.counters.count(op)
    }

    /// The full counter set.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Maximum size the instance reached.
    #[inline]
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Total number of critical operations executed.
    pub fn total_ops(&self) -> u64 {
        self.counters.total()
    }

    /// `true` when lookups dominate mutations — the situation where
    /// hash-indexed variants pay off.
    pub fn is_lookup_heavy(&self) -> bool {
        self.count(OpKind::Contains) > self.total_ops() / 2
    }

    /// Merges another profile into this one, keeping the larger max size.
    /// Used when summing workload over all monitored instances of a context.
    pub fn merge(&mut self, other: &WorkloadProfile) {
        self.counters.merge(&other.counters);
        self.max_size = self.max_size.max(other.max_size);
        self.elapsed_nanos = self.elapsed_nanos.saturating_add(other.elapsed_nanos);
        self.contended = self.contended.saturating_add(other.contended);
        self.alloc_count = self.alloc_count.saturating_add(other.alloc_count);
        self.alloc_bytes = self.alloc_bytes.saturating_add(other.alloc_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pop: u64, con: u64, max: usize) -> WorkloadProfile {
        let mut c = OpCounters::new();
        c.add(OpKind::Populate, pop);
        c.add(OpKind::Contains, con);
        WorkloadProfile::new(c, max)
    }

    #[test]
    fn lookup_heavy_threshold() {
        assert!(profile(10, 11, 5).is_lookup_heavy());
        assert!(!profile(10, 10, 5).is_lookup_heavy());
        assert!(!profile(100, 5, 5).is_lookup_heavy());
    }

    #[test]
    fn merge_sums_counts_and_maxes_size() {
        let mut a = profile(5, 10, 30);
        let b = profile(2, 3, 80);
        a.merge(&b);
        assert_eq!(a.count(OpKind::Populate), 7);
        assert_eq!(a.count(OpKind::Contains), 13);
        assert_eq!(a.max_size(), 80);
    }

    #[test]
    fn default_is_empty() {
        let p = WorkloadProfile::default();
        assert_eq!(p.total_ops(), 0);
        assert_eq!(p.max_size(), 0);
        assert_eq!(p.elapsed_nanos(), 0);
        assert!(!p.is_lookup_heavy());
    }

    #[test]
    fn contended_merges_and_ratios() {
        let mut a = profile(10, 10, 5).with_contended(4);
        let b = profile(20, 20, 5).with_contended(6);
        assert_eq!(a.contention_ratio(), 0.2);
        a.merge(&b);
        assert_eq!(a.contended(), 10);
        assert_eq!(a.contention_ratio(), 10.0 / 60.0);
        // Empty profile: ratio is defined as zero.
        assert_eq!(WorkloadProfile::default().contention_ratio(), 0.0);
    }

    #[test]
    fn alloc_merges_and_rates() {
        let mut a = profile(10, 10, 5).with_alloc(4, 400);
        let b = profile(20, 20, 5).with_alloc(6, 800);
        assert_eq!(a.alloc_bytes_per_op(), 20.0);
        a.merge(&b);
        assert_eq!(a.alloc_count(), 10);
        assert_eq!(a.alloc_bytes(), 1200);
        assert_eq!(a.alloc_bytes_per_op(), 20.0);
        assert_eq!(WorkloadProfile::default().alloc_bytes_per_op(), 0.0);
    }

    #[test]
    fn merge_sums_elapsed_nanos() {
        let mut a = WorkloadProfile::with_nanos(OpCounters::new(), 3, 100);
        let b = WorkloadProfile::with_nanos(OpCounters::new(), 5, 50);
        a.merge(&b);
        assert_eq!(a.elapsed_nanos(), 150);
        assert_eq!(a.max_size(), 5);
    }
}
