//! # cs-profile
//!
//! Workload-profiling primitives for the CollectionSwitch reproduction
//! (paper §3.1 and §4.3, "Monitoring the Collections Usage").
//!
//! An allocation context monitors a *sample* of the collection instances it
//! creates. Each monitored instance carries an [`OpRecorder`] that counts the
//! paper's *critical operations* ([`OpKind`]) and tracks the maximum size the
//! collection reaches. When the instance ends its life-cycle (in Rust:
//! `Drop`, replacing the paper's `WeakReference` polling), the recorder is
//! folded into a [`WorkloadProfile`] and pushed into the context's
//! [`ProfileSink`].
//!
//! [`WindowConfig`]/[`WindowState`] implement the paper's *monitored window*
//! and *finished ratio*: a context monitors `window_size` instances per
//! round and only analyzes the round once at least `finished_ratio` of them
//! have finished.
//!
//! ## Example
//!
//! ```
//! use cs_profile::{OpKind, OpRecorder, ProfileSink};
//!
//! let sink = ProfileSink::new();
//! let mut rec = OpRecorder::new();
//! rec.record(OpKind::Populate);
//! rec.record(OpKind::Contains);
//! rec.observe_size(42);
//! sink.push(rec.finish());
//!
//! let profiles = sink.drain();
//! assert_eq!(profiles.len(), 1);
//! assert_eq!(profiles[0].count(OpKind::Contains), 1);
//! assert_eq!(profiles[0].max_size(), 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod histogram;
mod op;
mod profile;
mod sink;
mod window;

pub use buffer::LocalWindowBuffer;
pub use histogram::{BucketAgg, ProfileHistogram};
pub use op::{OpCounters, OpKind, OpRecorder};
pub use profile::WorkloadProfile;
pub use sink::ProfileSink;
pub use window::{WindowConfig, WindowState};
