//! Mergeable local window buffers — the thread-local accumulation unit of
//! the concurrent runtime.
//!
//! An [`OpRecorder`](crate::OpRecorder) is carried by exactly one monitored
//! handle and reports once, on drop. Long-lived *concurrent* collections
//! need the dual shape: many threads each accumulate op events privately
//! and periodically fold their buffer into the site's shared profile. A
//! [`LocalWindowBuffer`] is that unit: plain fields (no atomics — it is
//! owned by one thread), cheap to record into, mergeable, and drainable
//! into a [`WorkloadProfile`] at an epoch boundary.

use crate::op::{OpCounters, OpKind};
use crate::WorkloadProfile;

/// A thread-local accumulation buffer for one site's op events.
///
/// Recording is branch-light field arithmetic; nothing is shared, so the
/// hot path performs zero shared-memory writes. [`LocalWindowBuffer::drain`]
/// empties the buffer into a [`WorkloadProfile`] suitable for
/// a site's profile sink, and [`LocalWindowBuffer::merge`] folds one buffer
/// into another (used when a thread retires its buffers).
///
/// # Examples
///
/// ```
/// use cs_profile::{LocalWindowBuffer, OpKind};
///
/// let mut buf = LocalWindowBuffer::new();
/// buf.record(OpKind::Populate, 10);
/// buf.record(OpKind::Contains, 10);
/// buf.add_nanos(250);
/// assert_eq!(buf.ops_buffered(), 2);
/// let profile = buf.drain();
/// assert_eq!(profile.total_ops(), 2);
/// assert_eq!(profile.elapsed_nanos(), 250);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalWindowBuffer {
    counters: OpCounters,
    max_size: usize,
    nanos: u64,
    ops: u64,
    contended: u64,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl LocalWindowBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `op` against a collection whose
    /// post-operation size is `size`.
    #[inline]
    pub fn record(&mut self, op: OpKind, size: usize) {
        self.counters.increment(op);
        self.ops += 1;
        if size > self.max_size {
            self.max_size = size;
        }
    }

    /// Adds measured (or sampled-and-scaled) wall time spent in critical
    /// operations.
    #[inline]
    pub fn add_nanos(&mut self, nanos: u64) {
        self.nanos = self.nanos.saturating_add(nanos);
    }

    /// Notes that the most recent operation observed contention (had to
    /// wait for a shard lock, or lost a CAS / helped a migration on the
    /// lock-free tier).
    #[inline]
    pub fn note_contended(&mut self) {
        self.contended += 1;
    }

    /// Contended operations recorded since the last drain.
    #[inline]
    pub fn contended_buffered(&self) -> u64 {
        self.contended
    }

    /// Adds measured (or sampled-and-scaled) heap churn attributed to
    /// critical operations: allocation events and bytes requested.
    #[inline]
    pub fn add_alloc(&mut self, count: u64, bytes: u64) {
        self.alloc_count = self.alloc_count.saturating_add(count);
        self.alloc_bytes = self.alloc_bytes.saturating_add(bytes);
    }

    /// Allocation events buffered since the last drain.
    #[inline]
    pub fn alloc_count_buffered(&self) -> u64 {
        self.alloc_count
    }

    /// Allocation bytes buffered since the last drain.
    #[inline]
    pub fn alloc_bytes_buffered(&self) -> u64 {
        self.alloc_bytes
    }

    /// Operations recorded since the last drain.
    #[inline]
    pub fn ops_buffered(&self) -> u64 {
        self.ops
    }

    /// Returns `true` when nothing has been recorded since the last drain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops == 0 && self.nanos == 0 && self.contended == 0 && self.alloc_count == 0
    }

    /// Wall time buffered since the last drain.
    #[inline]
    pub fn nanos_buffered(&self) -> u64 {
        self.nanos
    }

    /// Folds `other` into this buffer, leaving `other` empty.
    pub fn merge(&mut self, other: &mut LocalWindowBuffer) {
        self.counters.merge(&other.counters);
        self.max_size = self.max_size.max(other.max_size);
        self.nanos = self.nanos.saturating_add(other.nanos);
        self.ops += other.ops;
        self.contended = self.contended.saturating_add(other.contended);
        self.alloc_count = self.alloc_count.saturating_add(other.alloc_count);
        self.alloc_bytes = self.alloc_bytes.saturating_add(other.alloc_bytes);
        *other = LocalWindowBuffer::default();
    }

    /// Empties the buffer into a [`WorkloadProfile`] (the epoch flush).
    pub fn drain(&mut self) -> WorkloadProfile {
        let out = WorkloadProfile::with_nanos(self.counters, self.max_size, self.nanos)
            .with_contended(self.contended)
            .with_alloc(self.alloc_count, self.alloc_bytes);
        *self = LocalWindowBuffer::default();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_size_and_ops() {
        let mut buf = LocalWindowBuffer::new();
        assert!(buf.is_empty());
        buf.record(OpKind::Populate, 1);
        buf.record(OpKind::Populate, 5);
        buf.record(OpKind::Contains, 3);
        assert_eq!(buf.ops_buffered(), 3);
        let p = buf.drain();
        assert_eq!(p.count(OpKind::Populate), 2);
        assert_eq!(p.count(OpKind::Contains), 1);
        assert_eq!(p.max_size(), 5);
    }

    #[test]
    fn drain_resets_everything() {
        let mut buf = LocalWindowBuffer::new();
        buf.record(OpKind::Middle, 9);
        buf.add_nanos(100);
        let _ = buf.drain();
        assert!(buf.is_empty());
        assert_eq!(buf.ops_buffered(), 0);
        assert_eq!(buf.nanos_buffered(), 0);
        let p = buf.drain();
        assert_eq!(p.total_ops(), 0);
        assert_eq!(p.max_size(), 0);
    }

    #[test]
    fn merge_folds_and_empties_source() {
        let mut a = LocalWindowBuffer::new();
        a.record(OpKind::Contains, 4);
        a.add_nanos(10);
        let mut b = LocalWindowBuffer::new();
        b.record(OpKind::Iterate, 20);
        b.record(OpKind::Contains, 2);
        b.add_nanos(30);
        a.merge(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.ops_buffered(), 3);
        assert_eq!(a.nanos_buffered(), 40);
        let p = a.drain();
        assert_eq!(p.count(OpKind::Contains), 2);
        assert_eq!(p.count(OpKind::Iterate), 1);
        assert_eq!(p.max_size(), 20);
    }

    #[test]
    fn contended_flows_through_merge_and_drain() {
        let mut a = LocalWindowBuffer::new();
        a.record(OpKind::Populate, 1);
        a.note_contended();
        let mut b = LocalWindowBuffer::new();
        b.record(OpKind::Populate, 1);
        b.note_contended();
        b.note_contended();
        a.merge(&mut b);
        assert_eq!(a.contended_buffered(), 3);
        assert_eq!(b.contended_buffered(), 0);
        let p = a.drain();
        assert_eq!(p.contended(), 3);
        assert_eq!(a.contended_buffered(), 0);
    }

    #[test]
    fn alloc_flows_through_merge_and_drain() {
        let mut a = LocalWindowBuffer::new();
        a.record(OpKind::Populate, 1);
        a.add_alloc(2, 128);
        let mut b = LocalWindowBuffer::new();
        b.record(OpKind::Populate, 1);
        b.add_alloc(3, 512);
        a.merge(&mut b);
        assert_eq!(a.alloc_count_buffered(), 5);
        assert_eq!(a.alloc_bytes_buffered(), 640);
        assert_eq!(b.alloc_bytes_buffered(), 0);
        let p = a.drain();
        assert_eq!(p.alloc_count(), 5);
        assert_eq!(p.alloc_bytes(), 640);
        assert_eq!(a.alloc_count_buffered(), 0);
        // alloc alone makes the buffer non-empty (a window can observe
        // churn without sampling any op's timing).
        let mut c = LocalWindowBuffer::new();
        c.add_alloc(1, 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn nanos_saturate() {
        let mut buf = LocalWindowBuffer::new();
        buf.add_nanos(u64::MAX);
        buf.add_nanos(1);
        assert_eq!(buf.nanos_buffered(), u64::MAX);
    }
}
