//! # collection-switch
//!
//! Facade crate for the CollectionSwitch reproduction. Re-exports the whole
//! stack so applications can depend on a single crate:
//!
//! * [`collections`] — the collection-variant substrate ([`cs_collections`]).
//! * [`profile`] — workload profiling primitives ([`cs_profile`]).
//! * [`model`] — performance models and the model builder ([`cs_model`]).
//! * [`core`] — the adaptive selection framework ([`cs_core`]).
//! * [`runtime`] — the sharded, thread-local-buffered concurrent selection
//!   runtime ([`cs_runtime`]).
//! * [`telemetry`] — metrics registry, event sinks, decision audit stream,
//!   and Prometheus/JSON exposition ([`cs_telemetry`]).
//! * [`workloads`] — workload generators and synthetic applications
//!   ([`cs_workloads`]).
//! * [`analyzer`] — static allocation-site extraction, the variant advisor,
//!   runtime drift checks, and the workspace self-lint ([`cs_analyzer`]).
//! * [`trace`] — adaptation-pipeline span tracing and self-overhead
//!   accounting ([`cs_trace`]).
//! * [`state`] — crash-safe snapshot store for learned selection state:
//!   atomic writes, per-record checksums, lenient corruption-quarantining
//!   loads ([`cs_state`]).
//! * [`heap`] — allocation observability: the opt-in counting global
//!   allocator, scoped per-site attribution guards, and process heap/RSS
//!   observables ([`cs_heap`]).
//! * [`obs`] — the live operational plane: embedded scrape/debug HTTP
//!   server, windowed time-series over the metrics registry, and op-mix
//!   drift detection ([`cs_obs`]).
//!
//! ## Quickstart
//!
//! ```
//! use collection_switch::prelude::*;
//!
//! // Build an engine with the paper's default configuration and the
//! // R_time selection rule (Table 4).
//! let engine = Switch::builder().rule(SelectionRule::r_time()).build();
//! let ctx = engine.list_context::<i64>(ListKind::Array);
//!
//! // Allocation sites call `create_list` instead of a concrete constructor.
//! for _ in 0..200 {
//!     let mut list = ctx.create_list();
//!     for v in 0..64 {
//!         list.push(v);
//!     }
//!     for v in 0..64 {
//!         assert!(list.contains(&v));
//!     }
//! }
//! engine.analyze_now();
//! // The context may now instantiate a lookup-friendly variant.
//! let _ = ctx.current_kind();
//! ```

pub use cs_analyzer as analyzer;
pub use cs_collections as collections;
pub use cs_core as core;
pub use cs_heap as heap;
pub use cs_lockfree as lockfree;
pub use cs_model as model;
pub use cs_obs as obs;
pub use cs_profile as profile;
pub use cs_runtime as runtime;
pub use cs_state as state;
pub use cs_telemetry as telemetry;
pub use cs_trace as trace;
pub use cs_workloads as workloads;

/// Commonly used items, re-exported in one place.
pub mod prelude {
    pub use cs_collections::{
        AnyList, AnyMap, AnySet, ConcKind, ListKind, ListOps, MapKind, MapOps, SetKind, SetOps,
    };
    pub use cs_heap::{AllocGuard, CountingAlloc, HeapAccount};
    pub use cs_lockfree::LockFreeMap;
    pub use cs_core::{
        EngineEvent, GuardrailConfig, ListContext, MapContext, SelectionRule, SetContext,
        SnapshotPolicy, StatePersister, Switch, SwitchList, SwitchMap, SwitchSet, WarmStartReport,
    };
    pub use cs_model::{CostDimension, PerformanceModel};
    pub use cs_obs::{ObsBuilder, ObsHandle, RuntimeObsExt, SwitchObsExt};
    pub use cs_runtime::{ConcurrentMap, ConcurrentSet, Runtime, RuntimeConfig};
    pub use cs_telemetry::{
        validate_prometheus_text, JsonlSink, MetricsRegistry, MetricsSink, TelemetrySnapshot,
        VecSink,
    };
    pub use cs_trace::{Phase, TraceMode, TraceSnapshot};
}
