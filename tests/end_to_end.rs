//! Cross-crate integration tests: the full stack from collection substrate
//! through profiling, models, selection engine, and workloads.

use std::time::Duration;

use collection_switch::core::{Models, SelectionRule, Switch};
use collection_switch::model::{builder, default_models, persist, PerformanceModel};
use collection_switch::prelude::*;
use collection_switch::profile::WindowConfig;
use collection_switch::workloads::{
    apps,
    runner::{run_app, Mode},
};
use cs_collections::{LibraryProfile, SetKind};

fn fast_window() -> WindowConfig {
    WindowConfig {
        window_size: 30,
        finished_ratio: 0.6,
        monitoring_rate: Duration::from_millis(5),
        min_samples: 5,
        history_decay: 0.5,
    }
}

#[test]
fn lookup_heavy_list_site_converges_to_hash_array() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(fast_window())
        .build();
    let ctx = engine.list_context::<i64>(ListKind::Array);
    for _ in 0..60 {
        let mut l = ctx.create_list();
        for v in 0..300 {
            l.push(v);
        }
        for v in 0..600 {
            l.contains(&v);
        }
    }
    engine.analyze_now();
    assert_eq!(ctx.current_kind(), ListKind::HashArray);
}

#[test]
fn small_set_site_under_alloc_rule_converges_to_array() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_alloc())
        .window(fast_window())
        .build();
    let ctx = engine.set_context::<i64>(SetKind::Chained);
    for _ in 0..60 {
        let mut s = ctx.create_set();
        for v in 0..10 {
            s.insert(v);
        }
        for v in 0..10 {
            s.contains(&v);
        }
    }
    engine.analyze_now();
    assert_eq!(ctx.current_kind(), SetKind::Array);
}

#[test]
fn impossible_rule_performs_full_monitoring_but_never_switches() {
    let engine = Switch::builder()
        .rule(SelectionRule::impossible())
        .window(fast_window())
        .build();
    let ctx = engine.map_context::<i64, i64>(MapKind::Chained);
    for _ in 0..60 {
        let mut m = ctx.create_map();
        for v in 0..50 {
            m.insert(v, v);
        }
        for v in 0..100 {
            m.get(&v);
        }
    }
    engine.analyze_now();
    assert_eq!(ctx.current_kind(), MapKind::Chained);
    assert!(engine.transition_log().is_empty());
    assert!(ctx.stats().rounds > 0, "analysis rounds must still run");
}

#[test]
fn phase_change_reconverges_with_history_decay() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(fast_window())
        .build();
    let ctx = engine.list_context::<i64>(ListKind::Array);

    // Phase 1: lookups dominate.
    for _ in 0..3 {
        for _ in 0..40 {
            let mut l = ctx.create_list();
            for v in 0..200 {
                l.push(v);
            }
            for v in 0..400 {
                l.contains(&v);
            }
        }
        engine.analyze_now();
    }
    assert_eq!(ctx.current_kind(), ListKind::HashArray);

    // Phase 2: pure appends; the hash index becomes dead weight.
    for _ in 0..6 {
        for _ in 0..40 {
            let mut l = ctx.create_list();
            for v in 0..200 {
                l.push(v);
            }
        }
        engine.analyze_now();
    }
    assert_eq!(
        ctx.current_kind(),
        ListKind::Array,
        "decayed history must let the site walk back"
    );
}

#[test]
fn calibrated_models_drive_the_engine() {
    // Calibrate on this machine (quick plan), then select with the result —
    // the full pipeline of the paper's Fig. 1.
    let cfg = builder::BuilderConfig {
        sizes: vec![10, 100, 400, 1000],
        warmup_iters: 0,
        measured_iters: 1,
        batch: 8,
        degree: 3,
        seed: 1,
    };
    let models = Models {
        list: builder::build_list_model(&cfg),
        set: builder::build_set_model(&cfg),
        map: builder::build_map_model(&cfg),
        // The concurrency-strategy model is analytic; keep the default.
        ..Models::default()
    };
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(fast_window())
        .models(models)
        .build();
    let ctx = engine.list_context::<i64>(ListKind::Linked);
    for _ in 0..60 {
        let mut l = ctx.create_list();
        for v in 0..200 {
            l.push(v);
        }
        for v in 0..400 {
            l.contains(&v);
        }
    }
    engine.analyze_now();
    // Measured reality: linear lookups on a linked list lose to every other
    // variant by an order of magnitude, so any honest calibration — even the
    // single-iteration quick plan — moves the site off LinkedList.
    assert_ne!(ctx.current_kind(), ListKind::Linked);
}

#[test]
fn persisted_models_round_trip_through_the_engine() {
    let text = persist::to_text(default_models::set_model());
    let restored: PerformanceModel<SetKind> = persist::from_text(&text).unwrap();
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(fast_window())
        .models(Models {
            set: restored,
            ..Models::default()
        })
        .build();
    let ctx = engine.set_context::<i64>(SetKind::Chained);
    for _ in 0..60 {
        let mut s = ctx.create_set();
        for v in 0..300 {
            s.insert(v);
        }
        for v in 0..600 {
            s.contains(&v);
        }
    }
    engine.analyze_now();
    assert_eq!(ctx.current_kind(), SetKind::Open(LibraryProfile::Koloboke));
}

#[test]
fn concurrent_sites_adapt_under_contention() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .window(fast_window())
        .background()
        .build();
    let lookup_site = engine.list_context::<i64>(ListKind::Array);
    let set_site = engine.set_context::<i64>(SetKind::Chained);
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let lists = lookup_site.clone();
            let sets = set_site.clone();
            std::thread::spawn(move || {
                for _ in 0..40 {
                    let mut l = lists.create_list();
                    let mut s = sets.create_set();
                    for v in 0..200 {
                        l.push(v);
                        s.insert(v);
                    }
                    for v in 0..400 {
                        l.contains(&v);
                        s.contains(&v);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Converge: keep a trickle of the same workload flowing while
    // analyzing. Scheduler noise on a loaded box can make a verification
    // window measure a genuine switch as a regression and roll it back
    // with a several-round quarantine — rounds only advance with fresh
    // profiles, so an op-free analyze loop would freeze that state
    // forever instead of letting the guardrail re-converge.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline
        && (lookup_site.current_kind() != ListKind::HashArray
            || set_site.current_kind() == SetKind::Chained)
    {
        for _ in 0..8 {
            let mut l = lookup_site.create_list();
            let mut s = set_site.create_set();
            for v in 0..200 {
                l.push(v);
                s.insert(v);
            }
            for v in 0..400 {
                l.contains(&v);
                s.contains(&v);
            }
        }
        engine.analyze_now();
    }
    assert_eq!(lookup_site.current_kind(), ListKind::HashArray);
    assert_ne!(set_site.current_kind(), SetKind::Chained);
}

#[test]
fn full_app_checksums_are_mode_invariant() {
    // Switching variants must never change observable behaviour.
    let app = apps::h2(1);
    let a = run_app(&app, Mode::Original, 99);
    let b = run_app(&app, Mode::FullAdap(SelectionRule::r_time()), 99);
    let c = run_app(&app, Mode::FullAdap(SelectionRule::r_alloc()), 99);
    let d = run_app(&app, Mode::InstanceAdap, 99);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.checksum, c.checksum);
    assert_eq!(a.checksum, d.checksum);
}

#[test]
fn energy_rule_selects_along_the_synthetic_dimension() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_energy())
        .window(fast_window())
        .build();
    let ctx = engine.set_context::<i64>(SetKind::Chained);
    for _ in 0..60 {
        let mut s = ctx.create_set();
        for v in 0..200 {
            s.insert(v);
        }
        for v in 0..400 {
            s.contains(&v);
        }
    }
    engine.analyze_now();
    assert_ne!(
        ctx.current_kind(),
        SetKind::Chained,
        "the energy dimension (time + scaled alloc) must also improve"
    );
}

#[test]
fn footprint_rule_prefers_compact_layouts() {
    let engine = Switch::builder()
        .rule(SelectionRule::r_footprint())
        .window(fast_window())
        .build();
    let ctx = engine.map_context::<i64, i64>(MapKind::Chained);
    for _ in 0..60 {
        let mut m = ctx.create_map();
        for v in 0..200 {
            m.insert(v, v);
        }
        for v in 0..200 {
            m.get(&v);
        }
    }
    engine.analyze_now();
    use collection_switch::collections::HeapSize;
    // Whatever was chosen must actually have a smaller real footprint.
    let mut chosen = ctx.create_map();
    let mut baseline = AnyMap::<i64, i64>::new(MapKind::Chained);
    for v in 0..200 {
        chosen.insert(v, v);
        MapOps::map_insert(&mut baseline, v, v);
    }
    assert!(chosen.heap_bytes() < baseline.heap_bytes());
}
