//! Cross-crate tracing integration: under a 4-thread concurrent stress
//! workload, the tracer's spans must be well-nested, per-thread
//! monotonic, and in *exact* numeric agreement with the engine's own
//! accounting — Ingest spans with site flush counters, SwitchExec spans
//! with the transition log, Verify spans bounding rollbacks.
//!
//! Everything lives in one `#[test]` because the trace mode is process
//! global; integration-test binaries get their own process, so this
//! cannot race the unit suites.

use std::time::Duration;

use collection_switch::prelude::*;
use collection_switch::trace;
use trace::{Phase, SpanRecord, TraceMode};

/// Ops per worker per batch. A multiple of `FLUSH_OPS` so every buffer
/// flushes inside the worker's lifetime and the thread-exit destructor
/// has no residue — which makes the tracer's credited `app_ops` agree
/// *exactly* with the sites' op totals.
const FLUSH_OPS: u64 = 256;
const BATCH_OPS: u64 = FLUSH_OPS * 25;
const WORKERS: u64 = 4;

/// Exit-ordered records are well-nested iff every depth-`d` span (d > 0)
/// is contained in the next depth-`d-1` record: children exit (and are
/// recorded) before their parent.
fn assert_well_nested(spans: &[SpanRecord], thread: u64) {
    for (i, child) in spans.iter().enumerate() {
        if child.depth == 0 {
            continue;
        }
        let parent = spans[i + 1..]
            .iter()
            .find(|s| s.depth == child.depth - 1)
            .unwrap_or_else(|| {
                panic!(
                    "thread {thread}: depth-{} {:?} span at {} has no enclosing parent",
                    child.depth, child.phase, child.start_ns
                )
            });
        assert!(
            parent.start_ns <= child.start_ns && parent.end_ns() >= child.end_ns(),
            "thread {thread}: {:?} [{}, {}] not inside its {:?} parent [{}, {}]",
            child.phase,
            child.start_ns,
            child.end_ns(),
            parent.phase,
            parent.start_ns,
            parent.end_ns(),
        );
    }
}

#[test]
fn spans_agree_with_engine_accounting_under_concurrent_stress() {
    trace::reset();
    trace::set_mode(TraceMode::Full);

    let rt = Runtime::with_config(
        Switch::builder()
            .rule(SelectionRule::r_time())
            .window(collection_switch::profile::WindowConfig {
                window_size: 30,
                finished_ratio: 0.6,
                monitoring_rate: Duration::from_millis(5),
                min_samples: 5,
                history_decay: 0.5,
            })
            .build(),
        RuntimeConfig {
            shards: 8,
            flush_ops: FLUSH_OPS,
            // Count-triggered flushes only: a timer flush mid-batch would
            // leave a non-multiple residue in the buffers and break the
            // exact app-op agreement below.
            flush_interval: Duration::from_secs(3600),
            ..RuntimeConfig::default()
        },
    );
    let map = rt.named_concurrent_map::<u64, u64>(MapKind::Chained, "trace-stress");

    // Batches of lookup-heavy Zipf-ish traffic until the engine commits a
    // switch (chained map under 95% lookups loses to an indexed layout),
    // bounded so a modeling surprise fails fast instead of hanging.
    let mut batches = 0;
    while rt.engine().transition_log().is_empty() && batches < 40 {
        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let map = map.clone();
                std::thread::spawn(move || {
                    for i in 0..BATCH_OPS {
                        let key = (i * (t + 1)) % 512;
                        if i % 20 == 0 {
                            map.insert(key, i);
                        } else {
                            map.get(&key);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        rt.analyze_now();
        batches += 1;
    }

    let snap = trace::snapshot();
    trace::set_mode(TraceMode::Off);

    let transitions = rt.engine().transition_log();
    assert!(
        !transitions.is_empty(),
        "lookup-heavy stress never provoked a switch in {batches} batches"
    );

    let stats = map.stats();
    let counts = snap.phase_counts();

    // -- Exact agreement with the engine's books --------------------------
    // One OpRecord span per op in full mode; two Ingests per accepted
    // flush on a map site (every flushed profile feeds both the
    // representation context and the concurrency-strategy context, and
    // each ingestion is a real traced pipeline step); the Flush phase
    // fires three times per flush (thread-local handoff + one
    // profile-sink push inside each of the two ingests); one SwitchExec
    // per logged transition.
    let total_ops = WORKERS * BATCH_OPS * batches;
    assert_eq!(stats.total_ops, total_ops, "runtime lost ops");
    assert_eq!(counts[Phase::OpRecord.index()], total_ops);
    assert_eq!(counts[Phase::Ingest.index()], stats.flushes * 2);
    assert_eq!(counts[Phase::Flush.index()], stats.flushes * 3);
    assert_eq!(counts[Phase::SwitchExec.index()], transitions.len() as u64);
    assert!(
        stats.rollbacks <= counts[Phase::Verify.index()],
        "every rollback happens inside a Verify span"
    );
    assert!(
        counts[Phase::ModelEval.index()] <= counts[Phase::Decision.index()],
        "model evaluation only runs inside a decision pass"
    );
    assert!(counts[Phase::Decision.index()] > 0, "no analysis ever ran");

    // -- Self-overhead account -------------------------------------------
    // Wall-interval crediting at flush boundaries sees every op exactly
    // once (buffers drain completely inside each worker's lifetime).
    let overhead = snap.overhead();
    assert_eq!(overhead.app_ops, total_ops);
    assert!(overhead.app_nanos > 0);
    assert!(overhead.tracer_nanos > 0);
    let ratio = overhead.ratio();
    assert!(
        ratio > 0.0 && ratio < 1.0,
        "self-overhead ratio {ratio} out of range"
    );

    // -- Per-thread span structure ----------------------------------------
    assert!(
        snap.threads.len() >= WORKERS as usize,
        "expected at least the worker rings, got {}",
        snap.threads.len()
    );
    let mut saw_nested = false;
    for t in &snap.threads {
        // Ring order is exit order, and exits on one thread are clocked
        // by one monotonic counter: end timestamps never go backwards.
        for pair in t.spans.windows(2) {
            assert!(
                pair[0].end_ns() <= pair[1].end_ns(),
                "thread {}: span exit times regressed ({} > {})",
                t.thread,
                pair[0].end_ns(),
                pair[1].end_ns(),
            );
        }
        assert_well_nested(&t.spans, t.thread);
        saw_nested |= t.spans.iter().any(|s| s.depth > 0);
        for s in &t.spans {
            assert_eq!(s.thread, t.thread, "span carries its ring's thread id");
        }
    }
    assert!(
        saw_nested,
        "the ingest path must have produced nested spans (Flush > Ingest > Flush)"
    );
}
