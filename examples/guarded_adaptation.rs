//! Guarded adaptation: post-switch verification, rollback, and quarantine.
//!
//! ```text
//! cargo run --release --example guarded_adaptation
//! ```
//!
//! The engine normally trusts its cost models, but models can be wrong —
//! miscalibrated, stale, or built on a different machine. This example
//! deliberately feeds the engine an *inverted* list model that claims the
//! linked variant is 100x faster than the array variant on a scan-heavy
//! site. The guardrail layer then:
//!
//! 1. lets the (bad) switch happen,
//! 2. measures the next monitoring window under the new variant,
//! 3. sees that the realized cost regressed instead of improving,
//! 4. rolls the site back to the previous variant, and
//! 5. quarantines the candidate so the model cannot re-select it.

use collection_switch::model::{
    CostDimension, PerformanceModel, Polynomial, VariantCostModel,
};
use collection_switch::prelude::*;
use collection_switch::profile::OpKind;

/// A list model that prices every variant with a flat per-op time cost.
fn flat_list_model(costs: &[(ListKind, f64)]) -> PerformanceModel<ListKind> {
    let mut model = PerformanceModel::new();
    for &(kind, cost) in costs {
        let mut variant = VariantCostModel::new();
        for op in OpKind::ALL {
            variant.set_op_cost(CostDimension::Time, op, Polynomial::constant(cost));
        }
        model.insert_variant(kind, variant);
    }
    model
}

fn scan_round(ctx: &ListContext<i64>) {
    for _ in 0..60 {
        let mut list = ctx.create_list();
        for v in 0..1024 {
            list.push(v);
        }
        for v in 0..1024 {
            assert!(list.contains(&v));
        }
    }
}

fn main() {
    // An adversarially wrong model: Array allegedly costs 100 ns/op,
    // Linked 1 ns/op. On a scan-heavy workload reality is the opposite.
    let models = collection_switch::core::Models {
        list: flat_list_model(&[
            (ListKind::Array, 100.0),
            (ListKind::Linked, 1.0),
            (ListKind::HashArray, 10_000.0),
            (ListKind::Adaptive, 10_000.0),
        ]),
        ..Default::default()
    };

    // Guardrails are on by default; spelling them out shows the knobs. A
    // switch must not regress measured per-op time by more than 25% over
    // what the model promised, sites wait 1 analysis round between
    // transitions, and a refuted candidate is quarantined for 4 rounds
    // (doubling on every repeat offence).
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .models(models)
        .guardrails(
            GuardrailConfig::default()
                .verify_tolerance(0.25)
                .cooldown_rounds(1)
                .quarantine_base(4),
        )
        .build();
    let ctx = engine.named_list_context::<i64>(ListKind::Array, "example/guarded");

    println!("site starts as: {}", ctx.current_kind());

    // Round 1 establishes the baseline and lets the bad model provoke the
    // switch; round 2 measures the damage and rolls it back; round 3 shows
    // that the quarantined candidate stays excluded.
    for round in 1..=3 {
        scan_round(&ctx);
        engine.analyze_now();
        println!("after round {round}: {}", ctx.current_kind());
    }

    let stats = ctx.stats();
    println!(
        "\nswitches: {}, rollbacks: {}, degraded: {}",
        stats.switches,
        stats.rollbacks,
        engine.is_degraded()
    );

    println!("\nengine event log:");
    for event in engine.event_log() {
        println!("  {event}");
    }

    assert_eq!(stats.switches, 1, "the inverted model provoked one switch");
    if stats.rollbacks == 1 {
        println!("\nverification caught the bad switch and restored {}", ctx.current_kind());
    } else {
        // Verification is a wall-clock measurement; on a noisy machine the
        // regression can fall inside the tolerance.
        println!("\nno rollback this run — realized cost stayed within tolerance");
    }
}
