//! Allocation-spike detection, end to end: provoke a real `alloc_spike`
//! incident and validate the record it freezes.
//!
//! ```text
//! cargo run --release --example alloc_spike
//! ```
//!
//! Installs the opt-in [`CountingAlloc`] global allocator (without it the
//! process ledger reads zero and the detector stays structurally quiet),
//! wires a [`FlightRecorder`] to an engine, and drives analysis passes with
//! a steady, small allocation rate so the recorder's trailing per-pass
//! average warms up. Then one pass allocates a multi-megabyte burst — the
//! detector must fire exactly one `alloc_spike` incident (the latch holds
//! through the spike; calm passes afterwards release it without re-firing).
//! The example then re-reads the shared JSONL stream and validates it with
//! [`Json::parse`]:
//!
//! * every line in the stream parses,
//! * exactly one record has `kind: "incident"` with `trigger: "alloc_spike"`,
//! * the incident carries the frozen process heap account (`heap`) with a
//!   live allocation ledger — nonzero alloc counts/bytes and a `live_bytes`
//!   balance — plus the tracer's self-overhead account.
//!
//! This example is CI's alloc-spike check: it exits nonzero on any missing
//! or malformed piece, so running it IS the validation.

use std::hint::black_box;
use std::sync::Arc;

use collection_switch::telemetry::{FlightRecorder, FlightRecorderConfig, Json};
use collection_switch::prelude::*;

/// Opt-in heap observability: the spike detector compares passes on the
/// counting ledger, which only moves when this allocator is installed.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steady-state churn per calm pass; the burst must dwarf `ratio ×` this.
const CALM_BYTES: usize = 16 * 1024;
/// One-pass burst; ≫ `alloc_spike_ratio × CALM_BYTES` and ≫ the floor.
const BURST_BYTES: usize = 8 * 1024 * 1024;

fn fail(why: &str) -> ! {
    eprintln!("alloc_spike: FAILED: {why}");
    std::process::exit(1);
}

fn expect<'a>(doc: &'a Json, field: &str) -> &'a Json {
    doc.get(field)
        .unwrap_or_else(|| fail(&format!("incident record is missing {field:?}")))
}

/// Allocate (and immediately release) about `bytes` in 1 KiB chunks, so a
/// pass's delta is dominated by intentional churn, not harness noise.
fn churn(bytes: usize) {
    for _ in 0..bytes / 1024 {
        black_box(vec![0u8; 1024]);
    }
}

fn main() {
    if !collection_switch::heap::counting_active() {
        fail("the counting allocator did not install — the ledger is dead");
    }

    // -- Wire the pipeline -------------------------------------------------
    let registry = MetricsRegistry::new();
    let stream_path = std::env::temp_dir().join("cs_alloc_spike.jsonl");
    let jsonl = Arc::new(
        JsonlSink::create(&stream_path, 10_000).unwrap_or_else(|e| fail(&e.to_string())),
    );
    let recorder = Arc::new(FlightRecorder::new(
        Arc::clone(&jsonl),
        registry.clone(),
        FlightRecorderConfig {
            // Scaled for an example process: the default 1 MiB floor is
            // sized for services; the 8 MiB burst clears both either way.
            alloc_spike_min_bytes: 64 * 1024,
            ..FlightRecorderConfig::default()
        },
    ));
    let engine = Switch::builder()
        .event_sink(Arc::new(MetricsSink::new(registry.clone())))
        .event_sink(jsonl.clone())
        .event_sink(recorder.clone())
        .build();
    recorder.attach(&engine);

    // -- Warm the trailing average, then burst ------------------------------
    // Pass 0 sets the byte baseline, pass 1 seeds the trailing average, and
    // from pass 2 on the detector judges each delta. Three calm passes make
    // the steady state unmistakable before the burst.
    for _ in 0..3 {
        churn(CALM_BYTES);
        engine.analyze_now();
    }
    if recorder.incidents_recorded() != 0 {
        fail("an incident fired during calm passes — the baseline is broken");
    }

    churn(BURST_BYTES);
    engine.analyze_now(); // the burst pass: delta ≈ 8 MiB vs ~16 KiB trailing
    if recorder.incidents_recorded() == 0 {
        fail("the allocation burst did not fire an alloc_spike incident");
    }

    // The latch must release on a calm pass without re-firing, and a second
    // burst after release is a *new* anomaly and must fire again — proving
    // the detector is edge-triggered, not a one-shot. The first burst folded
    // into the trailing average (one EWMA step: ≈ 1 MiB), so this burst is
    // 4× the first to clear the lifted baseline decisively.
    churn(CALM_BYTES);
    engine.analyze_now();
    churn(4 * BURST_BYTES);
    engine.analyze_now();
    let incidents = recorder.incidents_recorded();
    if incidents != 2 {
        fail(&format!(
            "expected exactly 2 alloc_spike incidents (burst, release, burst), got {incidents}"
        ));
    }
    jsonl.flush().unwrap_or_else(|e| fail(&e.to_string()));

    // -- Re-read and validate the stream ------------------------------------
    let content =
        std::fs::read_to_string(&stream_path).unwrap_or_else(|e| fail(&e.to_string()));
    let mut spikes = Vec::new();
    for (n, line) in content.lines().enumerate() {
        let doc = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("line {} is not valid JSON: {e}", n + 1)));
        if doc.get("kind").and_then(Json::as_str) == Some("incident") {
            if doc.get("trigger").and_then(Json::as_str) != Some("alloc_spike") {
                fail("a non-alloc_spike incident appeared in this workload");
            }
            spikes.push(doc);
        }
    }
    println!(
        "stream: {} lines, {} alloc_spike incident(s)",
        content.lines().count(),
        spikes.len()
    );
    if spikes.len() != 2 {
        fail(&format!(
            "counted {} alloc_spike records in the stream, expected 2",
            spikes.len()
        ));
    }

    for incident in &spikes {
        // The frozen process heap account is the incident's payload: the
        // post-mortem reads the ledger the detector judged.
        let heap = expect(incident, "heap");
        let alloc_bytes = expect(heap, "alloc_bytes")
            .as_u64()
            .unwrap_or_else(|| fail("heap.alloc_bytes is not an integer"));
        if alloc_bytes < BURST_BYTES as u64 {
            fail("frozen heap account predates the burst it should explain");
        }
        for field in [
            "alloc_count",
            "dealloc_count",
            "dealloc_bytes",
            "realloc_count",
            "realloc_bytes",
            "live_bytes",
        ] {
            let _ = expect(heap, field);
        }
        // No engine event triggered this — the detector watched the ledger.
        if expect(incident, "event") != &Json::Null {
            fail("alloc_spike embeds an engine event but none triggered it");
        }
        let overhead = expect(incident, "overhead");
        for field in ["framework_nanos", "tracer_nanos", "app_nanos", "app_ops"] {
            let _ = expect(overhead, field);
        }
    }

    println!(
        "incidents seq {} and {} validated: trigger=alloc_spike, ledger frozen",
        expect(&spikes[0], "seq").render(),
        expect(&spikes[1], "seq").render(),
    );
    std::fs::remove_file(&stream_path).ok();
    println!("alloc_spike: OK");
}
