//! The full model pipeline of paper Fig. 1: benchmark this machine
//! (Table 3 factorial plan), persist the models, and reuse them at the next
//! startup without re-benchmarking.
//!
//! ```text
//! cargo run --release --example calibrate_and_reuse
//! ```

use collection_switch::core::{Models, SelectionRule, Switch};
use collection_switch::model::builder::{self, BuilderConfig};
use collection_switch::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("collectionswitch-models");

    // Startup path: reuse persisted models if a calibration already ran.
    let models = match Models::load_from_dir(&dir) {
        Ok(models) => {
            println!("loaded calibrated models from {}", dir.display());
            models
        }
        Err(_) => {
            println!("calibrating on this machine (quick plan)…");
            let cfg = BuilderConfig::quick();
            let started = std::time::Instant::now();
            let models = Models {
                list: builder::build_list_model(&cfg),
                set: builder::build_set_model(&cfg),
                map: builder::build_map_model(&cfg),
                // The concurrency-strategy model is analytic, not
                // calibrated: keep the shipped default.
                ..Models::default()
            };
            println!("calibration took {:?}", started.elapsed());
            models.save_to_dir(&dir).expect("persist models");
            println!("saved to {}", dir.display());
            models
        }
    };

    // Drive the engine with the hardware-specific models.
    let engine = Switch::builder()
        .rule(SelectionRule::r_time())
        .models(models)
        .build();
    let ctx = engine.named_list_context::<i64>(ListKind::Linked, "Parser:88");
    for _ in 0..200 {
        let mut list = ctx.create_list();
        for v in 0..200 {
            list.push(v);
        }
        for v in 0..400 {
            list.contains(&v);
        }
    }
    engine.analyze_now();

    println!();
    for summary in engine.context_summaries() {
        println!("{summary}");
    }
    assert_ne!(
        ctx.current_kind(),
        ListKind::Linked,
        "a calibrated model must move a lookup-heavy site off LinkedList"
    );
}
