//! Quickstart: instrument an allocation site and watch CollectionSwitch
//! pick a better variant.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use collection_switch::prelude::*;

fn main() {
    // 1. Build an engine. R_time (paper Table 4) asks for a 20% execution
    //    time improvement before switching.
    let engine = Switch::builder().rule(SelectionRule::r_time()).build();

    // 2. Replace the allocation site. Where the code said
    //    `let list = ArrayList::new()` (the JDK default), it now says:
    let ctx = engine.list_context::<i64>(ListKind::Array);

    println!("site starts as: {}", ctx.current_kind());

    // 3. Run a lookup-heavy workload. A sample of the created instances is
    //    monitored; each reports its workload profile when dropped.
    for _round in 0..3 {
        for _ in 0..200 {
            let mut list = ctx.create_list();
            for v in 0..300 {
                list.push(v);
            }
            for v in 0..300 {
                assert!(list.contains(&v));
            }
        }
        // In production you would use `.background()` and let the analyzer
        // thread do this at the monitoring rate (50 ms by default).
        engine.analyze_now();
        println!("after analysis: {}", ctx.current_kind());
    }

    // 4. The site now instantiates a hash-indexed list: O(1) lookups.
    assert_eq!(ctx.current_kind(), ListKind::HashArray);

    println!("\ntransition log:");
    for event in engine.transition_log() {
        println!("  {event}");
    }

    // 5. New instances benefit immediately.
    let mut list = ctx.create_list();
    for v in 0..10_000 {
        list.push(v);
    }
    let t = std::time::Instant::now();
    let mut hits = 0;
    for v in 0..10_000 {
        hits += i64::from(list.contains(&v));
    }
    println!("\n10k lookups on a 10k-element list: {:?} ({hits} hits)", t.elapsed());
}
