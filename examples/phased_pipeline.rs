//! A pipeline whose workload changes phase at runtime — the situation the
//! paper's multi-phase experiment (Fig. 6) models: no single variant is
//! optimal for the whole run, so the allocation context re-converges as the
//! dominant operation changes.
//!
//! ```text
//! cargo run --release --example phased_pipeline
//! ```

use std::rc::Rc;
use std::time::Instant;

use collection_switch::prelude::*;

/// Reference-typed element (the JVM-`Integer` analogue; see DESIGN.md).
type Item = Rc<i64>;

fn main() {
    let engine = Switch::builder().rule(SelectionRule::r_time()).build();
    let ctx = engine.list_context::<Item>(ListKind::Array);

    // Phase 1 — deduplication: membership tests dominate.
    run_phase("dedup (contains-heavy)", &engine, &ctx, |list| {
        let mut dups = 0;
        for v in 0..400 {
            let item = Rc::new(v % 250);
            if list.contains(&item) {
                dups += 1;
            } else {
                list.push(item);
            }
        }
        dups
    });
    println!("  -> site now instantiates: {}\n", ctx.current_kind());
    assert_eq!(ctx.current_kind(), ListKind::HashArray);

    // Phase 2 — ingestion: appends dominate; the hash index's per-push
    // upkeep is dead weight and the context walks back to the plain array.
    run_phase("ingest (append-heavy)", &engine, &ctx, |list| {
        for v in 0..800 {
            list.push(Rc::new(v));
        }
        let mut total = 0usize;
        list.for_each(|_| total += 1);
        total
    });
    println!("  -> site now instantiates: {}\n", ctx.current_kind());
    assert_eq!(ctx.current_kind(), ListKind::Array, "phase change must re-converge");

    println!("transition log:");
    for event in engine.transition_log() {
        println!("  {event}");
    }
}

fn run_phase(
    name: &str,
    engine: &Switch,
    ctx: &ListContext<Item>,
    mut work: impl FnMut(&mut SwitchList<Item>) -> usize,
) {
    println!("phase: {name}");
    for round in 0..4 {
        let start = Instant::now();
        let mut acc = 0;
        for _ in 0..120 {
            let mut list = ctx.create_list();
            acc += work(&mut list);
        }
        engine.analyze_now();
        println!(
            "  round {round}: {:6.2} ms (acc {acc}, variant {})",
            start.elapsed().as_secs_f64() * 1e3,
            ctx.current_kind()
        );
    }
}
